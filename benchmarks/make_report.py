"""Turn a pytest-benchmark JSON export into the markdown tables of EXPERIMENTS.md.

Usage::

    pytest benchmarks/ --benchmark-only --benchmark-json=bench_results.json
    python benchmarks/make_report.py bench_results.json

The script prints one markdown table per benchmark group (one group per
Figure-1 panel), with the sweep value, the per-algorithm mean running time,
and the quality columns for the Figure 1(g)/(h) panels.  EXPERIMENTS.md embeds
the output of this script next to the paper's qualitative claims.
"""

from __future__ import annotations

import collections
import json
import sys
from typing import Dict, List


def _fmt_seconds(seconds: float) -> str:
    if seconds < 1e-3:
        return f"{seconds * 1e6:.0f} us"
    if seconds < 1.0:
        return f"{seconds * 1e3:.2f} ms"
    return f"{seconds:.2f} s"


def _sweep_key(extra: Dict) -> object:
    for key in ("p", "s", "k", "network_size", "m", "schedule_days", "variant", "radius"):
        if key in extra:
            return extra[key]
    return ""


def performance_table(rows: List[Dict]) -> str:
    """Sweep value x algorithm table for a running-time panel."""
    algorithms: List[str] = []
    by_sweep: Dict[object, Dict[str, str]] = collections.defaultdict(dict)
    sweep_name = None
    for row in rows:
        extra = row["extra_info"]
        algorithm = extra.get("algorithm", extra.get("variant", row["name"]))
        if algorithm not in algorithms:
            algorithms.append(algorithm)
        for key in ("p", "s", "k", "network_size", "m", "schedule_days", "variant"):
            if key in extra:
                sweep_name = key
                break
        by_sweep[_sweep_key(extra)][algorithm] = _fmt_seconds(row["stats"]["mean"])
    header = f"| {sweep_name or 'case'} | " + " | ".join(algorithms) + " |"
    divider = "|" + "---|" * (len(algorithms) + 1)
    lines = [header, divider]
    for sweep in sorted(by_sweep, key=lambda v: (isinstance(v, str), v)):
        cells = [by_sweep[sweep].get(a, "–") for a in algorithms]
        lines.append(f"| {sweep} | " + " | ".join(cells) + " |")
    return "\n".join(lines)


def quality_table(rows: List[Dict], kind: str) -> str:
    """Figure 1(g)/(h) table: k or distance comparison per group size."""
    lines = []
    if kind == "k":
        lines.append("| p | PCArrange k_h | STGArrange k | STGArrange time |")
    else:
        lines.append("| p | PCArrange distance | STGArrange distance | STGArrange time |")
    lines.append("|---|---|---|---|")
    for row in sorted(rows, key=lambda r: r["extra_info"].get("p", 0)):
        extra = row["extra_info"]
        elapsed = _fmt_seconds(row["stats"]["mean"])
        if kind == "k":
            pc = extra.get("pcarrange_k", "–") if extra.get("pcarrange_feasible", True) else "infeasible"
            st = extra.get("stgarrange_k", "–")
            lines.append(f"| {extra.get('p')} | {pc} | {st} | {elapsed} |")
        else:
            pc = extra.get("pcarrange_distance")
            st = extra.get("stgarrange_distance")
            pc_text = f"{pc:.1f}" if isinstance(pc, (int, float)) and pc == pc else "infeasible"
            st_text = f"{st:.1f}" if isinstance(st, (int, float)) and st == st else "infeasible"
            lines.append(f"| {extra.get('p')} | {pc_text} | {st_text} | {elapsed} |")
    return "\n".join(lines)


def main(path: str) -> None:
    with open(path, encoding="utf-8") as handle:
        data = json.load(handle)
    groups: Dict[str, List[Dict]] = collections.defaultdict(list)
    for bench in data["benchmarks"]:
        groups[bench["group"]].append(bench)
    for group in sorted(groups):
        rows = groups[group]
        print(f"### {group}\n")
        if group == "fig1g-quality-k":
            print(quality_table(rows, "k"))
        elif group == "fig1h-quality-distance":
            print(quality_table(rows, "distance"))
        else:
            print(performance_table(rows))
        print()


if __name__ == "__main__":
    main(sys.argv[1] if len(sys.argv) > 1 else "bench_results.json")
