"""Benchmark harness package (one module per paper figure panel)."""
