"""Load-aware placement benchmark: CRC32 ShardMap vs trace-built PlacementMap.

This measures the tentpole claim of the placement refactor.  Static CRC32
routing pins every query from a hot ego to one worker, so a skewed stream
turns a fleet into a single busy shard with idle neighbours.  The offline
placement pass (``stgq place``) packs observed per-ego load onto workers
with LPT greedy scheduling and replicates the hottest egos across several
workers; the gateway then round-robins each hot ego's queries over its
replica set.

Setup: a 4-worker ``stgq worker`` fleet over the seeded 194-person dataset,
replaying the committed skewed trace ``benchmarks/traces/placement_skew.jsonl``
(96 radius-2 queries, Zipf skew 1.8 over 8 initiators — one dominant hub).
Regenerate the trace with::

    PYTHONPATH=src python -c "
    from repro.experiments.workloads import workload, generate_query_workload, save_workload
    dataset = workload(network_size=194, schedule_days=1, seed=42)
    save_workload(generate_query_workload(dataset, 96, skew=1.8, n_initiators=8,
                                          radii=(2,), stg_fraction=0.4, seed=11),
                  'benchmarks/traces/placement_skew.jsonl')"

Legs (same fleet, fresh gateway per leg, warm-up replay before measuring):

1. ``crc32`` — RemoteBackend with no placement: static ShardMap routing.
2. ``load_aware`` — RemoteBackend holding ``build_placement(trace)``: the
   hub fans out over its replica set, the tail is packed by load.

Gates (CI fails the run when violated):

- load-aware routed imbalance must stay under ``--imbalance-ceiling``
  (default 1.5x, the RouteMetrics skew threshold);
- CRC32 imbalance must *exceed* the same threshold — otherwise the trace
  is not skewed and the benchmark is vacuous;
- load-aware q/s must beat CRC32 q/s (``--floor``, default 1.0x) — only
  enforced on multi-core machines, where the idle-neighbour argument holds.

Run directly::

    PYTHONPATH=src python benchmarks/bench_placement.py --quick \
        --json BENCH_placement.json
"""

from __future__ import annotations

import argparse
import json
import os
import pathlib
import sys
import time
from typing import Dict, List

from repro.experiments.workloads import load_workload, workload
from repro.service import QueryService, RemoteBackend, ShardMap, build_placement
from repro.service.net import start_local_workers

DATASET_PEOPLE = 194
DATASET_DAYS = 1
DATASET_SEED = 42
DEFAULT_TRACE = pathlib.Path(__file__).parent / "traces" / "placement_skew.jsonl"


def run_leg(dataset, connect: str, batch, placement, repeats: int) -> Dict[str, float]:
    """Replay ``batch`` ``repeats`` times through one fresh gateway.

    One warm-up replay first: worker process pools start and every ego the
    leg's routing touches lands in the right worker caches, so the measured
    replays compare routing, not cold-start costs.
    """
    backend = RemoteBackend(connect, timeout=300.0, placement=placement)
    with QueryService(dataset.graph, dataset.calendars, backend=backend) as gateway:
        errors = sum(
            1 for r in gateway.solve_many(batch) if getattr(r, "error", None)
        )
        start = time.perf_counter()
        for _ in range(repeats):
            results = gateway.solve_many(batch)
            errors += sum(1 for r in results if getattr(r, "error", None))
        wall = time.perf_counter() - start
        report = gateway.route_report()
    total = repeats * len(batch)
    return {
        "strategy": report["strategy"],
        "placement_version": report["version"],
        "queries": total,
        "errors": errors,
        "wall_s": round(wall, 4),
        "qps": round(total / wall, 2) if wall else 0.0,
        "routed": report["routed"],
        "max_imbalance": report["max_imbalance"],
        "failover_queries": report["failover_queries"],
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true", help="CI smoke mode: fewer replays")
    parser.add_argument(
        "--trace", default=str(DEFAULT_TRACE), help="workload trace JSONL to replay"
    )
    parser.add_argument("--workers", type=int, default=4, help="fleet size (default 4)")
    parser.add_argument(
        "--replicas", type=int, default=2, help="hot-ego replica width (default 2)"
    )
    parser.add_argument(
        "--imbalance-ceiling",
        type=float,
        default=1.5,
        help="max tolerated load-aware routed imbalance (default 1.5x); the "
        "CRC32 leg must exceed the same value for the trace to count as skewed",
    )
    parser.add_argument(
        "--floor",
        type=float,
        default=1.0,
        help="minimum load-aware/CRC32 q/s ratio (default 1.0; 0 disables; "
        "only enforced on multi-core machines)",
    )
    parser.add_argument(
        "--json", metavar="PATH", default=None, help="write results as JSON to PATH"
    )
    args = parser.parse_args(argv)

    batch: List = load_workload(args.trace)
    dataset = workload(
        network_size=DATASET_PEOPLE, schedule_days=DATASET_DAYS, seed=DATASET_SEED
    )
    placement = build_placement(batch, args.workers, replicas=args.replicas)
    crc32_imbalance = ShardMap(args.workers).imbalance(batch)
    load_aware_imbalance = placement.imbalance(batch)
    repeats = 2 if args.quick else 5
    print(
        f"{len(batch)} trace queries over {args.workers} workers: "
        f"crc32 {crc32_imbalance:.2f}x vs load-aware {load_aware_imbalance:.2f}x "
        f"({len(placement.replicas)} hot egos replicated {args.replicas}-wide)"
    )

    report = {
        "quick": args.quick,
        "cpu_count": os.cpu_count(),
        "trace": str(args.trace),
        "trace_queries": len(batch),
        "workers": args.workers,
        "replicas": args.replicas,
        "repeats": repeats,
        "crc32_imbalance": round(crc32_imbalance, 3),
        "load_aware_imbalance": round(load_aware_imbalance, 3),
        "replicated_egos": len(placement.replicas),
        "assigned_egos": len(placement.assignments),
        "legs": {},
    }
    with start_local_workers(
        args.workers, people=DATASET_PEOPLE, days=DATASET_DAYS, seed=DATASET_SEED
    ) as cluster:
        print(f"fleet ready at {cluster.connect_spec()}")
        for name, leg_placement in (("crc32", None), ("load_aware", placement)):
            leg = run_leg(dataset, cluster.connect_spec(), batch, leg_placement, repeats)
            report["legs"][name] = leg
            print(
                f"{name}: {leg['queries']} queries in {leg['wall_s']:.2f}s = "
                f"{leg['qps']:.1f} q/s, routed {leg['routed']} "
                f"(max imbalance {leg['max_imbalance']:.2f}x, {leg['errors']} errors)"
            )
            if leg["errors"]:
                print(f"FAIL: {leg['errors']} degraded requests", file=sys.stderr)
                return 1

    ratio = report["legs"]["load_aware"]["qps"] / report["legs"]["crc32"]["qps"]
    report["ratio_load_aware_vs_crc32"] = round(ratio, 3)
    print(f"\nload-aware vs crc32 replay throughput: {ratio:.2f}x")

    if args.json:
        with open(args.json, "w", encoding="utf-8") as handle:
            json.dump(report, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"wrote {args.json}")

    # Imbalance gates are pure routing math: enforced on any machine.
    measured = report["legs"]["load_aware"]["max_imbalance"]
    if measured >= args.imbalance_ceiling:
        print(
            f"FAIL: load-aware routed imbalance {measured:.2f}x at or above the "
            f"{args.imbalance_ceiling:.1f}x ceiling — placement pass regressed?",
            file=sys.stderr,
        )
        return 1
    if crc32_imbalance < args.imbalance_ceiling:
        print(
            f"FAIL: CRC32 imbalance {crc32_imbalance:.2f}x under "
            f"{args.imbalance_ceiling:.1f}x — the committed trace is not skewed "
            "enough to exercise the placement pass",
            file=sys.stderr,
        )
        return 1

    cpu_count = os.cpu_count() or 1
    if args.floor and cpu_count < 2:
        print(
            f"single-core machine (cpu_count={cpu_count}): spreading a hot ego "
            f"over idle workers cannot win here; floor {args.floor:.1f}x "
            "reported but not enforced"
        )
    elif args.floor and ratio < args.floor:
        print(
            f"FAIL: load-aware throughput {ratio:.2f}x below the "
            f"{args.floor:.1f}x floor — is the gateway still routing by CRC32?",
            file=sys.stderr,
        )
        return 1
    print("\nOK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
