"""Benchmark regression gate: fresh run vs the committed baseline artifact.

The repo commits the benchmark artifacts CI produces (``BENCH_kernels.json``
from ``bench_service.py --kernels-json``, ``BENCH_substrates.json`` from
``bench_substrate_scale.py --json``) as baselines.  This script turns them
into a gate: given a baseline file and a fresh run of the same benchmark,
it walks both JSON trees, pairs up every *throughput-like* numeric leaf
(higher is better: ``qps``, ``per_sec``, and the ``numpy_vs_compiled``
speedup ratio), and fails when any fresh value dropped more than
``--max-drop`` (default 20%) below its baseline.

Counters, timings and environment facts (``queries``, ``wall_s``,
``cpu_count``, ...) are deliberately ignored — wall-clock totals vary with
machine load in both directions, and a *rise* in ``wall_s`` is already a
fall in the paired ``qps``.  A throughput key present in the baseline but
missing from the fresh run fails the gate too: a silently renamed metric
must not pass as "no regression".

Run directly (it is a script, not a pytest module)::

    PYTHONPATH=src python benchmarks/check_baseline.py \
        BENCH_kernels.json BENCH_kernels_fresh.json --max-drop 0.2

Exit codes: 0 = no regression, 1 = regression (or unusable files), 2 =
usage error.  CI writes the fresh artifact under a *different* name so the
committed baseline in the checkout is never clobbered before comparison.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Dict, Iterator, Tuple

#: JSON keys whose numeric values mean "higher is better".  Everything else
#: (counts, seconds, environment facts) is not gated.
THROUGHPUT_KEYS = ("qps", "per_sec", "numpy_vs_compiled", "csr_vs_dict")


def iter_throughput_leaves(tree: object, prefix: str = "") -> Iterator[Tuple[str, float]]:
    """Yield ``(dotted.path, value)`` for every throughput-like numeric leaf."""
    if not isinstance(tree, dict):
        return
    for key, value in tree.items():
        path = f"{prefix}.{key}" if prefix else str(key)
        if isinstance(value, dict):
            yield from iter_throughput_leaves(value, path)
        elif key in THROUGHPUT_KEYS and isinstance(value, (int, float)):
            yield path, float(value)


def check(baseline: Dict, fresh: Dict, max_drop: float) -> Tuple[int, int]:
    """Print a per-metric verdict table; returns (checked, regressed)."""
    fresh_leaves = dict(iter_throughput_leaves(fresh))
    checked = 0
    regressed = 0
    for path, base_value in sorted(iter_throughput_leaves(baseline)):
        checked += 1
        fresh_value = fresh_leaves.get(path)
        if fresh_value is None:
            regressed += 1
            print(f"  FAIL  {path}: present in baseline ({base_value:g}) but missing "
                  "from the fresh run")
            continue
        if base_value <= 0:
            print(f"  skip  {path}: non-positive baseline {base_value:g}")
            continue
        drop = (base_value - fresh_value) / base_value
        verdict = "FAIL" if drop > max_drop else "ok"
        if drop > max_drop:
            regressed += 1
        print(f"  {verdict:>4}  {path}: {base_value:g} -> {fresh_value:g} "
              f"({-drop:+.1%} vs baseline, floor {-max_drop:.0%})")
    return checked, regressed


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("baseline", help="committed baseline artifact (JSON)")
    parser.add_argument("fresh", help="freshly produced artifact of the same benchmark")
    parser.add_argument(
        "--max-drop",
        type=float,
        default=0.2,
        metavar="FRACTION",
        help="maximum tolerated throughput drop vs baseline (default 0.2 = 20%%)",
    )
    args = parser.parse_args(argv)
    if not 0 <= args.max_drop < 1:
        parser.error(f"--max-drop must be in [0, 1), got {args.max_drop}")
    trees = {}
    for label, path in (("baseline", args.baseline), ("fresh", args.fresh)):
        try:
            with open(path, "r", encoding="utf-8") as handle:
                trees[label] = json.load(handle)
        except (OSError, json.JSONDecodeError) as exc:
            print(f"FAIL: cannot read {label} {path!r}: {exc}")
            return 1
    print(f"baseline {args.baseline} vs fresh {args.fresh} (max drop {args.max_drop:.0%})")
    checked, regressed = check(trees["baseline"], trees["fresh"], args.max_drop)
    if not checked:
        print("FAIL: baseline contains no throughput metrics "
              f"(looked for keys: {', '.join(THROUGHPUT_KEYS)})")
        return 1
    if regressed:
        print(f"FAIL: {regressed}/{checked} throughput metrics regressed "
              f"more than {args.max_drop:.0%}")
        return 1
    print(f"ok: {checked} throughput metrics within {args.max_drop:.0%} of baseline")
    return 0


if __name__ == "__main__":
    sys.exit(main())
