"""Figure 1(g): solution quality — observed ``k`` vs. ``p``.

Paper setting: STGArrange (STGSelect run with the smallest sufficient k)
against PCArrange (a model of manual coordination by phone) for p from 3 to
11.  The reproduced claim: the group STGArrange returns satisfies a smaller
(never larger) acquaintance parameter than the group the manual coordinator
ends up with, i.e. the attendees know each other better.

The benchmark times the full STGArrange comparison and records both k values
in ``extra_info`` so the quality numbers appear alongside the timings in the
pytest-benchmark report (EXPERIMENTS.md tabulates them).
"""

import pytest

from repro.core import STGArrange

from .conftest import ROUNDS

RADIUS = 1
ACTIVITY_LENGTH = 4
GROUP_SIZES = (3, 4, 5, 6, 7)


@pytest.mark.parametrize("p", GROUP_SIZES)
@pytest.mark.benchmark(group="fig1g-quality-k")
def test_stgarrange_vs_pcarrange(benchmark, real_dataset, real_initiator, p):
    arranger = STGArrange(real_dataset.graph, real_dataset.calendars)
    outcome = benchmark.pedantic(
        lambda: arranger.compare(
            initiator=real_initiator,
            group_size=p,
            radius=RADIUS,
            activity_length=ACTIVITY_LENGTH,
        ),
        **ROUNDS,
    )
    benchmark.extra_info["p"] = p
    benchmark.extra_info["pcarrange_feasible"] = outcome.pcarrange.feasible
    benchmark.extra_info["pcarrange_k"] = outcome.pcarrange_k
    benchmark.extra_info["stgarrange_k"] = outcome.stgarrange_k
    if outcome.pcarrange.feasible and outcome.stgarrange_k is not None:
        assert outcome.stgarrange_k <= outcome.pcarrange_k
