"""Figure 1(e): STGQ running time vs. activity length ``m``.

Paper setting: half-hour slots, m swept from 2 to 24, STGSelect against the
per-period baseline.  The reproduced claim: the baseline has to solve one
SGQ for every one of the ``T - m + 1`` candidate periods, whereas STGSelect
anchors only the ``T / m`` pivot time slots, so its advantage widens as the
activity gets longer.
"""

import pytest

from repro.core import BaselineSTGQ, STGQuery, STGSelect

from .conftest import ROUNDS

GROUP_SIZE = 4
RADIUS = 1
ACQUAINTANCE = 2
ACTIVITY_LENGTHS = (2, 4, 6, 8, 12, 16, 24)


def _query(initiator, m):
    return STGQuery(
        initiator=initiator,
        group_size=GROUP_SIZE,
        radius=RADIUS,
        acquaintance=ACQUAINTANCE,
        activity_length=m,
    )


@pytest.mark.parametrize("m", ACTIVITY_LENGTHS)
@pytest.mark.benchmark(group="fig1e-stgq-vs-m")
def test_stgselect(benchmark, real_dataset, real_initiator, m):
    query = _query(real_initiator, m)
    result = benchmark.pedantic(
        lambda: STGSelect(real_dataset.graph, real_dataset.calendars).solve(query), **ROUNDS
    )
    benchmark.extra_info["algorithm"] = "STGSelect"
    benchmark.extra_info["m"] = m
    benchmark.extra_info["feasible"] = result.feasible
    benchmark.extra_info["pivots_processed"] = result.stats.pivots_processed


@pytest.mark.parametrize("m", ACTIVITY_LENGTHS)
@pytest.mark.benchmark(group="fig1e-stgq-vs-m")
def test_baseline(benchmark, real_dataset, real_initiator, m):
    query = _query(real_initiator, m)
    result = benchmark.pedantic(
        lambda: BaselineSTGQ(real_dataset.graph, real_dataset.calendars).solve(query), **ROUNDS
    )
    benchmark.extra_info["algorithm"] = "Baseline"
    benchmark.extra_info["m"] = m
    benchmark.extra_info["periods_examined"] = result.stats.pivots_processed
