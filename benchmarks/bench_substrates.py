"""Micro-benchmarks for the substrates the algorithms are built on.

These are not paper figures; they exist so regressions in the hot helper
paths (bounded distances, radius extraction, schedule intersection, pivot
filtering) are visible independently of the end-to-end query benchmarks.
"""

import functools

import pytest

from repro.graph import (
    bounded_distances,
    compile_feasible_graph,
    csr_available,
    extract_feasible_graph,
)
from repro.graph.packed import numpy_kernel_available, pack_adjacency
from repro.temporal.pivot import feasible_members_for_pivot, pivot_windows

from .conftest import ROUNDS, dataset_for_size, initiator_for


@pytest.mark.benchmark(group="substrate-graph")
@pytest.mark.parametrize("network_size", (194, 3200))
def test_bounded_distances(benchmark, network_size):
    dataset = dataset_for_size(network_size)
    initiator = initiator_for(dataset)
    distances = benchmark.pedantic(
        lambda: bounded_distances(dataset.graph, initiator, 3), **ROUNDS
    )
    benchmark.extra_info["network_size"] = network_size
    # bounded_distances is reachable-only: every returned vertex is reached.
    benchmark.extra_info["reachable"] = len(distances)


@pytest.mark.benchmark(group="substrate-graph")
@pytest.mark.parametrize("radius", (1, 2, 3))
def test_feasible_graph_extraction(benchmark, real_dataset, real_initiator, radius):
    feasible = benchmark.pedantic(
        lambda: extract_feasible_graph(real_dataset.graph, real_initiator, radius), **ROUNDS
    )
    benchmark.extra_info["radius"] = radius
    benchmark.extra_info["candidates"] = len(feasible) - 1


@pytest.mark.benchmark(group="substrate-graph")
@pytest.mark.skipif(not numpy_kernel_available(), reason="needs numpy >= 2.0")
def test_pack_adjacency(benchmark, real_dataset, real_initiator):
    """Cost of deriving the numpy kernel's packed matrix (paid on cache miss)."""
    feasible = extract_feasible_graph(real_dataset.graph, real_initiator, 2)
    compiled = compile_feasible_graph(feasible)
    packed = benchmark.pedantic(lambda: pack_adjacency(compiled), **ROUNDS)
    benchmark.extra_info["ids"] = packed.n
    benchmark.extra_info["words"] = packed.words


@pytest.mark.benchmark(group="substrate-graph")
@pytest.mark.skipif(not numpy_kernel_available(), reason="needs numpy >= 2.0")
def test_packed_intersect_counts(benchmark, real_dataset, real_initiator):
    """The numpy kernel's workhorse reduction: whole-pool AND + popcount."""
    feasible = extract_feasible_graph(real_dataset.graph, real_initiator, 2)
    compiled = compile_feasible_graph(feasible)
    packed = pack_adjacency(compiled)
    row = packed.row(compiled.candidate_mask)
    counts = benchmark.pedantic(lambda: packed.intersect_counts(row), **ROUNDS)
    benchmark.extra_info["ids"] = packed.n
    benchmark.extra_info["total_degree"] = int(counts.sum())


@pytest.mark.benchmark(group="substrate-temporal")
def test_joint_schedule_of_ego_network(benchmark, real_dataset, real_initiator):
    feasible = extract_feasible_graph(real_dataset.graph, real_initiator, 1)
    people = feasible.graph.vertices()
    joint = benchmark.pedantic(
        lambda: real_dataset.calendars.joint_schedule(people), **ROUNDS
    )
    benchmark.extra_info["people"] = len(people)
    benchmark.extra_info["common_slots"] = joint.available_count()


@pytest.mark.benchmark(group="substrate-temporal")
@pytest.mark.parametrize("m", (2, 8))
def test_pivot_candidate_filtering(benchmark, real_dataset, real_initiator, m):
    feasible = extract_feasible_graph(real_dataset.graph, real_initiator, 1)
    candidates = feasible.candidates
    windows = pivot_windows(real_dataset.calendars.horizon, m)

    def run():
        total = 0
        for window in windows:
            total += len(
                feasible_members_for_pivot(real_dataset.calendars, window, candidates)
            )
        return total

    total = benchmark.pedantic(run, **ROUNDS)
    benchmark.extra_info["m"] = m
    benchmark.extra_info["feasible_member_slots"] = total


# ----------------------------------------------------------------------
# dict vs CSR substrate (group: substrate-csr)
# ----------------------------------------------------------------------
#
# Same seeded graph through both substrates at three scales: the paper's
# 194-person community, and Chung-Lu power-law graphs at 10^4 and 10^5
# vertices.  The CSR rows are the ones the scale-smoke CI leg watches;
# the dict rows exist so the crossover (CSR wins once the adjacency no
# longer fits cache) is visible in the same table.


@functools.lru_cache(maxsize=None)
def _substrate_pair(n):
    """(dict graph, CSR graph, initiator) for a seeded graph of n vertices."""
    from repro.graph.csr import CSRGraph

    if n == 194:
        dataset = dataset_for_size(194)
        return dataset.graph, CSRGraph.from_social_graph(dataset.graph), initiator_for(dataset)
    from repro.datasets import SCALE_INITIATOR, generate_scale_graph

    csr = generate_scale_graph(n, seed=7)
    return csr.to_social_graph(), csr, SCALE_INITIATOR


_CSR_SCALES = (194, 10_000, 100_000)

needs_csr = pytest.mark.skipif(not csr_available(), reason="CSR substrate needs numpy")


@needs_csr
@pytest.mark.benchmark(group="substrate-csr")
@pytest.mark.parametrize("n", _CSR_SCALES)
@pytest.mark.parametrize("substrate", ("dict", "csr"))
def test_bounded_distances_by_substrate(benchmark, n, substrate):
    dict_graph, csr_graph, initiator = _substrate_pair(n)
    graph = dict_graph if substrate == "dict" else csr_graph
    distances = benchmark.pedantic(
        lambda: bounded_distances(graph, initiator, 2), **ROUNDS
    )
    benchmark.extra_info["n"] = n
    benchmark.extra_info["substrate"] = substrate
    benchmark.extra_info["reachable"] = len(distances)


@needs_csr
@pytest.mark.benchmark(group="substrate-csr")
@pytest.mark.parametrize("n", _CSR_SCALES)
@pytest.mark.parametrize("substrate", ("dict", "csr"))
def test_extraction_by_substrate(benchmark, n, substrate):
    dict_graph, csr_graph, initiator = _substrate_pair(n)
    graph = dict_graph if substrate == "dict" else csr_graph
    feasible = benchmark.pedantic(
        lambda: extract_feasible_graph(graph, initiator, 2), **ROUNDS
    )
    benchmark.extra_info["n"] = n
    benchmark.extra_info["substrate"] = substrate
    benchmark.extra_info["candidates"] = len(feasible.candidates)


@needs_csr
@pytest.mark.benchmark(group="substrate-csr")
@pytest.mark.parametrize("n", _CSR_SCALES)
@pytest.mark.parametrize("substrate", ("dict", "csr"))
def test_sgq_query_by_substrate(benchmark, n, substrate):
    """End to end SGSelect: extraction dominates at scale, so this is where
    the substrate choice shows up in user-visible latency."""
    from repro.core import SGQuery, SGSelect

    dict_graph, csr_graph, initiator = _substrate_pair(n)
    graph = dict_graph if substrate == "dict" else csr_graph
    query = SGQuery(initiator=initiator, group_size=3, radius=2, acquaintance=2)
    result = benchmark.pedantic(lambda: SGSelect(graph).solve(query), **ROUNDS)
    benchmark.extra_info["n"] = n
    benchmark.extra_info["substrate"] = substrate
    benchmark.extra_info["feasible"] = bool(result.feasible)
