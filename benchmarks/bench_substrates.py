"""Micro-benchmarks for the substrates the algorithms are built on.

These are not paper figures; they exist so regressions in the hot helper
paths (bounded distances, radius extraction, schedule intersection, pivot
filtering) are visible independently of the end-to-end query benchmarks.
"""

import pytest

from repro.graph import bounded_distances, compile_feasible_graph, extract_feasible_graph
from repro.graph.packed import numpy_kernel_available, pack_adjacency
from repro.temporal.pivot import feasible_members_for_pivot, pivot_windows

from .conftest import ROUNDS, dataset_for_size, initiator_for


@pytest.mark.benchmark(group="substrate-graph")
@pytest.mark.parametrize("network_size", (194, 3200))
def test_bounded_distances(benchmark, network_size):
    dataset = dataset_for_size(network_size)
    initiator = initiator_for(dataset)
    distances = benchmark.pedantic(
        lambda: bounded_distances(dataset.graph, initiator, 3), **ROUNDS
    )
    benchmark.extra_info["network_size"] = network_size
    benchmark.extra_info["reachable"] = sum(1 for d in distances.values() if d < float("inf"))


@pytest.mark.benchmark(group="substrate-graph")
@pytest.mark.parametrize("radius", (1, 2, 3))
def test_feasible_graph_extraction(benchmark, real_dataset, real_initiator, radius):
    feasible = benchmark.pedantic(
        lambda: extract_feasible_graph(real_dataset.graph, real_initiator, radius), **ROUNDS
    )
    benchmark.extra_info["radius"] = radius
    benchmark.extra_info["candidates"] = len(feasible) - 1


@pytest.mark.benchmark(group="substrate-graph")
@pytest.mark.skipif(not numpy_kernel_available(), reason="needs numpy >= 2.0")
def test_pack_adjacency(benchmark, real_dataset, real_initiator):
    """Cost of deriving the numpy kernel's packed matrix (paid on cache miss)."""
    feasible = extract_feasible_graph(real_dataset.graph, real_initiator, 2)
    compiled = compile_feasible_graph(feasible)
    packed = benchmark.pedantic(lambda: pack_adjacency(compiled), **ROUNDS)
    benchmark.extra_info["ids"] = packed.n
    benchmark.extra_info["words"] = packed.words


@pytest.mark.benchmark(group="substrate-graph")
@pytest.mark.skipif(not numpy_kernel_available(), reason="needs numpy >= 2.0")
def test_packed_intersect_counts(benchmark, real_dataset, real_initiator):
    """The numpy kernel's workhorse reduction: whole-pool AND + popcount."""
    feasible = extract_feasible_graph(real_dataset.graph, real_initiator, 2)
    compiled = compile_feasible_graph(feasible)
    packed = pack_adjacency(compiled)
    row = packed.row(compiled.candidate_mask)
    counts = benchmark.pedantic(lambda: packed.intersect_counts(row), **ROUNDS)
    benchmark.extra_info["ids"] = packed.n
    benchmark.extra_info["total_degree"] = int(counts.sum())


@pytest.mark.benchmark(group="substrate-temporal")
def test_joint_schedule_of_ego_network(benchmark, real_dataset, real_initiator):
    feasible = extract_feasible_graph(real_dataset.graph, real_initiator, 1)
    people = feasible.graph.vertices()
    joint = benchmark.pedantic(
        lambda: real_dataset.calendars.joint_schedule(people), **ROUNDS
    )
    benchmark.extra_info["people"] = len(people)
    benchmark.extra_info["common_slots"] = joint.available_count()


@pytest.mark.benchmark(group="substrate-temporal")
@pytest.mark.parametrize("m", (2, 8))
def test_pivot_candidate_filtering(benchmark, real_dataset, real_initiator, m):
    feasible = extract_feasible_graph(real_dataset.graph, real_initiator, 1)
    candidates = feasible.candidates
    windows = pivot_windows(real_dataset.calendars.horizon, m)

    def run():
        total = 0
        for window in windows:
            total += len(
                feasible_members_for_pivot(real_dataset.calendars, window, candidates)
            )
        return total

    total = benchmark.pedantic(run, **ROUNDS)
    benchmark.extra_info["m"] = m
    benchmark.extra_info["feasible_member_slots"] = total
