"""Shared fixtures and helpers for the benchmark harness.

Every benchmark file regenerates one panel of the paper's Figure 1 (see
DESIGN.md §3 for the experiment index).  The parameters follow the
``paper-shape`` scale defined in :mod:`repro.experiments.config`: small
enough that the full harness finishes in minutes of pure Python, large
enough that the qualitative shapes of the paper's plots (who wins and how
the gap grows along each sweep) are visible in the emitted tables.

Run with::

    pytest benchmarks/ --benchmark-only

pytest-benchmark groups rows by figure panel, so its output reads like the
paper's plots, one row per (sweep value, algorithm) pair.
"""

from __future__ import annotations

import pytest

from repro.experiments.workloads import pick_initiator, workload

#: Candidate-pool bounds for benchmark initiators; keeps the brute-force
#: baselines affordable while preserving the combinatorial growth the paper
#: demonstrates.
EGO_BOUNDS = (10, 26)

#: pytest-benchmark settings shared by all panels: two measured rounds of a
#: single iteration each (the solvers are deterministic, so more rounds only
#: add wall-clock time).
ROUNDS = {"rounds": 2, "iterations": 1, "warmup_rounds": 0}


@pytest.fixture(scope="session")
def real_dataset():
    """The 194-person community dataset used by Figures 1(a)-(c), (e), (g), (h)."""
    return workload(network_size=194, schedule_days=1, seed=42)


@pytest.fixture(scope="session")
def real_initiator(real_dataset):
    """An initiator with a benchmark-sized ego network on the real dataset."""
    return pick_initiator(real_dataset, radius=1, min_candidates=EGO_BOUNDS[0], max_candidates=EGO_BOUNDS[1])


def dataset_for_size(network_size: int, schedule_days: int = 1):
    """Dataset of the requested size (memoised across the benchmark session)."""
    return workload(network_size=network_size, schedule_days=schedule_days, seed=42)


def initiator_for(dataset, radius: int = 1):
    """Benchmark initiator for an arbitrary dataset."""
    return pick_initiator(dataset, radius=radius, min_candidates=EGO_BOUNDS[0], max_candidates=EGO_BOUNDS[1])
