"""Figure 1(a): SGQ running time vs. group size ``p``.

Paper setting: k = 2, s = 1, the 194-person real dataset, p swept from 3 to
11; SGSelect is compared against the exhaustive baseline and the Integer
Programming model (CPLEX in the paper, HiGHS here).  The reproduced claim is
the *shape*: the baseline's cost explodes combinatorially with p while
SGSelect grows far more slowly, and the general-purpose IP solver is orders
of magnitude slower than SGSelect.
"""

import pytest

from repro.core import BaselineSGQ, IPSolver, SGQuery, SGSelect

from .conftest import ROUNDS

RADIUS = 1
ACQUAINTANCE = 2
GROUP_SIZES = (3, 4, 5, 6, 7)


def _query(initiator, p):
    return SGQuery(initiator=initiator, group_size=p, radius=RADIUS, acquaintance=ACQUAINTANCE)


@pytest.mark.parametrize("p", GROUP_SIZES)
@pytest.mark.benchmark(group="fig1a-sgq-vs-p")
def test_sgselect(benchmark, real_dataset, real_initiator, p):
    query = _query(real_initiator, p)
    result = benchmark.pedantic(
        lambda: SGSelect(real_dataset.graph).solve(query), **ROUNDS
    )
    benchmark.extra_info["algorithm"] = "SGSelect"
    benchmark.extra_info["p"] = p
    benchmark.extra_info["feasible"] = result.feasible
    benchmark.extra_info["total_distance"] = result.total_distance


@pytest.mark.parametrize("p", GROUP_SIZES)
@pytest.mark.benchmark(group="fig1a-sgq-vs-p")
def test_baseline(benchmark, real_dataset, real_initiator, p):
    query = _query(real_initiator, p)
    result = benchmark.pedantic(
        lambda: BaselineSGQ(real_dataset.graph).solve(query, max_groups=5_000_000), **ROUNDS
    )
    benchmark.extra_info["algorithm"] = "Baseline"
    benchmark.extra_info["p"] = p
    benchmark.extra_info["groups_enumerated"] = result.stats.nodes_expanded


@pytest.mark.parametrize("p", GROUP_SIZES[:3])
@pytest.mark.benchmark(group="fig1a-sgq-vs-p")
def test_integer_programming(benchmark, real_dataset, real_initiator, p):
    """The IP comparison is run for the smaller p values only: the paper's own
    point is that the general-purpose optimiser is much slower, and the larger
    instances add minutes without changing that conclusion."""
    query = _query(real_initiator, p)
    result = benchmark.pedantic(
        lambda: IPSolver().solve_sgq(real_dataset.graph, query), **ROUNDS
    )
    benchmark.extra_info["algorithm"] = "IP"
    benchmark.extra_info["p"] = p
    benchmark.extra_info["feasible"] = result.feasible
