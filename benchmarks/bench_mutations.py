"""Live-graph mutation benchmark: apply rate, targeted invalidation, recovery.

Three numbers characterise the live-graph subsystem (``docs/live_graph.md``):

1. **Mutation apply rate** — mutations/second through
   :meth:`QueryService.apply_mutations` on a warm service, including the
   reverse-index invalidation and mutation-log bookkeeping.
2. **Invalidation precision** — evicted cache entries per mutation with a
   warm radius-1 ego cache, the number the targeted-invalidation design
   keeps far below the cache size (a clear-everything design pins it at
   the warm entry count).
3. **Recovery cost** — queries/second re-solving the same round after the
   mutation stream, i.e. the price of refilling the evicted egos, next to
   the warm-cache rate before mutations.

Run directly (it is a script, not a pytest-benchmark module)::

    PYTHONPATH=src python benchmarks/bench_mutations.py
    PYTHONPATH=src python benchmarks/bench_mutations.py --quick --json out.json

The script exits non-zero when invalidations per mutation reach 10% of the
cache size — the same targeted-invalidation gate ``examples/mutation_smoke.py``
enforces against a live cluster, kept here for the bench-only CI legs.
"""

from __future__ import annotations

import argparse
import json
import random
import sys
import time

from repro.core import SGQuery
from repro.datasets import generate_real_dataset
from repro.graph import generate_mutation_trace
from repro.service import QueryService


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--people", type=int, default=194, help="population size (default 194)")
    parser.add_argument("--seed", type=int, default=42, help="dataset seed (default 42)")
    parser.add_argument(
        "--mutations", type=int, default=400, help="mutation trace length (default 400)"
    )
    parser.add_argument(
        "--trace-seed", type=int, default=7, help="mutation trace seed (default 7)"
    )
    parser.add_argument(
        "--initiators", type=int, default=48, help="warm radius-1 egos (default 48)"
    )
    parser.add_argument(
        "--cache-size", type=int, default=64, help="ego cache entries (default 64)"
    )
    parser.add_argument("--quick", action="store_true", help="CI smoke: 100 mutations")
    parser.add_argument(
        "--json", metavar="PATH", default=None, help="write results as JSON to PATH"
    )
    args = parser.parse_args(argv)
    n_mutations = 100 if args.quick else args.mutations

    dataset = generate_real_dataset(
        n_people=args.people, schedule_days=1, seed=args.seed
    )
    trace = generate_mutation_trace(
        dataset.graph, n_mutations, seed=args.trace_seed, horizon=dataset.calendars.horizon
    )
    initiators = random.Random(args.seed).sample(
        list(dataset.people), min(args.initiators, len(dataset.people))
    )
    queries = [
        SGQuery(initiator=person, group_size=4, radius=1, acquaintance=2)
        for person in initiators
    ]
    print(f"dataset: {dataset.graph.vertex_count} people (seed {args.seed}); "
          f"{len(trace)} mutations, {len(queries)} warm radius-1 egos, "
          f"cache size {args.cache_size}")

    with QueryService(
        dataset.graph, dataset.calendars, backend="serial", cache_size=args.cache_size
    ) as service:
        # Warm pass: fill the ego cache, then measure the cache-hot rate.
        service.solve_many(queries)
        start = time.perf_counter()
        service.solve_many(queries)
        warm_seconds = time.perf_counter() - start
        warm_qps = len(queries) / warm_seconds if warm_seconds else 0.0

        # The mutation stream, one apply_mutations call per mutation — the
        # per-mutation worst case for versioning/log/index overhead.
        start = time.perf_counter()
        for mutation in trace:
            service.apply_mutations([mutation])
        mutate_seconds = time.perf_counter() - start
        stats = service.stats()
        mutations_per_sec = stats.mutations / mutate_seconds if mutate_seconds else 0.0
        per_mutation = stats.invalidations_per_mutation

        # Recovery: re-solve the same round, paying the evicted rebuilds.
        start = time.perf_counter()
        service.solve_many(queries)
        recovery_seconds = time.perf_counter() - start
        recovery_qps = len(queries) / recovery_seconds if recovery_seconds else 0.0
        final_version = service.live_version

    print(f"warm-cache solve rate:   {warm_qps:8.1f} q/s")
    print(f"mutation apply rate:     {mutations_per_sec:8.1f} mutations/s "
          f"(live version {final_version})")
    print(f"targeted invalidation:   {stats.invalidations} evictions / "
          f"{stats.mutations} mutations = {per_mutation:.2f} per mutation")
    print(f"post-mutation recovery:  {recovery_qps:8.1f} q/s "
          f"(refilling evicted egos)")

    report = {
        "people": args.people,
        "seed": args.seed,
        "trace_seed": args.trace_seed,
        "cache_size": args.cache_size,
        "quick": args.quick,
        "mutations": stats.mutations,
        "warm": {"qps": round(warm_qps, 1)},
        "mutate": {"per_sec": round(mutations_per_sec, 1)},
        "recovery": {"qps": round(recovery_qps, 1)},
        "invalidations": stats.invalidations,
        "invalidations_per_mutation": round(per_mutation, 3),
        "live_version": final_version,
    }
    if args.json:
        with open(args.json, "w", encoding="utf-8") as handle:
            json.dump(report, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"wrote {args.json}")

    gate = 0.1 * args.cache_size
    if per_mutation >= gate:
        print(f"FAIL: {per_mutation:.2f} invalidations per mutation >= 10% of the "
              f"{args.cache_size}-entry cache — invalidation is not targeted")
        return 1
    print(f"ok: invalidations per mutation {per_mutation:.2f} < {gate:.1f} gate")
    return 0


if __name__ == "__main__":
    sys.exit(main())
