"""Figure 1(f): STGQ running time vs. schedule length (days).

Paper setting: the shared calendars cover 1 to 7 days of half-hour slots
(48 to 336 slots), m = 4, STGSelect against the per-period baseline.  The
reproduced claim: both algorithms scale with the horizon, but the baseline
grows faster because it solves an SGQ for every period in the longer
horizon while STGSelect only anchors the pivot slots.
"""

import pytest

from repro.core import BaselineSTGQ, STGQuery, STGSelect

from .conftest import ROUNDS, dataset_for_size, initiator_for

GROUP_SIZE = 4
RADIUS = 1
ACQUAINTANCE = 2
ACTIVITY_LENGTH = 4
SCHEDULE_DAYS = (1, 2, 3, 5, 7)


def _setup(days):
    dataset = dataset_for_size(194, schedule_days=days)
    initiator = initiator_for(dataset, radius=RADIUS)
    query = STGQuery(
        initiator=initiator,
        group_size=GROUP_SIZE,
        radius=RADIUS,
        acquaintance=ACQUAINTANCE,
        activity_length=ACTIVITY_LENGTH,
    )
    return dataset, query


@pytest.mark.parametrize("days", SCHEDULE_DAYS)
@pytest.mark.benchmark(group="fig1f-stgq-vs-schedule-length")
def test_stgselect(benchmark, days):
    dataset, query = _setup(days)
    result = benchmark.pedantic(
        lambda: STGSelect(dataset.graph, dataset.calendars).solve(query), **ROUNDS
    )
    benchmark.extra_info["algorithm"] = "STGSelect"
    benchmark.extra_info["schedule_days"] = days
    benchmark.extra_info["horizon_slots"] = dataset.calendars.horizon
    benchmark.extra_info["feasible"] = result.feasible


@pytest.mark.parametrize("days", SCHEDULE_DAYS)
@pytest.mark.benchmark(group="fig1f-stgq-vs-schedule-length")
def test_baseline(benchmark, days):
    dataset, query = _setup(days)
    result = benchmark.pedantic(
        lambda: BaselineSTGQ(dataset.graph, dataset.calendars).solve(query), **ROUNDS
    )
    benchmark.extra_info["algorithm"] = "Baseline"
    benchmark.extra_info["schedule_days"] = days
    benchmark.extra_info["periods_examined"] = result.stats.pivots_processed
