"""Kernel speedup and batched-service throughput benchmark.

Two measurements back the compiled-kernel + QueryService work:

1. **Kernel speedup** — the Figure 1(a) SGQ sweep (k = 2, s = 1, the
   194-person real dataset) run once per kernel, with the aggregate
   reference/compiled time ratio reported for the hot tail of the sweep
   (p >= 6).  A second, heavier sweep at s = 2 (larger ego networks) shows
   the kernel on the regime the paper's scalability figures target.
2. **Batch throughput** — a mixed-initiator SGQ batch answered through
   :class:`repro.service.QueryService`, comparing a cold sequential pass
   against the cached thread-pooled path, plus an STGQ batch.

Run directly (it is a script, not a pytest-benchmark module)::

    PYTHONPATH=src python benchmarks/bench_service.py          # full
    PYTHONPATH=src python benchmarks/bench_service.py --quick  # CI smoke

The script exits non-zero when the p >= 6 aggregate speedup falls below the
3x acceptance floor, so CI catches kernel regressions loudly.
"""

from __future__ import annotations

import argparse
import random
import sys
import time
from typing import List, Tuple

from repro.core import SearchParameters, SGQuery, SGSelect, STGQuery
from repro.experiments.workloads import ego_size, pick_initiator, workload
from repro.service import QueryService

SPEEDUP_FLOOR = 3.0
FIG1A = dict(radius=1, acquaintance=2, group_sizes=(3, 4, 5, 6, 7))
HEAVY = dict(radius=2, acquaintance=2, group_sizes=(5, 6, 7))


def _time_solve(solver: SGSelect, query: SGQuery, repeats: int) -> Tuple[float, object]:
    best = float("inf")
    result = None
    for _ in range(repeats):
        start = time.perf_counter()
        result = solver.solve(query)
        best = min(best, time.perf_counter() - start)
    return best, result


def kernel_sweep(name: str, dataset, initiator, radius: int, acquaintance: int,
                 group_sizes, repeats: int) -> Tuple[float, float]:
    """Run one SGQ sweep on both kernels; return aggregate times (ref, compiled)."""
    ref_solver = SGSelect(dataset.graph, SearchParameters(kernel="reference"))
    comp_solver = SGSelect(dataset.graph, SearchParameters(kernel="compiled"))
    print(f"\n== {name}: s={radius}, k={acquaintance}, "
          f"ego={ego_size(dataset, initiator, radius)} candidates ==")
    print(f"{'p':>3} {'reference':>12} {'compiled':>12} {'speedup':>8}")
    total_ref = total_comp = 0.0
    tail_ref = tail_comp = 0.0
    for p in group_sizes:
        query = SGQuery(initiator=initiator, group_size=p, radius=radius,
                        acquaintance=acquaintance)
        t_ref, r_ref = _time_solve(ref_solver, query, repeats)
        t_comp, r_comp = _time_solve(comp_solver, query, repeats)
        assert r_ref.members == r_comp.members, f"kernel mismatch at p={p}"
        assert r_ref.total_distance == r_comp.total_distance
        total_ref += t_ref
        total_comp += t_comp
        if p >= 6:
            tail_ref += t_ref
            tail_comp += t_comp
        print(f"{p:>3} {t_ref * 1000:>10.2f}ms {t_comp * 1000:>10.2f}ms "
              f"{t_ref / t_comp:>7.1f}x")
    print(f"sweep aggregate: {total_ref * 1000:.1f}ms -> {total_comp * 1000:.1f}ms "
          f"({total_ref / total_comp:.1f}x)")
    return tail_ref, tail_comp


def batch_throughput(dataset, n_queries: int, n_initiators: int, seed: int,
                     activity_length=None) -> float:
    rng = random.Random(seed)
    initiators = rng.sample(list(dataset.people), n_initiators)
    queries: List = []
    for _ in range(n_queries):
        initiator = rng.choice(initiators)
        if activity_length is None:
            queries.append(SGQuery(initiator=initiator, group_size=5, radius=1,
                                   acquaintance=2))
        else:
            queries.append(STGQuery(initiator=initiator, group_size=4, radius=1,
                                    acquaintance=2, activity_length=activity_length))
    kind = "SGQ" if activity_length is None else "STGQ"

    # Cold sequential pass: no warm cache, one worker.
    cold = QueryService(dataset.graph, dataset.calendars)
    start = time.perf_counter()
    cold.solve_many(queries, max_workers=1)
    t_cold = time.perf_counter() - start

    # Warm threaded pass: second batch through the same service.
    warm = QueryService(dataset.graph, dataset.calendars)
    warm.solve_many(queries)  # warm-up fills the feasible-graph cache
    start = time.perf_counter()
    results = warm.solve_many(queries)
    t_warm = time.perf_counter() - start

    info = warm.cache_info()
    qps = len(queries) / t_warm
    print(f"\n== batch throughput: {len(queries)} {kind} queries, "
          f"{n_initiators} initiators ==")
    print(f"cold sequential : {t_cold:.3f}s ({len(queries) / t_cold:.0f} q/s)")
    print(f"warm threaded   : {t_warm:.3f}s ({qps:.0f} q/s, "
          f"workers={warm.max_workers}, cache hit rate {info.hit_rate:.0%})")
    feasible = sum(1 for r in results if r.feasible)
    print(f"feasible        : {feasible}/{len(results)}")
    return qps


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true",
                        help="CI smoke mode: fewer repeats, smaller batches")
    parser.add_argument("--seed", type=int, default=42)
    args = parser.parse_args(argv)

    repeats = 2 if args.quick else 3
    n_queries = 100 if args.quick else 400

    dataset = workload(network_size=194, schedule_days=1, seed=args.seed)
    fig1a_initiator = pick_initiator(dataset, radius=1, min_candidates=10,
                                     max_candidates=26)
    tail_ref, tail_comp = kernel_sweep(
        "Figure 1(a) sweep", dataset, fig1a_initiator,
        FIG1A["radius"], FIG1A["acquaintance"], FIG1A["group_sizes"], repeats,
    )
    speedup = tail_ref / tail_comp
    print(f"\np >= 6 aggregate speedup: {speedup:.1f}x (floor {SPEEDUP_FLOOR:.0f}x)")

    heavy_initiator = pick_initiator(dataset, radius=2, min_candidates=30,
                                     max_candidates=80)
    kernel_sweep("heavy sweep", dataset, heavy_initiator,
                 HEAVY["radius"], HEAVY["acquaintance"], HEAVY["group_sizes"],
                 repeats)

    batch_throughput(dataset, n_queries, 16, args.seed)
    batch_throughput(dataset, max(20, n_queries // 4), 8, args.seed,
                     activity_length=4)

    if speedup < SPEEDUP_FLOOR:
        print(f"FAIL: p >= 6 speedup {speedup:.1f}x below {SPEEDUP_FLOOR:.0f}x floor",
              file=sys.stderr)
        return 1
    print("\nOK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
