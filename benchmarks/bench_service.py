"""Kernel speedup and per-backend service throughput benchmark.

Three measurements back the compiled-kernel + QueryService work:

1. **Kernel speedup** — the Figure 1(a) SGQ sweep (k = 2, s = 1, the
   194-person real dataset) run once per kernel, with the aggregate
   reference/compiled time ratio reported for the hot tail of the sweep
   (p >= 6).  A second, heavier sweep at s = 2 (larger ego networks) shows
   the kernel on the regime the paper's scalability figures target.
   Disable with ``--no-kernel-sweep`` (e.g. in per-backend CI legs).
2. **Cache-hot SGQ batch** — a mixed-initiator radius-1 batch: sub-millisecond
   per query once the ego-network cache is warm, so it measures executor
   overhead (the thread backend usually wins here; process pays IPC).
3. **Solver-bound STGQ batch** — a radius-2 social-temporal batch at tens of
   milliseconds of popcount-heavy kernel work per query.  This is the
   GIL-bound regime: the thread backend flatlines near one core while the
   initiator-sharded process backend scales with ``--workers``.

``--backend process`` (or ``serial``) measures the thread backend too and
prints a comparison table, so one run demonstrates the scaling claim.
``--backend remote`` spawns a local TCP worker cluster (``--workers``
processes via ``stgq worker``) and measures the network gateway next to the
thread baseline — the cluster column of the comparison.  ``--skew ALPHA``
swaps the uniform batches for the Zipfian mixed-radius workload generator
(``repro.experiments.workloads.generate_query_workload``) and reports
per-shard load balance, stressing LRU eviction and shard skew instead of
the cache-flattering uniform draws.  ``--replay FILE`` measures a saved
JSONL query trace (``save_workload``/``load_workload``) instead of the
synthetic batches — the first step toward feeding measured production
traces.  ``--json PATH`` writes the numbers for CI artifacts
(``BENCH_service.json``).

``--http URL[,URL]`` replays the same workload through running HTTP
gateways (``stgq http``) instead of an in-process backend: batches are
chunked into ``POST /v1/queries`` requests fired concurrently round-robin
across the given gateways, and the report gains served/shed counts and
HTTP throughput.  ``--http-spawn G`` spawns G local gateways over a
spawned TCP worker fleet first (the CI ``http-smoke`` topology).  The run
fails when shed (429) requests exceed ``--http-shed-limit`` percent
(default 5) — the admission-control acceptance gate behind the
``BENCH_service_http.json`` artifact.

Run directly (it is a script, not a pytest-benchmark module)::

    PYTHONPATH=src python benchmarks/bench_service.py               # full
    PYTHONPATH=src python benchmarks/bench_service.py --quick       # CI smoke
    PYTHONPATH=src python benchmarks/bench_service.py \
        --backend process --workers 4 --no-kernel-sweep --quick

The script exits non-zero when the p >= 6 aggregate speedup falls below the
3x acceptance floor, or when the numpy kernel's solve throughput on the
solver-bound STGQ batch falls below ``NUMPY_KERNEL_FLOOR`` times the
compiled kernel's, or when it trails the compiled kernel on the cache-hot
radius-1 SGQ batch (``RADIUS1_KERNEL_FLOOR``) — kernel sweep enabled and
numpy installed — so CI catches kernel regressions loudly.
``--kernels-json PATH`` writes that kernel comparison on its own (the
``BENCH_kernels.json`` artifact, radius-1 leg nested under ``"radius1"``).
"""

from __future__ import annotations

import argparse
import concurrent.futures
import json
import os
import random
import sys
import time
import urllib.error
import urllib.request
from typing import Dict, List, Optional, Tuple

from repro.core import SearchParameters, SGQuery, SGSelect, STGQuery
from repro.exceptions import QueryError
from repro.experiments.workloads import (
    ego_size,
    generate_query_workload,
    load_workload,
    pick_initiator,
    workload,
)
from repro.graph.packed import numpy_kernel_available
from repro.service import QueryService, RemoteBackend, ShardMap
from repro.service.codec import request_for
from repro.service.net import start_local_workers

SPEEDUP_FLOOR = 3.0
#: Acceptance floor for the vectorized kernel: solve throughput on the
#: solver-bound radius-2 STGQ batch, numpy vs compiled, single thread.
#: Raised from 1.3 once cascade batching removed the per-node numpy
#: dispatch overhead from forced chains (measured ~1.47x on 1 CPU).
NUMPY_KERNEL_FLOOR = 1.35
#: Floor for the cache-hot radius-1 SGQ batch: small egos used to be the
#: numpy kernel's worst case (array setup swamped the solve, ~0.65x).
#: Small-instance routing (``NUMPY_MIN_CANDIDATES``) now sends them down
#: the bitset expansion, so the structural ratio is parity; the floor sits
#: a hair under 1.0 purely for timer noise between the interleaved passes.
RADIUS1_KERNEL_FLOOR = 0.97
FIG1A = dict(radius=1, acquaintance=2, group_sizes=(3, 4, 5, 6, 7))
HEAVY = dict(radius=2, acquaintance=2, group_sizes=(5, 6, 7))
#: Dataset shape shared by the gateway AND any spawned remote workers —
#: both sides must load the identical seeded graph or results diverge.
DATASET_PEOPLE = 194
DATASET_DAYS = 1


def _time_solve(solver: SGSelect, query: SGQuery, repeats: int) -> Tuple[float, object]:
    best = float("inf")
    result = None
    for _ in range(repeats):
        start = time.perf_counter()
        result = solver.solve(query)
        best = min(best, time.perf_counter() - start)
    return best, result


def kernel_sweep(
    name: str,
    dataset,
    initiator,
    radius: int,
    acquaintance: int,
    group_sizes,
    repeats: int,
) -> Tuple[float, float]:
    """Run one SGQ sweep on every kernel; return aggregate tail times (ref, compiled).

    The numpy column joins automatically when the interpreter has
    numpy >= 2.0 (otherwise the sweep is the historical two-kernel table).
    """
    kernels = ["reference", "compiled"] + (["numpy"] if numpy_kernel_available() else [])
    solvers = {
        kernel: SGSelect(dataset.graph, SearchParameters(kernel=kernel)) for kernel in kernels
    }
    print(
        f"\n== {name}: s={radius}, k={acquaintance}, "
        f"ego={ego_size(dataset, initiator, radius)} candidates =="
    )
    header = f"{'p':>3}" + "".join(f" {kernel:>12}" for kernel in kernels)
    header += f" {'comp-speedup':>13}"
    if "numpy" in kernels:
        header += f" {'np-vs-comp':>11}"
    print(header)
    totals = {kernel: 0.0 for kernel in kernels}
    tails = {kernel: 0.0 for kernel in kernels}
    for p in group_sizes:
        query = SGQuery(
            initiator=initiator, group_size=p, radius=radius, acquaintance=acquaintance
        )
        times = {}
        results = {}
        for kernel in kernels:
            times[kernel], results[kernel] = _time_solve(solvers[kernel], query, repeats)
            totals[kernel] += times[kernel]
            if p >= 6:
                tails[kernel] += times[kernel]
        reference = results["reference"]
        for kernel in kernels[1:]:
            assert results[kernel].members == reference.members, f"kernel mismatch at p={p}"
            assert results[kernel].total_distance == reference.total_distance
        row = f"{p:>3}" + "".join(f" {times[kernel] * 1000:>10.2f}ms" for kernel in kernels)
        row += f" {times['reference'] / times['compiled']:>12.1f}x"
        if "numpy" in kernels:
            row += f" {times['compiled'] / times['numpy']:>10.2f}x"
        print(row)
    print(
        "sweep aggregate: "
        + " -> ".join(f"{totals[kernel] * 1000:.1f}ms ({kernel})" for kernel in kernels)
    )
    return tails["reference"], tails["compiled"]


def _kernel_batch_throughput(dataset, batch, passes: int) -> Dict[str, object]:
    """Warm-cache, serial-backend throughput of one batch per kernel.

    The kernels' timing passes are *interleaved* (compiled, numpy,
    compiled, ...) rather than run as two sequential blocks: on a shared
    1-CPU runner, frequency drift and neighbour load change over the tens
    of seconds a block takes, and sequential blocks fold that drift
    straight into the reported ratio.  Alternating passes expose both
    kernels to the same conditions, so best-of-``passes`` compares like
    with like.
    """
    measured: Dict[str, object] = {"queries": len(batch), "passes": passes}
    kernels = ["compiled"] + (["numpy"] if numpy_kernel_available() else [])
    services = {}
    try:
        for kernel in kernels:
            service = QueryService(
                dataset.graph,
                dataset.calendars,
                parameters=SearchParameters(kernel=kernel),
                backend="serial",
            )
            service.__enter__()
            service.solve_many(batch)  # warm the ego-network cache
            services[kernel] = service
        best = {kernel: float("inf") for kernel in kernels}
        for _ in range(passes):
            for kernel in kernels:
                start = time.perf_counter()
                services[kernel].solve_many(batch)
                best[kernel] = min(best[kernel], time.perf_counter() - start)
    finally:
        for service in services.values():
            service.__exit__(None, None, None)
    for kernel in kernels:
        qps = len(batch) / best[kernel]
        measured[kernel] = {"wall_s": round(best[kernel], 4), "qps": round(qps, 1)}
        print(f"{kernel:>9}: {best[kernel]:.3f}s  {qps:.1f} q/s")
    if "numpy" in kernels:
        ratio = measured["numpy"]["qps"] / measured["compiled"]["qps"]
        measured["numpy_vs_compiled"] = round(ratio, 3)
    return measured


def kernel_throughput(dataset, stgq_batch, quick: bool, sgq_batch=None) -> Dict[str, object]:
    """Single-thread solve throughput of the compiled and numpy kernels.

    Runs the solver-bound radius-2 STGQ batch through a serial-backend
    service once per kernel (warm ego-network cache, best of several
    passes), i.e. a pure kernel comparison with no executor in the way —
    the measurement behind the ``BENCH_kernels.json`` artifact and the
    numpy-vs-compiled acceptance gate (``NUMPY_KERNEL_FLOOR``).

    When ``sgq_batch`` is given, a second leg times the cache-hot radius-1
    SGQ batch — the small-ego regime where the numpy kernel historically
    trailed the compiled one — under its own ``RADIUS1_KERNEL_FLOOR``
    (nested in the report as ``"radius1"``).
    """
    passes = 3 if quick else 4
    print("\n== kernel throughput: solver-bound radius-2 STGQ batch (serial backend) ==")
    measured = _kernel_batch_throughput(dataset, stgq_batch, passes)
    measured["numpy_available"] = numpy_kernel_available()
    measured["floor"] = NUMPY_KERNEL_FLOOR
    if "numpy_vs_compiled" in measured:
        print(
            f"numpy vs compiled: {measured['numpy_vs_compiled']:.2f}x "
            f"(floor {NUMPY_KERNEL_FLOOR:.2f}x, single-thread)"
        )
    else:
        print("numpy >= 2.0 not installed; kernel gate not applicable")
    if sgq_batch is not None:
        print("\n== kernel throughput: cache-hot radius-1 SGQ batch (serial backend) ==")
        radius1 = _kernel_batch_throughput(dataset, sgq_batch, passes)
        radius1["floor"] = RADIUS1_KERNEL_FLOOR
        measured["radius1"] = radius1
        if "numpy_vs_compiled" in radius1:
            print(
                f"numpy vs compiled (radius 1): {radius1['numpy_vs_compiled']:.2f}x "
                f"(floor {RADIUS1_KERNEL_FLOOR:.2f}x, single-thread)"
            )
    return measured


def build_batches(dataset, quick: bool, seed: int, skew: Optional[float] = None) -> Dict[str, List]:
    """The two batch workloads: cache-hot SGQ and solver-bound STGQ.

    With ``skew`` set (``--skew``), both batches come from the Zipfian
    mixed-radius generator instead of the uniform few-initiator draws: the
    SGQ batch spreads over the whole population (more distinct initiators
    than the default 128-entry cache, so the LRU eviction path is on the
    measured path) and the STGQ batch skews across the 20 largest radius-2
    ego networks, loading shards unevenly the way heavy users do.
    """
    rng = random.Random(seed)
    n_sgq = 100 if quick else 400
    n_stgq = 64 if quick else 200
    # STGQ at radius 2 from the people with the largest ego networks: tens of
    # milliseconds of kernel work per query, the regime where the GIL binds.
    # Twenty initiators keep the CRC32 shard assignment reasonably balanced
    # at the 4-worker width the CI smoke runs with.
    heavy_initiators = sorted(dataset.people, key=lambda v: -ego_size(dataset, v, 2))[:20]
    if skew is not None:
        sgq = generate_query_workload(
            dataset,
            n_sgq,
            skew=skew,
            radii=(1,),
            group_sizes=(4, 5),
            stg_fraction=0.0,
            seed=seed,
        )
        stgq = generate_query_workload(
            dataset,
            n_stgq,
            skew=skew,
            initiators=heavy_initiators,
            radii=(2,),
            group_sizes=(5,),
            stg_fraction=1.0,
            activity_lengths=(4,),
            seed=seed + 1,
        )
        return {"sgq": sgq, "stgq": stgq}
    sgq_initiators = rng.sample(list(dataset.people), 16)
    sgq = [
        SGQuery(initiator=rng.choice(sgq_initiators), group_size=5, radius=1, acquaintance=2)
        for _ in range(n_sgq)
    ]
    stgq = [
        STGQuery(
            initiator=rng.choice(heavy_initiators),
            group_size=5,
            radius=2,
            acquaintance=2,
            activity_length=4,
        )
        for _ in range(n_stgq)
    ]
    return {"sgq": sgq, "stgq": stgq}


def measure_backend(
    dataset, batches: Dict[str, List], backend, workers: Optional[int]
) -> Dict[str, Dict[str, float]]:
    """Warm-cache throughput of one backend (name or instance) on both workloads."""
    measured: Dict[str, Dict[str, float]] = {}
    with QueryService(
        dataset.graph, dataset.calendars, max_workers=workers, backend=backend
    ) as service:
        for kind, queries in batches.items():
            service.solve_many(queries)  # warm ego-network caches (and pools)
            before = service.stats()
            start = time.perf_counter()
            results = service.solve_many(queries)
            wall = time.perf_counter() - start
            after = service.stats()
            # Hit rate for this measured pass only, not service-lifetime.
            hits = after.cache_hits - before.cache_hits
            misses = after.cache_misses - before.cache_misses
            lookups = hits + misses
            measured[kind] = {
                "queries": len(queries),
                "wall_s": round(wall, 4),
                "qps": round(len(queries) / wall, 1),
                "cache_hit_rate": round(hits / lookups, 4) if lookups else 0.0,
                "feasible": sum(1 for r in results if r.feasible),
                # Degraded requests (remote backend, dead worker) are NOT
                # just infeasible: report them so CI can assert zero.
                "errors": sum(1 for r in results if getattr(r, "error", None)),
            }
        measured["workers"] = service.max_workers
    return measured


def _post_chunk(url: str, queries: List, timeout: float) -> Tuple[int, int, int]:
    """POST one chunk as a batch request; ``(status, answered, errors)``.

    A 429 (shed or rate-limited) is a *counted outcome*, not a failure —
    the gate at the end judges the shed fraction.  Transport errors count
    as errors so a dead gateway fails the run loudly.
    """
    payload = {
        "queries": [request_for(query, request_id=i) for i, query in enumerate(queries)],
        "page_size": 1024,
    }
    request = urllib.request.Request(
        f"{url}/v1/queries",
        data=json.dumps(payload).encode("utf-8"),
        headers={"Content-Type": "application/json"},
    )
    try:
        with urllib.request.urlopen(request, timeout=timeout) as reply:
            body = json.loads(reply.read())
            results = body.get("results", [])
            return 200, len(results), sum(1 for r in results if "error" in r)
    except urllib.error.HTTPError as exc:
        exc.read()
        return exc.code, 0, 0 if exc.code == 429 else len(queries)
    except (urllib.error.URLError, OSError, ValueError):
        return 0, 0, len(queries)


def measure_http(
    urls: List[str],
    batches: Dict[str, List],
    chunk_size: int = 16,
    concurrency: int = 8,
    timeout: float = 120.0,
) -> Dict[str, object]:
    """Replay the workload through HTTP gateways; report served/shed counts.

    Chunks of ``chunk_size`` queries go out as concurrent batch POSTs,
    round-robin across ``urls`` — the stateless-tier deployment shape: any
    gateway must serve any chunk.  One warm pass per workload first, so the
    measured pass sees the same warm ego-network caches the in-process
    backends are measured with.
    """
    measured: Dict[str, object] = {"urls": list(urls), "chunk_size": chunk_size}
    total_requests = 0
    total_shed = 0
    for kind, queries in batches.items():
        chunks = [queries[i : i + chunk_size] for i in range(0, len(queries), chunk_size)]
        targets = [urls[i % len(urls)] for i in range(len(chunks))]
        with concurrent.futures.ThreadPoolExecutor(max_workers=concurrency) as pool:
            list(pool.map(lambda cu: _post_chunk(cu[1], cu[0], timeout), zip(chunks, targets)))
            start = time.perf_counter()
            outcomes = list(
                pool.map(lambda cu: _post_chunk(cu[1], cu[0], timeout), zip(chunks, targets))
            )
            wall = time.perf_counter() - start
        answered = sum(count for _, count, _ in outcomes)
        errors = sum(err for _, _, err in outcomes)
        shed = sum(1 for status, _, _ in outcomes if status == 429)
        failed = sum(1 for status, _, _ in outcomes if status not in (200, 429))
        total_requests += len(chunks)
        total_shed += shed
        measured[kind] = {
            "queries": len(queries),
            "requests": len(chunks),
            "answered": answered,
            "shed_requests": shed,
            "failed_requests": failed,
            "errors": errors,
            "wall_s": round(wall, 4),
            "qps": round(answered / wall, 1) if wall > 0 else 0.0,
        }
    measured["total_requests"] = total_requests
    measured["total_shed"] = total_shed
    measured["shed_pct"] = round(100.0 * total_shed / total_requests, 2) if total_requests else 0.0
    return measured


def serial_cold(dataset, batches: Dict[str, List]) -> Dict[str, Dict[str, float]]:
    """Cold single-pass baseline: fresh serial service, empty cache."""
    measured: Dict[str, Dict[str, float]] = {}
    for kind, queries in batches.items():
        with QueryService(dataset.graph, dataset.calendars, backend="serial") as service:
            start = time.perf_counter()
            service.solve_many(queries)
            wall = time.perf_counter() - start
        measured[kind] = {
            "queries": len(queries),
            "wall_s": round(wall, 4),
            "qps": round(len(queries) / wall, 1),
        }
    return measured


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick", action="store_true", help="CI smoke mode: fewer repeats, smaller batches"
    )
    parser.add_argument("--seed", type=int, default=42)
    parser.add_argument(
        "--backend",
        choices=["serial", "thread", "process", "remote"],
        default="thread",
        help="backend to benchmark; 'thread' is always measured as the "
        "comparison baseline. 'remote' spawns a local worker cluster "
        "(--workers processes) and measures the network gateway (default thread)",
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=None,
        help="executor width for the selected backend; for --backend remote "
        "this is the number of spawned TCP workers (default: auto / 2)",
    )
    parser.add_argument(
        "--skew",
        type=float,
        default=None,
        metavar="ALPHA",
        help="use the Zipfian mixed-radius workload generator with this "
        "exponent (e.g. 1.0) instead of uniform few-initiator batches; "
        "also reports per-shard load balance",
    )
    parser.add_argument(
        "--replay",
        metavar="FILE",
        default=None,
        help="replay a saved JSONL query trace (see "
        "repro.experiments.workloads.save_workload) as the single measured "
        "batch instead of the synthetic SGQ/STGQ pair — the path for feeding "
        "measured production traces into the harness",
    )
    parser.add_argument(
        "--http",
        metavar="URL[,URL]",
        default=None,
        help="replay the workload through these running HTTP gateways "
        "(comma-separated base URLs), round-robin, and report HTTP "
        "throughput plus served/shed request counts",
    )
    parser.add_argument(
        "--http-spawn",
        type=int,
        default=None,
        metavar="G",
        help="spawn G local HTTP gateways over a spawned TCP worker fleet "
        "(--workers workers, default 2) and replay the workload through "
        "them — the CI http-smoke topology",
    )
    parser.add_argument(
        "--http-shed-limit",
        type=float,
        default=5.0,
        metavar="PCT",
        help="fail the run when shed (429) requests exceed this percentage "
        "of HTTP requests (default 5)",
    )
    parser.add_argument(
        "--json", metavar="PATH", default=None, help="write results as JSON to PATH"
    )
    parser.add_argument(
        "--kernels-json",
        metavar="PATH",
        default=None,
        help="write the kernel-throughput comparison (compiled vs numpy on "
        "the solver-bound STGQ batch) as JSON to PATH (BENCH_kernels.json)",
    )
    parser.add_argument(
        "--kernel-sweep",
        action=argparse.BooleanOptionalAction,
        default=True,
        help="run the reference-vs-compiled kernel sweep and enforce the "
        f"{SPEEDUP_FLOOR:.0f}x floor (default on)",
    )
    args = parser.parse_args(argv)

    repeats = 2 if args.quick else 3
    dataset = workload(network_size=DATASET_PEOPLE, schedule_days=DATASET_DAYS, seed=args.seed)
    report = {
        "quick": args.quick,
        "seed": args.seed,
        "skew": args.skew,
        "cpu_count": os.cpu_count(),
        "python": sys.version.split()[0],
        "kernel": None,
        "serial_cold": None,
        "backends": {},
    }

    speedup = None
    if args.kernel_sweep:
        fig1a_initiator = pick_initiator(
            dataset, radius=1, min_candidates=10, max_candidates=26
        )
        tail_ref, tail_comp = kernel_sweep(
            "Figure 1(a) sweep",
            dataset,
            fig1a_initiator,
            FIG1A["radius"],
            FIG1A["acquaintance"],
            FIG1A["group_sizes"],
            repeats,
        )
        speedup = tail_ref / tail_comp
        print(f"\np >= 6 aggregate speedup: {speedup:.1f}x (floor {SPEEDUP_FLOOR:.0f}x)")

        heavy_initiator = pick_initiator(
            dataset, radius=2, min_candidates=30, max_candidates=80
        )
        kernel_sweep(
            "heavy sweep",
            dataset,
            heavy_initiator,
            HEAVY["radius"],
            HEAVY["acquaintance"],
            HEAVY["group_sizes"],
            repeats,
        )
        report["kernel"] = {"tail_speedup": round(speedup, 2), "floor": SPEEDUP_FLOOR}

    if args.replay is not None:
        try:
            trace = load_workload(args.replay)
        except (OSError, QueryError) as exc:
            print(f"FAIL: cannot load replay trace: {exc}", file=sys.stderr)
            return 1
        if not trace:
            print(f"FAIL: replay trace {args.replay} is empty", file=sys.stderr)
            return 1
        # Traces reference initiators by id, so a trace captured against a
        # different graph (other dataset, other --seed) must fail with a
        # diagnosis, not a mid-benchmark VertexNotFoundError traceback.
        unknown = {q.initiator for q in trace} - set(dataset.people)
        if unknown:
            print(
                f"FAIL: replay trace {args.replay} does not match this dataset "
                f"({DATASET_PEOPLE} people, seed {args.seed}): "
                f"{len(unknown)} unknown initiator(s), e.g. {sorted(unknown)[:3]}",
                file=sys.stderr,
            )
            return 1
        print(f"\nreplaying {len(trace)} queries from {args.replay}")
        batches = {"replay": trace}
        report["replay"] = {"path": args.replay, "queries": len(trace)}
    else:
        batches = build_batches(dataset, args.quick, args.seed, skew=args.skew)

    if args.kernels_json:
        # The kernel-comparison artifact is an acceptance gate: asking for
        # it in a configuration that cannot produce the numpy-vs-compiled
        # ratio must fail loudly, not silently skip the gate.
        if not args.kernel_sweep or "stgq" not in batches or "sgq" not in batches:
            print(
                "FAIL: --kernels-json needs the kernel sweep and the synthetic "
                "sgq + stgq batches (do not combine with --no-kernel-sweep or "
                "--replay)",
                file=sys.stderr,
            )
            return 1
        if not numpy_kernel_available():
            print(
                "FAIL: --kernels-json requires numpy >= 2.0 (the [speed] extra) "
                "to measure the vectorized kernel",
                file=sys.stderr,
            )
            return 1

    kernels_report = None
    if args.kernel_sweep and "stgq" in batches:
        kernels_report = kernel_throughput(
            dataset, batches["stgq"], args.quick, sgq_batch=batches.get("sgq")
        )
        report["kernels"] = kernels_report
        if args.kernels_json:
            payload = {
                "seed": args.seed,
                "quick": args.quick,
                "cpu_count": os.cpu_count(),
                "python": sys.version.split()[0],
                "dataset_people": DATASET_PEOPLE,
                **kernels_report,
            }
            with open(args.kernels_json, "w", encoding="utf-8") as handle:
                json.dump(payload, handle, indent=2, sort_keys=True)
                handle.write("\n")
            print(f"wrote {args.kernels_json}")

    report["serial_cold"] = serial_cold(dataset, batches)

    cluster = None
    http_fleet = None
    gateway_cluster = None
    try:
        if args.backend == "remote":
            n_remote_workers = args.workers or 2
            print(f"\nspawning {n_remote_workers} local TCP workers for the remote backend ...")
            cluster = start_local_workers(
                n_remote_workers,
                people=DATASET_PEOPLE,
                days=DATASET_DAYS,
                seed=args.seed,
                backend="serial",
            )
            print(f"workers ready at {cluster.connect_spec()}")

        backends_to_measure = ["thread"]
        if args.backend != "thread":
            backends_to_measure.append(args.backend)
        for backend in backends_to_measure:
            if backend == "remote":
                instance = RemoteBackend(cluster.connect_spec())
                report["backends"][backend] = measure_backend(dataset, batches, instance, None)
            else:
                workers = args.workers if backend == args.backend else None
                report["backends"][backend] = measure_backend(dataset, batches, backend, workers)

        http_urls = None
        if args.http:
            http_urls = [url.strip().rstrip("/") for url in args.http.split(",") if url.strip()]
        elif args.http_spawn:
            from repro.service.http import start_local_gateways

            if cluster is not None:
                connect = cluster.connect_spec()  # reuse the remote-leg fleet
            else:
                n_http_workers = args.workers or 2
                print(f"\nspawning {n_http_workers} local TCP workers for the HTTP tier ...")
                http_fleet = start_local_workers(
                    n_http_workers,
                    people=DATASET_PEOPLE,
                    days=DATASET_DAYS,
                    seed=args.seed,
                    backend="serial",
                )
                connect = http_fleet.connect_spec()
            print(f"spawning {args.http_spawn} HTTP gateways over {connect} ...")
            gateway_cluster = start_local_gateways(
                args.http_spawn,
                connect=connect,
                people=DATASET_PEOPLE,
                days=DATASET_DAYS,
                seed=args.seed,
            )
            http_urls = gateway_cluster.urls
        if http_urls:
            print(f"\n== HTTP tier: replay via {len(http_urls)} gateway(s) ==")
            http_report = measure_http(http_urls, batches)
            report["http"] = http_report
            for kind in batches:
                h = http_report[kind]
                print(
                    f"{kind:>7}: {h['qps']:>8.1f} q/s over HTTP  "
                    f"({h['requests']} requests, {h['shed_requests']} shed, "
                    f"{h['failed_requests']} failed, {h['errors']} errors)"
                )
            print(
                f"shed: {http_report['total_shed']}/{http_report['total_requests']} "
                f"requests ({http_report['shed_pct']}%, limit {args.http_shed_limit}%)"
            )
    finally:
        if gateway_cluster is not None:
            gateway_cluster.close()
        if http_fleet is not None:
            http_fleet.close()
        if cluster is not None:
            cluster.close()

    if args.replay is not None:
        # Per-shard routed counts for the replayed trace: how the measured
        # (or, for thread/serial, an equally wide hypothetical) sharded
        # deployment splits this exact workload.  Recorded into the replay
        # summary so a saved trace's JSON artifact answers "which worker
        # would soak this?" without re-running the benchmark.
        if args.backend in ("process", "remote"):
            n_shards = report["backends"][args.backend]["workers"]
            routed_label = f"{args.backend} backend"
        else:
            n_shards = args.workers or 4
            routed_label = "hypothetical sharded deployment"
        replay_shards = ShardMap(n_shards)
        replay_trace = batches["replay"]
        routed_counts = replay_shards.load_report(replay_trace)
        report["replay"]["n_shards"] = n_shards
        report["replay"]["routed"] = routed_counts
        report["replay"]["imbalance"] = round(replay_shards.imbalance(replay_trace), 3)
        print(
            f"\nreplay routing over {n_shards} shards ({routed_label}): "
            f"{routed_counts} (max/mean {report['replay']['imbalance']:.2f}x)"
        )

    if args.skew is not None:
        # Report balance for the shard layout that was actually measured.
        # Only the sharded backends route by initiator; for thread/serial
        # the report is the hypothetical split a sharded deployment of the
        # same width would see, and is labelled as such.
        if args.backend in ("process", "remote"):
            n_shards = report["backends"][args.backend]["workers"]
            label = f"{args.backend} backend"
        else:
            n_shards = args.workers or 4
            label = "hypothetical sharded deployment"
        shards = ShardMap(n_shards)
        print()
        for kind, queries in batches.items():
            counts = shards.load_report(queries)
            report[f"shard_balance_{kind}"] = counts
            print(
                f"{kind} shard balance over {n_shards} shards "
                f"({label}, skew={args.skew}): {counts} "
                f"(max/mean {shards.imbalance(queries):.2f}x)"
            )

    kinds = list(batches)
    print(
        "\n== warm batch throughput: "
        + " / ".join(f"{len(batches[kind])} {kind}" for kind in kinds)
        + " queries =="
    )
    cold = report["serial_cold"]
    heavy = "stgq" if "stgq" in kinds else kinds[-1]
    header = f"{'backend':>10} {'workers':>8}"
    for kind in kinds:
        header += f" {kind + ' q/s':>12}"
    header += f" {heavy + ' wall':>12}"
    print(header)
    row = f"{'cold':>10} {'1':>8}"
    for kind in kinds:
        row += f" {cold[kind]['qps']:>12.1f}"
    print(row + f" {cold[heavy]['wall_s']:>11.2f}s")
    for backend, measured in report["backends"].items():
        row = f"{backend:>10} {measured['workers']:>8}"
        for kind in kinds:
            row += f" {measured[kind]['qps']:>12.1f}"
        print(row + f" {measured[heavy]['wall_s']:>11.2f}s")
    if args.backend in report["backends"] and args.backend != "thread":
        thread_qps = report["backends"]["thread"][heavy]["qps"]
        chosen_qps = report["backends"][args.backend][heavy]["qps"]
        print(
            f"\n{heavy} {args.backend} vs thread: {chosen_qps / thread_qps:.2f}x "
            f"({chosen_qps:.1f} vs {thread_qps:.1f} q/s)"
        )

    if args.json:
        with open(args.json, "w", encoding="utf-8") as handle:
            json.dump(report, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"wrote {args.json}")

    if speedup is not None and speedup < SPEEDUP_FLOOR:
        print(
            f"FAIL: p >= 6 speedup {speedup:.1f}x below {SPEEDUP_FLOOR:.0f}x floor",
            file=sys.stderr,
        )
        return 1
    if kernels_report is not None and "numpy_vs_compiled" in kernels_report:
        ratio = kernels_report["numpy_vs_compiled"]
        if ratio < NUMPY_KERNEL_FLOOR:
            print(
                f"FAIL: numpy kernel at {ratio:.2f}x compiled throughput, "
                f"below the {NUMPY_KERNEL_FLOOR:.2f}x floor",
                file=sys.stderr,
            )
            return 1
        radius1 = kernels_report.get("radius1", {})
        if "numpy_vs_compiled" in radius1 and radius1["numpy_vs_compiled"] < RADIUS1_KERNEL_FLOOR:
            print(
                f"FAIL: numpy kernel at {radius1['numpy_vs_compiled']:.2f}x compiled "
                f"throughput on the radius-1 SGQ batch, below the "
                f"{RADIUS1_KERNEL_FLOOR:.2f}x floor",
                file=sys.stderr,
            )
            return 1
    if "http" in report:
        http_report = report["http"]
        broken = sum(
            http_report[kind]["failed_requests"] + http_report[kind]["errors"]
            for kind in batches
        )
        if broken:
            print(
                f"FAIL: {broken} HTTP request(s)/result(s) failed outright "
                "(only 200 and 429 are acceptable outcomes)",
                file=sys.stderr,
            )
            return 1
        if http_report["shed_pct"] > args.http_shed_limit:
            print(
                f"FAIL: {http_report['shed_pct']}% of HTTP requests shed, "
                f"above the {args.http_shed_limit}% limit",
                file=sys.stderr,
            )
            return 1
    print("\nOK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
