"""Figure 1(b): SGQ running time vs. social radius ``s``.

Paper setting: p = 4, k = 2, s swept over {1, 3, 5}.  Growing ``s`` enlarges
the feasible graph (friends of friends join the candidate pool), which blows
up the baseline's enumeration while SGSelect's radius extraction plus pruning
keeps the growth moderate.  The sweep here uses s in {1, 2, 3}: on the
194-person dataset the two-hop neighbourhood already covers most of the
network, so larger radii only repeat the s = 3 measurements.
"""

import pytest

from repro.core import BaselineSGQ, SGQuery, SGSelect

from .conftest import ROUNDS

GROUP_SIZE = 4
ACQUAINTANCE = 2
RADII = (1, 2, 3)


def _query(initiator, s):
    return SGQuery(initiator=initiator, group_size=GROUP_SIZE, radius=s, acquaintance=ACQUAINTANCE)


@pytest.mark.parametrize("s", RADII)
@pytest.mark.benchmark(group="fig1b-sgq-vs-s")
def test_sgselect(benchmark, real_dataset, real_initiator, s):
    query = _query(real_initiator, s)
    result = benchmark.pedantic(lambda: SGSelect(real_dataset.graph).solve(query), **ROUNDS)
    benchmark.extra_info["algorithm"] = "SGSelect"
    benchmark.extra_info["s"] = s
    benchmark.extra_info["total_distance"] = result.total_distance


@pytest.mark.parametrize("s", RADII)
@pytest.mark.benchmark(group="fig1b-sgq-vs-s")
def test_baseline(benchmark, real_dataset, real_initiator, s):
    query = _query(real_initiator, s)
    result = benchmark.pedantic(
        lambda: BaselineSGQ(real_dataset.graph).solve(query, max_groups=10_000_000), **ROUNDS
    )
    benchmark.extra_info["algorithm"] = "Baseline"
    benchmark.extra_info["s"] = s
    benchmark.extra_info["groups_enumerated"] = result.stats.nodes_expanded
