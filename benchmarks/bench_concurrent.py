"""Multi-gateway worker throughput benchmark: 1 vs 2 gateways, one worker.

This measures the tentpole claim of the per-batch
:class:`~repro.service.ExecutionContext` refactor.  Before it, a TCP worker
held a lock across batch execution, so batch frames from a second gateway
queued behind the first — one gateway per worker fleet was the intended
shape.  With per-batch contexts the worker interleaves batch frames from
any number of connections, so a second gateway turns otherwise-idle worker
capacity into throughput.

Setup: **one** ``stgq worker`` subprocess whose local service uses the
``process`` backend with ``--worker-width`` shards (default 2).  The
measured traffic is solver-bound STGQ batches (radius 2, the popcount-heavy
regime), each batch pinned to a single heavy initiator chosen so the
streams land on *different* worker-side process shards.  A lone gateway
sends its batches one round trip at a time, so each batch keeps only one of
the worker's shards busy; two gateways keep both busy — exactly the
utilization argument for per-request accounting in the energy-efficient
cluster-design literature.

Legs:

1. ``1 gateway`` — one connection sends every batch sequentially.
2. ``2 gateways`` — two connections (threads), each sending its stream's
   half of the same batches concurrently.

The ratio (leg 2 / leg 1 queries-per-second) is the headline number; CI
fails the run when it drops below ``--floor`` (default 1.3x).  The floor is
only enforced on machines with at least two cores — on a single-core
runner concurrent CPU-bound batches cannot beat sequential ones, so the
script prints the measurement and skips the assertion.

Run directly::

    PYTHONPATH=src python benchmarks/bench_concurrent.py --quick \
        --json BENCH_service_concurrent.json
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import threading
import time
from typing import Dict, List

from repro.core import STGQuery
from repro.experiments.workloads import ego_size, workload
from repro.service import QueryService, RemoteBackend
from repro.service.net import start_local_workers
from repro.service.sharding import stable_shard

DATASET_PEOPLE = 194
DATASET_DAYS = 1


def pick_stream_initiators(dataset, width: int) -> List:
    """One heavy radius-2 initiator per worker-side shard.

    Batches pinned to these initiators occupy disjoint shards of the
    worker's process pool, so the concurrency win is visible: a second
    in-flight batch uses a worker process the first leaves idle.
    """
    by_weight = sorted(dataset.people, key=lambda v: -ego_size(dataset, v, 2))
    chosen: Dict[int, object] = {}
    for person in by_weight:
        shard = stable_shard(person, width)
        if shard not in chosen:
            chosen[shard] = person
        if len(chosen) == width:
            break
    if len(chosen) < width:  # pragma: no cover - 194 people always cover 2 shards
        raise SystemExit(f"could not find initiators for all {width} shards")
    return [chosen[shard] for shard in sorted(chosen)]


def build_stream_batches(
    initiators: List, n_batches: int, batch_size: int
) -> List[List[STGQuery]]:
    """``n_batches`` solver-bound STGQ batches, round-robin over streams."""
    batches = []
    for index in range(n_batches):
        initiator = initiators[index % len(initiators)]
        batches.append(
            [
                STGQuery(
                    initiator=initiator,
                    group_size=5,
                    radius=2,
                    acquaintance=2,
                    activity_length=4,
                )
                for _ in range(batch_size)
            ]
        )
    return batches


def run_leg(
    dataset, connect: str, batches: List[List[STGQuery]], n_gateways: int
) -> Dict[str, float]:
    """Send every batch through ``n_gateways`` concurrent gateways.

    Batches are dealt round-robin, so with two gateways each one carries a
    single stream (= a single worker-side shard).  Returns wall clock,
    throughput, and the error count (which must be zero on a healthy run).
    """
    assignments: List[List[List[STGQuery]]] = [[] for _ in range(n_gateways)]
    for index, batch in enumerate(batches):
        assignments[index % n_gateways].append(batch)
    services = [
        QueryService(
            dataset.graph,
            dataset.calendars,
            backend=RemoteBackend(connect, timeout=120.0),
        )
        for _ in range(n_gateways)
    ]
    outcomes: List[Dict[str, float]] = [{} for _ in range(n_gateways)]
    start_line = threading.Barrier(n_gateways + 1)

    def gateway(slot: int) -> None:
        service = services[slot]
        answered = errors = 0
        failure = None
        try:
            start_line.wait(timeout=60)
            for batch in assignments[slot]:
                results = service.solve_many(batch)
                answered += len(results)
                errors += sum(1 for r in results if getattr(r, "error", None))
        except Exception as exc:  # a crashed gateway must fail the leg loudly
            failure = f"{type(exc).__name__}: {exc}"
        outcomes[slot] = {"answered": answered, "errors": errors, "failure": failure}

    threads = [threading.Thread(target=gateway, args=(slot,)) for slot in range(n_gateways)]
    try:
        for thread in threads:
            thread.start()
        start_line.wait(timeout=60)
        start = time.perf_counter()
        for thread in threads:
            thread.join()
        wall = time.perf_counter() - start
    finally:
        for service in services:
            service.close()
    total = sum(int(outcome.get("answered", 0)) for outcome in outcomes)
    errors = sum(int(outcome.get("errors", 0)) for outcome in outcomes)
    failures = [outcome["failure"] for outcome in outcomes if outcome.get("failure")]
    for failure in failures:
        print(f"FAIL: gateway thread crashed: {failure}", file=sys.stderr)
    return {
        "gateways": n_gateways,
        "queries": total,
        # A crashed gateway under-reports `queries`; count it as an error so
        # every caller's errors-must-be-zero gate rejects the partial run.
        "errors": errors + len(failures),
        "wall_s": round(wall, 4),
        "qps": round(total / wall, 2) if wall else 0.0,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true", help="CI smoke mode: smaller batches")
    parser.add_argument("--seed", type=int, default=42)
    parser.add_argument(
        "--worker-width",
        type=int,
        default=2,
        help="process-backend shards inside the single worker (default 2)",
    )
    parser.add_argument(
        "--floor",
        type=float,
        default=1.3,
        help="minimum 2-gateway/1-gateway throughput ratio (default 1.3; "
        "0 disables; only enforced on multi-core machines)",
    )
    parser.add_argument(
        "--json", metavar="PATH", default=None, help="write results as JSON to PATH"
    )
    args = parser.parse_args(argv)

    dataset = workload(network_size=DATASET_PEOPLE, schedule_days=DATASET_DAYS, seed=args.seed)
    initiators = pick_stream_initiators(dataset, args.worker_width)
    n_batches = 4 * args.worker_width if args.quick else 8 * args.worker_width
    batch_size = 6 if args.quick else 12
    batches = build_stream_batches(initiators, n_batches, batch_size)
    print(
        f"one worker (process backend, {args.worker_width} shards), "
        f"{n_batches} batches x {batch_size} radius-2 STGQ queries, "
        f"stream initiators {initiators}"
    )

    report = {
        "quick": args.quick,
        "seed": args.seed,
        "cpu_count": os.cpu_count(),
        "worker_width": args.worker_width,
        "batches": n_batches,
        "batch_size": batch_size,
        "legs": {},
    }
    with start_local_workers(
        1,
        people=DATASET_PEOPLE,
        days=DATASET_DAYS,
        seed=args.seed,
        backend="process",
        workers=args.worker_width,
    ) as cluster:
        print(f"worker ready at {cluster.connect_spec()}")
        # Warm-up: run each distinct stream batch once so the worker's
        # process pools are started and its ego-network caches are hot
        # before either measured leg.
        warmup = run_leg(dataset, cluster.connect_spec(), batches[: args.worker_width], 1)
        if warmup["errors"]:
            print(f"FAIL: {warmup['errors']} errors during warm-up", file=sys.stderr)
            return 1
        for n_gateways in (1, 2):
            leg = run_leg(dataset, cluster.connect_spec(), batches, n_gateways)
            report["legs"][str(n_gateways)] = leg
            print(
                f"{n_gateways} gateway(s): {leg['queries']} queries in "
                f"{leg['wall_s']:.2f}s = {leg['qps']:.1f} q/s "
                f"({leg['errors']} errors)"
            )
            if leg["errors"]:
                print(f"FAIL: {leg['errors']} degraded requests", file=sys.stderr)
                return 1

    ratio = report["legs"]["2"]["qps"] / report["legs"]["1"]["qps"]
    report["ratio_2_vs_1"] = round(ratio, 3)
    print(f"\n2-gateway vs 1-gateway worker throughput: {ratio:.2f}x")

    if args.json:
        with open(args.json, "w", encoding="utf-8") as handle:
            json.dump(report, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"wrote {args.json}")

    cpu_count = os.cpu_count() or 1
    if args.floor and cpu_count < 2:
        print(
            f"single-core machine (cpu_count={cpu_count}): concurrent CPU-bound "
            f"batches cannot beat sequential ones here; floor {args.floor:.1f}x "
            "reported but not enforced"
        )
    elif args.floor and ratio < args.floor:
        print(
            f"FAIL: 2-gateway speedup {ratio:.2f}x below the {args.floor:.1f}x floor "
            "— is the worker serializing batch frames again?",
            file=sys.stderr,
        )
        return 1
    print("\nOK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
