"""Extension benchmark: greedy heuristics vs. the exact algorithms.

Not a paper figure — it quantifies the latency/quality trade-off offered by
the approximate solvers added on top of the reproduction (see
``repro.core.heuristics``).  The exact optimum is computed alongside so the
quality gap is recorded in ``extra_info``.
"""

import pytest

from repro.core import GreedySGQ, GreedySTGQ, SGQuery, SGSelect, STGQuery, STGSelect

from .conftest import ROUNDS


@pytest.mark.benchmark(group="extension-heuristics")
def test_greedy_sgq(benchmark, real_dataset, real_initiator):
    query = SGQuery(initiator=real_initiator, group_size=6, radius=1, acquaintance=2)
    exact = SGSelect(real_dataset.graph).solve(query)
    result = benchmark.pedantic(lambda: GreedySGQ(real_dataset.graph).solve(query), **ROUNDS)
    benchmark.extra_info["algorithm"] = "GreedySGQ"
    benchmark.extra_info["optimal_distance"] = exact.total_distance
    benchmark.extra_info["greedy_distance"] = result.total_distance


@pytest.mark.benchmark(group="extension-heuristics")
def test_exact_sgq_reference(benchmark, real_dataset, real_initiator):
    query = SGQuery(initiator=real_initiator, group_size=6, radius=1, acquaintance=2)
    result = benchmark.pedantic(lambda: SGSelect(real_dataset.graph).solve(query), **ROUNDS)
    benchmark.extra_info["algorithm"] = "SGSelect"
    benchmark.extra_info["optimal_distance"] = result.total_distance


@pytest.mark.benchmark(group="extension-heuristics")
def test_greedy_stgq(benchmark, real_dataset, real_initiator):
    query = STGQuery(
        initiator=real_initiator, group_size=5, radius=1, acquaintance=2, activity_length=4
    )
    exact = STGSelect(real_dataset.graph, real_dataset.calendars).solve(query)
    result = benchmark.pedantic(
        lambda: GreedySTGQ(real_dataset.graph, real_dataset.calendars).solve(query), **ROUNDS
    )
    benchmark.extra_info["algorithm"] = "GreedySTGQ"
    benchmark.extra_info["optimal_distance"] = exact.total_distance
    benchmark.extra_info["greedy_distance"] = result.total_distance


@pytest.mark.benchmark(group="extension-heuristics")
def test_exact_stgq_reference(benchmark, real_dataset, real_initiator):
    query = STGQuery(
        initiator=real_initiator, group_size=5, radius=1, acquaintance=2, activity_length=4
    )
    result = benchmark.pedantic(
        lambda: STGSelect(real_dataset.graph, real_dataset.calendars).solve(query), **ROUNDS
    )
    benchmark.extra_info["algorithm"] = "STGSelect"
    benchmark.extra_info["optimal_distance"] = result.total_distance
