"""Figure 1(c): SGQ running time vs. acquaintance constraint ``k``.

Paper setting: p = 5, s = 2, k swept from 1 to 6.  The reproduced claim is
that ``k`` barely changes the running time of either algorithm (it filters
candidate groups but does not change how many are enumerated) and that
SGSelect stays roughly two orders of magnitude faster throughout.  The
harness runs the sweep with s = 1 so the exhaustive baseline remains
runnable in pure Python; the claim itself is radius-independent (see the
note in ``repro.experiments.config``).
"""

import pytest

from repro.core import BaselineSGQ, SGQuery, SGSelect

from .conftest import ROUNDS

GROUP_SIZE = 5
RADIUS = 1
K_VALUES = (1, 2, 3, 4, 5, 6)


def _query(initiator, k):
    return SGQuery(initiator=initiator, group_size=GROUP_SIZE, radius=RADIUS, acquaintance=k)


@pytest.mark.parametrize("k", K_VALUES)
@pytest.mark.benchmark(group="fig1c-sgq-vs-k")
def test_sgselect(benchmark, real_dataset, real_initiator, k):
    query = _query(real_initiator, k)
    result = benchmark.pedantic(lambda: SGSelect(real_dataset.graph).solve(query), **ROUNDS)
    benchmark.extra_info["algorithm"] = "SGSelect"
    benchmark.extra_info["k"] = k
    benchmark.extra_info["feasible"] = result.feasible


@pytest.mark.parametrize("k", K_VALUES)
@pytest.mark.benchmark(group="fig1c-sgq-vs-k")
def test_baseline(benchmark, real_dataset, real_initiator, k):
    query = _query(real_initiator, k)
    result = benchmark.pedantic(
        lambda: BaselineSGQ(real_dataset.graph).solve(query, max_groups=5_000_000), **ROUNDS
    )
    benchmark.extra_info["algorithm"] = "Baseline"
    benchmark.extra_info["k"] = k
    benchmark.extra_info["groups_enumerated"] = result.stats.nodes_expanded
