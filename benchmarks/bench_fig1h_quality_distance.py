"""Figure 1(h): solution quality — total social distance vs. ``p``.

Paper setting: the same STGArrange / PCArrange comparison as Figure 1(g),
reporting the total social distance of both groups.  The reproduced claim:
STGArrange's group is never farther from the initiator than the manually
coordinated group (and is usually closer), while also being more mutually
acquainted (Figure 1(g)).
"""

import math

import pytest

from repro.core import STGArrange

from .conftest import ROUNDS

RADIUS = 1
ACTIVITY_LENGTH = 4
GROUP_SIZES = (3, 4, 5, 6, 7)


@pytest.mark.parametrize("p", GROUP_SIZES)
@pytest.mark.benchmark(group="fig1h-quality-distance")
def test_total_distance_comparison(benchmark, real_dataset, real_initiator, p):
    arranger = STGArrange(real_dataset.graph, real_dataset.calendars)
    outcome = benchmark.pedantic(
        lambda: arranger.compare(
            initiator=real_initiator,
            group_size=p,
            radius=RADIUS,
            activity_length=ACTIVITY_LENGTH,
        ),
        **ROUNDS,
    )
    pc_distance = outcome.pcarrange.total_distance if outcome.pcarrange.feasible else math.nan
    st_distance = outcome.stgarrange.total_distance if outcome.stgarrange.feasible else math.nan
    benchmark.extra_info["p"] = p
    benchmark.extra_info["pcarrange_distance"] = pc_distance
    benchmark.extra_info["stgarrange_distance"] = st_distance
    if outcome.pcarrange.feasible and outcome.stgarrange.feasible:
        assert st_distance <= pc_distance + 1e-9
