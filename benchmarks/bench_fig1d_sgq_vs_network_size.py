"""Figure 1(d): SGQ running time vs. network size.

Paper setting: p = 5, k = 3, s = 1, network size swept over
{194, 800, 3200, 12800} (the larger networks generated from a coauthorship
dataset).  The reproduced claim: SGSelect's running time stays well below
the baseline's across all sizes, because the radius extraction confines the
search to the initiator's ego network regardless of how big the whole graph
becomes.
"""

import pytest

from repro.core import BaselineSGQ, IPSolver, SGQuery, SGSelect

from .conftest import ROUNDS, dataset_for_size, initiator_for

GROUP_SIZE = 5
RADIUS = 1
ACQUAINTANCE = 3
NETWORK_SIZES = (194, 800, 3200, 12800)


def _setup(network_size):
    dataset = dataset_for_size(network_size)
    initiator = initiator_for(dataset, radius=RADIUS)
    query = SGQuery(
        initiator=initiator, group_size=GROUP_SIZE, radius=RADIUS, acquaintance=ACQUAINTANCE
    )
    return dataset, query


@pytest.mark.parametrize("network_size", NETWORK_SIZES)
@pytest.mark.benchmark(group="fig1d-sgq-vs-network-size")
def test_sgselect(benchmark, network_size):
    dataset, query = _setup(network_size)
    result = benchmark.pedantic(lambda: SGSelect(dataset.graph).solve(query), **ROUNDS)
    benchmark.extra_info["algorithm"] = "SGSelect"
    benchmark.extra_info["network_size"] = network_size
    benchmark.extra_info["feasible"] = result.feasible


@pytest.mark.parametrize("network_size", NETWORK_SIZES)
@pytest.mark.benchmark(group="fig1d-sgq-vs-network-size")
def test_baseline(benchmark, network_size):
    dataset, query = _setup(network_size)
    result = benchmark.pedantic(
        lambda: BaselineSGQ(dataset.graph).solve(query, max_groups=5_000_000), **ROUNDS
    )
    benchmark.extra_info["algorithm"] = "Baseline"
    benchmark.extra_info["network_size"] = network_size
    benchmark.extra_info["groups_enumerated"] = result.stats.nodes_expanded


@pytest.mark.parametrize("network_size", NETWORK_SIZES[:2])
@pytest.mark.benchmark(group="fig1d-sgq-vs-network-size")
def test_integer_programming(benchmark, network_size):
    """The IP point is included for the two smaller networks; building the
    availability-free compact model is cheap, but the comparison's conclusion
    (IP is the slowest exact method) is already visible there."""
    dataset, query = _setup(network_size)
    result = benchmark.pedantic(lambda: IPSolver().solve_sgq(dataset.graph, query), **ROUNDS)
    benchmark.extra_info["algorithm"] = "IP"
    benchmark.extra_info["network_size"] = network_size
    benchmark.extra_info["feasible"] = result.feasible
