"""Out-of-core substrate benchmark: dict vs mmap'd CSR at scale.

Generates a seeded Chung-Lu power-law graph (default 10^5 vertices), packs
it to a ``.stgq`` file, and measures:

1. radius-2 feasible-graph extraction throughput on the adjacency-dict
   substrate vs the CSR substrate (same seeded initiators);
2. a mixed 50-query STGQ batch through a process-backend
   :class:`~repro.service.QueryService` whose workers open the substrate
   memory-mapped — the deployment shape the substrate exists for — with
   per-worker RSS so the shared-page-cache claim is a number, not prose.

``--json PATH`` writes the report for CI artifacts.  ``--profile PATH``
re-runs the CSR extraction leg under :mod:`cProfile` and writes the top 30
cumulative entries to PATH (uploaded as a CI artifact so a regression
caught by the gate comes with its own flame-sketch).  The script exits
non-zero when CSR extraction throughput falls below
``--min-extractions-per-sec`` (the scale-smoke CI floor) or when the CSR
substrate fails to answer the batch identically feasible-count-wise to the
dict substrate.

Run::

    PYTHONPATH=src python benchmarks/bench_substrate_scale.py --quick
"""

from __future__ import annotations

import argparse
import cProfile
import io
import json
import pstats
import sys
import tempfile
import time
from pathlib import Path

from repro.core import SearchParameters, STGQuery
from repro.datasets import dataset_from_substrate, generate_scale_dataset
from repro.graph import csr_available, extract_feasible_graph
from repro.graph.csr import pack_graph
from repro.service import QueryService
from repro.service.backends import ProcessBackend

#: Default floor for radius-2 CSR extractions per second on a 1-CPU box.
#: A 10^5-vertex power-law graph extracts a multi-thousand-vertex ego
#: network per call (the seeded initiator mix includes the hub); the floor
#: exists to catch order-of-magnitude regressions, not to race.
DEFAULT_MIN_EXTRACTIONS_PER_SEC = 10.0


def _time_extractions(graph, initiators, radius=2):
    start = time.perf_counter()
    reached = 0
    for initiator in initiators:
        reached += len(extract_feasible_graph(graph, initiator, radius))
    elapsed = time.perf_counter() - start
    return {
        "calls": len(initiators),
        "seconds": round(elapsed, 4),
        "per_sec": round(len(initiators) / elapsed, 2) if elapsed else float("inf"),
        "vertices_reached": reached,
    }


def _profile_extractions(graph, initiators, path, radius=2, top=30):
    """cProfile the CSR extraction sweep; write the ``top`` cumulative rows."""
    profiler = cProfile.Profile()
    profiler.enable()
    for initiator in initiators:
        extract_feasible_graph(graph, initiator, radius)
    profiler.disable()
    buffer = io.StringIO()
    stats = pstats.Stats(profiler, stream=buffer)
    stats.sort_stats("cumulative").print_stats(top)
    Path(path).write_text(buffer.getvalue(), encoding="utf-8")


def _stgq_batch(dataset, initiators, queries_total):
    return [
        STGQuery(
            initiator=initiators[i % len(initiators)],
            group_size=3,
            radius=2,
            acquaintance=2,
            activity_length=2,
        )
        for i in range(queries_total)
    ]


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--people", type=int, default=100_000, help="graph size (default 100000)")
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument("--queries", type=int, default=50, help="STGQ batch size (default 50)")
    parser.add_argument("--workers", type=int, default=2, help="process-backend shards")
    parser.add_argument("--extractions", type=int, default=30, help="timed extraction calls per substrate")
    parser.add_argument(
        "--quick", action="store_true", help="shrink to 20k vertices / 20 queries"
    )
    parser.add_argument(
        "--skip-dict",
        action="store_true",
        help="skip the adjacency-dict leg (it materialises the full dict graph)",
    )
    parser.add_argument(
        "--min-extractions-per-sec",
        type=float,
        default=DEFAULT_MIN_EXTRACTIONS_PER_SEC,
        help=f"CSR extraction throughput floor (default {DEFAULT_MIN_EXTRACTIONS_PER_SEC})",
    )
    parser.add_argument("--json", metavar="PATH", default=None, help="write the report to PATH")
    parser.add_argument(
        "--profile",
        metavar="PATH",
        default=None,
        help="cProfile the CSR extraction leg, write the top-30 cumulative entries to PATH",
    )
    args = parser.parse_args(argv)

    if not csr_available():
        print("FAIL: CSR substrate requires numpy", file=sys.stderr)
        return 2
    if args.quick:
        args.people = min(args.people, 20_000)
        args.queries = min(args.queries, 20)

    print(f"generating scale-{args.people} dataset (seed {args.seed})...")
    t0 = time.perf_counter()
    dataset = generate_scale_dataset(args.people, seed=args.seed)
    csr = dataset.graph
    gen_seconds = time.perf_counter() - t0
    print(
        f"  {csr.vertex_count} vertices / {csr.edge_count} edges "
        f"in {gen_seconds:.2f}s"
    )

    with tempfile.TemporaryDirectory(prefix="stgq-bench-") as tmp:
        path = Path(tmp) / f"scale-{args.people}.stgq"
        t0 = time.perf_counter()
        pack_graph(csr, path)
        pack_seconds = time.perf_counter() - t0
        file_bytes = path.stat().st_size
        print(f"  packed to {path.name}: {file_bytes} bytes in {pack_seconds:.2f}s")

        # Seeded initiators: the hub plus a spread of mid-degree vertices.
        step = max(1, csr.vertex_count // (args.extractions * 7))
        initiators = [0] + [
            (i * step * 7 + 13) % csr.vertex_count for i in range(1, args.extractions)
        ]

        report = {
            "people": csr.vertex_count,
            "edges": csr.edge_count,
            "seed": args.seed,
            "graph_version": csr.version,
            "file_bytes": file_bytes,
            "generate_seconds": round(gen_seconds, 3),
            "pack_seconds": round(pack_seconds, 3),
            "extraction": {},
        }

        substrate = dataset_from_substrate(path, seed=args.seed)
        report["extraction"]["csr"] = _time_extractions(substrate.graph, initiators)
        print(
            f"  csr extraction:  {report['extraction']['csr']['per_sec']}/s "
            f"over {len(initiators)} initiators"
        )
        if args.profile:
            _profile_extractions(substrate.graph, initiators, args.profile)
            print(f"  wrote csr extraction profile to {args.profile}")
        if not args.skip_dict:
            dict_graph = csr.to_social_graph()
            report["extraction"]["dict"] = _time_extractions(dict_graph, initiators)
            print(
                f"  dict extraction: {report['extraction']['dict']['per_sec']}/s "
                f"over {len(initiators)} initiators"
            )

        # STGQ batch over the mmap'd substrate behind the process backend.
        queries = _stgq_batch(substrate, initiators, args.queries)
        backend = ProcessBackend(workers=args.workers)
        params = SearchParameters()
        with QueryService(
            substrate.graph, substrate.calendars, parameters=params, backend=backend
        ) as service:
            t0 = time.perf_counter()
            results = service.solve_many(queries)
            batch_seconds = time.perf_counter() - t0
            rss = backend.worker_rss()
        feasible = sum(1 for r in results if r.feasible)
        report["stgq_batch"] = {
            "backend": "process",
            "workers": args.workers,
            "queries": len(queries),
            "feasible": feasible,
            "seconds": round(batch_seconds, 3),
            "qps": round(len(queries) / batch_seconds, 2),
            "worker_rss_bytes": {str(k): v for k, v in sorted(rss.items())},
        }
        print(
            f"  stgq batch: {len(queries)} queries in {batch_seconds:.2f}s "
            f"({report['stgq_batch']['qps']} q/s, {feasible} feasible) "
            f"on {args.workers} mmap-sharing workers"
        )
        for shard, bytes_ in sorted(rss.items()):
            print(f"    worker {shard} rss: {bytes_ / 1e6:.1f} MB")

    if args.json:
        with open(args.json, "w") as handle:
            json.dump(report, handle, indent=2, sort_keys=True)
        print(f"wrote {args.json}")

    csr_per_sec = report["extraction"]["csr"]["per_sec"]
    if csr_per_sec < args.min_extractions_per_sec:
        print(
            f"FAIL: csr extraction {csr_per_sec}/s below the "
            f"{args.min_extractions_per_sec}/s floor",
            file=sys.stderr,
        )
        return 1
    dict_leg = report["extraction"].get("dict")
    if dict_leg is not None:
        c, d = report["extraction"]["csr"], dict_leg
        if c["vertices_reached"] != d["vertices_reached"]:
            print(
                "FAIL: substrates disagree on reached vertices "
                f"(csr {c['vertices_reached']} vs dict {d['vertices_reached']})",
                file=sys.stderr,
            )
            return 1
    print("substrate scale bench: OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
