"""Ablation benchmarks: contribution of each search strategy.

DESIGN.md credits SGSelect/STGSelect's advantage to five strategies (access
ordering, distance pruning, acquaintance pruning, availability pruning and
pivot time slots).  These benchmarks re-run a fixed query with one strategy
disabled at a time; the timing differences attribute the speed-up, and every
variant is asserted to return the same optimal distance (the strategies are
sound, they only save work).
"""

import pytest

from repro.core import STGQuery, SGQuery, STGSelect, SGSelect, SearchParameters

from .conftest import ROUNDS

SG_VARIANTS = {
    "full": {},
    "no-access-ordering": {"use_access_ordering": False},
    "no-distance-pruning": {"use_distance_pruning": False},
    "no-acquaintance-pruning": {"use_acquaintance_pruning": False},
}

STG_VARIANTS = {
    "full": {},
    "no-availability-pruning": {"use_availability_pruning": False},
    "no-pivot-slots": {"use_pivot_slots": False},
    "no-distance-pruning": {"use_distance_pruning": False},
}


@pytest.fixture(scope="module")
def sg_reference(real_dataset, real_initiator):
    query = SGQuery(initiator=real_initiator, group_size=6, radius=1, acquaintance=2)
    return query, SGSelect(real_dataset.graph).solve(query)


@pytest.fixture(scope="module")
def stg_reference(real_dataset, real_initiator):
    query = STGQuery(
        initiator=real_initiator, group_size=4, radius=1, acquaintance=2, activity_length=4
    )
    return query, STGSelect(real_dataset.graph, real_dataset.calendars).solve(query)


@pytest.mark.parametrize("variant", sorted(SG_VARIANTS))
@pytest.mark.benchmark(group="ablation-sgselect")
def test_sgselect_strategy_ablation(benchmark, real_dataset, sg_reference, variant):
    query, reference = sg_reference
    parameters = SearchParameters(**SG_VARIANTS[variant])
    result = benchmark.pedantic(
        lambda: SGSelect(real_dataset.graph, parameters).solve(query), **ROUNDS
    )
    benchmark.extra_info["variant"] = variant
    benchmark.extra_info["nodes_expanded"] = result.stats.nodes_expanded
    assert result.matches(reference)


@pytest.mark.parametrize("variant", sorted(STG_VARIANTS))
@pytest.mark.benchmark(group="ablation-stgselect")
def test_stgselect_strategy_ablation(benchmark, real_dataset, stg_reference, variant):
    query, reference = stg_reference
    parameters = SearchParameters(**STG_VARIANTS[variant])
    result = benchmark.pedantic(
        lambda: STGSelect(real_dataset.graph, real_dataset.calendars, parameters).solve(query),
        **ROUNDS,
    )
    benchmark.extra_info["variant"] = variant
    benchmark.extra_info["nodes_expanded"] = result.stats.nodes_expanded
    assert result.matches(reference)
