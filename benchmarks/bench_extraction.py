"""Feasible-graph extraction throughput: dict vs CSR at three scales.

Times radius-2 :func:`~repro.graph.extract_feasible_graph` on the
adjacency-dict and CSR substrates over the same seeded initiators at the
194-person reference dataset and seeded Chung-Lu graphs of 10^4 and 10^5
vertices, reporting extractions/second per substrate and the
``csr_vs_dict`` speedup ratio per size — the measurement behind the
committed ``BENCH_extraction.json`` artifact.

The CSR lane builds the feasible graph straight from its row slices (one
vectorised bounded-Bellman-Ford, one gather for the induced adjacency), so
it must not lose to the dict substrate once the graph outgrows cache:
``--min-ratio`` (default 1.0) is enforced at 10^4 and 10^5 vertices.  At
194 vertices the ratio is reported but not gated — both lanes finish in
microseconds there and the number is noise-dominated.  The script also
exits non-zero when the substrates disagree on reached vertices.

``--quick`` shrinks passes/initiators for CI;  the JSON keys are identical
in both modes so ``check_baseline.py`` can pair every metric.

Run::

    PYTHONPATH=src python benchmarks/bench_extraction.py --json BENCH_extraction.json
"""

from __future__ import annotations

import argparse
import json
import random
import sys
import time

from repro.datasets import generate_scale_dataset
from repro.experiments.workloads import workload
from repro.graph import csr_available, extract_feasible_graph
from repro.graph.csr import CSRGraph

SIZES = (194, 10_000, 100_000)
#: ``csr_vs_dict`` is gated from this size up; below it the per-call cost
#: is microseconds and the ratio says more about the timer than the code.
RATIO_FLOOR_MIN_SIZE = 10_000
DEFAULT_MIN_RATIO = 1.0
RADIUS = 2


def _time_extractions(graph, initiators, passes):
    """Best-of-``passes`` wall time over the whole initiator sweep."""
    best = float("inf")
    reached = 0
    for _ in range(passes):
        start = time.perf_counter()
        reached = 0
        for initiator in initiators:
            reached += len(extract_feasible_graph(graph, initiator, RADIUS))
        best = min(best, time.perf_counter() - start)
    return {
        "calls": len(initiators),
        "passes": passes,
        "seconds": round(best, 4),
        "per_sec": round(len(initiators) / best, 2) if best else float("inf"),
        "vertices_reached": reached,
    }


def _substrate_pair(size, seed):
    """(csr, dict) graphs plus seeded initiators for one scale point."""
    if size == 194:
        dataset = workload(network_size=size, seed=42)
        dict_graph = dataset.graph
        csr = CSRGraph.from_social_graph(dict_graph)
        rng = random.Random(seed)
        initiators = rng.sample(sorted(dataset.people), 30)
    else:
        csr = generate_scale_dataset(size, seed=seed).graph
        dict_graph = csr.to_social_graph()
        # The scale-bench initiator mix: the hub plus mid-degree spread.
        step = max(1, size // (30 * 7))
        initiators = [0] + [(i * step * 7 + 13) % size for i in range(1, 30)]
    return csr, dict_graph, initiators


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument(
        "--quick", action="store_true", help="single pass, half the initiators (CI smoke)"
    )
    parser.add_argument(
        "--min-ratio",
        type=float,
        default=DEFAULT_MIN_RATIO,
        metavar="RATIO",
        help=f"csr_vs_dict floor at >= {RATIO_FLOOR_MIN_SIZE} vertices "
        f"(default {DEFAULT_MIN_RATIO})",
    )
    parser.add_argument("--json", metavar="PATH", default=None, help="write the report to PATH")
    args = parser.parse_args(argv)

    if not csr_available():
        print("FAIL: CSR substrate requires numpy", file=sys.stderr)
        return 2
    passes = 1 if args.quick else 3

    report = {"seed": args.seed, "quick": args.quick, "radius": RADIUS, "sizes": {}}
    failures = []
    for size in SIZES:
        csr, dict_graph, initiators = _substrate_pair(size, args.seed)
        if args.quick:
            initiators = initiators[: max(2, len(initiators) // 2)]
        print(f"== {size} vertices: radius-{RADIUS} extraction over {len(initiators)} initiators ==")
        csr_leg = _time_extractions(csr, initiators, passes)
        dict_leg = _time_extractions(dict_graph, initiators, passes)
        ratio = round(csr_leg["per_sec"] / dict_leg["per_sec"], 3)
        report["sizes"][str(size)] = {
            "csr": csr_leg,
            "dict": dict_leg,
            "csr_vs_dict": ratio,
        }
        print(
            f"  csr {csr_leg['per_sec']}/s  dict {dict_leg['per_sec']}/s  "
            f"csr_vs_dict {ratio}x"
        )
        if csr_leg["vertices_reached"] != dict_leg["vertices_reached"]:
            failures.append(
                f"substrates disagree on reached vertices at {size} "
                f"(csr {csr_leg['vertices_reached']} vs dict {dict_leg['vertices_reached']})"
            )
        if size >= RATIO_FLOOR_MIN_SIZE and ratio < args.min_ratio:
            failures.append(
                f"csr_vs_dict {ratio}x below the {args.min_ratio}x floor at {size} vertices"
            )

    if args.json:
        with open(args.json, "w", encoding="utf-8") as handle:
            json.dump(report, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"wrote {args.json}")

    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    if failures:
        return 1
    print("extraction bench: OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
