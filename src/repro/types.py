"""Shared type aliases used across the ``repro`` package.

The library is deliberately permissive about what a "vertex" is: any hashable
object works (ints for synthetic datasets, strings for the paper's toy
Yahoo! Movies example).  The aliases below document intent rather than
enforce structure.
"""

from __future__ import annotations

from typing import Hashable, Iterable, Mapping, Tuple

#: A vertex identifier in a social graph.  Any hashable object.
Vertex = Hashable

#: An undirected edge expressed as an ordered pair of vertices.
Edge = Tuple[Vertex, Vertex]

#: A weighted edge: ``(u, v, distance)``.
WeightedEdge = Tuple[Vertex, Vertex, float]

#: Mapping from a vertex to its social distance from the initiator.
DistanceMap = Mapping[Vertex, float]

#: An iterable of vertices, used for group candidates.
VertexSet = Iterable[Vertex]

#: Index of a time slot (0-based inside the library, 1-based in the paper's
#: prose; conversion helpers live in :mod:`repro.temporal.slots`).
SlotIndex = int
