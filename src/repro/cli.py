"""Command-line interface.

Three sub-commands mirror how the library is typically used:

``stgq query``
    Answer one SGQ or STGQ on a generated dataset and print the group.

``stgq figure``
    Re-run a panel of the paper's Figure 1 and print the measured table.

``stgq ablation``
    Run the strategy-ablation study on a generated dataset.

``stgq serve``
    Answer queries through the cached :class:`~repro.service.QueryService`
    on a selectable executor backend
    (``--backend serial|thread|process|remote``), either as a generated
    benchmark batch or as a JSONL request loop over stdin/stdout
    (``--jsonl``).  ``--backend remote --connect host:p1,host:p2`` turns the
    process into a cluster gateway.

``stgq worker``
    Serve a local QueryService over the framed TCP protocol
    (``--listen HOST:PORT``); the building block gateways connect to.

``stgq cluster``
    One-command local cluster: spawn N ``stgq worker`` subprocesses plus a
    gateway connected to them (equivalent to ``serve --backend remote``).

``stgq http``
    Run one HTTP/JSON gateway (``--listen HOST:PORT``): ``POST
    /v1/queries`` (single + batch with cursor pagination), ``GET /health``
    and ``GET /stats``, with bounded-queue admission control (429 +
    ``Retry-After`` load-shedding), optional per-API-key rate limiting and
    a structured JSONL access log.  ``--backend remote --connect ...``
    makes it the stateless front door of a worker fleet; run several for
    the multi-gateway topology (``docs/http.md``).

``stgq stats``
    Operator's view of a running fleet: send the ``stats`` control frame to
    one or more workers (``--connect HOST:PORT[,HOST:PORT...]``) and
    pretty-print each worker's service counters and cache effectiveness —
    no Python REPL required.

``stgq mutate``
    Apply live-graph mutations (see ``docs/live_graph.md``): generate a
    seeded mutation trace (or load one with ``--trace FILE.jsonl``,
    save one with ``--save``), apply it batch-by-batch to the seeded
    dataset's service and — with ``--connect`` — distribute each batch to
    the running workers as versioned delta frames, verifying the whole
    fleet ends at the same live version.

``stgq place``
    Build a load-aware placement map (see ``docs/placement.md``): replay a
    saved workload trace, pack initiators onto ``--workers N`` workers by
    observed per-ego load, replicate the hottest egos across ``--replicas``
    workers and write the result as ``placement.json`` — the file
    ``serve``/``worker``/``cluster``/``http`` accept via ``--placement``
    and the ``placement_update`` control frame distributes live.

``stgq pack``
    Convert a SNAP-style edge list into a packed ``.stgq`` CSR substrate
    file that ``serve``/``worker`` open memory-mapped via ``--graph``.

``stgq inspect``
    Print a ``.stgq`` file's header (vertex/edge counts, array dtypes,
    format revision, content version hash) without loading the arrays.

``serve``/``worker``/``cluster``/``http`` install SIGINT/SIGTERM handlers
that close the service first (draining executor pools, worker processes and
sockets), so Ctrl-C never leaks forkserver workers.  The serving loops
(``serve --jsonl``, ``worker``, ``http``) drain *in-flight requests* before
exiting — see :mod:`repro.service.drain` — so a mid-batch SIGTERM drops no
accepted work.

Run ``python -m repro --help`` (or ``stgq --help`` once installed) for the
full argument reference.
"""

from __future__ import annotations

import argparse
import contextlib
import random
import signal
import sys
import time
from typing import Iterator, List, Optional, Sequence, Tuple

from .core.planner import ActivityPlanner
from .core.query import VALID_KERNELS, SearchParameters, SGQuery, STGQuery
from .datasets.realistic import generate_real_dataset
from .exceptions import QueryError, ReproError
from .experiments.ablation import format_ablation, run_sg_ablation, run_stg_ablation
from .experiments.config import FIGURE_IDS, ExperimentScale
from .experiments.figures import run_figure
from .experiments.reporting import format_quality_table, format_table
from .experiments.workloads import pick_initiator
from .service import (
    ALL_BACKEND_NAMES,
    BACKEND_NAMES,
    QueryService,
    RemoteBackend,
    serve_jsonl,
)
from .service.drain import ShutdownSignal
from .service.net import parse_addresses, run_worker, start_local_workers

__all__ = ["main", "build_parser"]


def _positive_int(text: str) -> int:
    value = int(text)
    if value < 1:
        raise argparse.ArgumentTypeError(f"must be >= 1, got {value}")
    return value


def _listen_address(text: str) -> Tuple[str, int]:
    host, _, port_text = text.rpartition(":")
    try:
        port = int(port_text)
    except ValueError:
        raise argparse.ArgumentTypeError(f"expected HOST:PORT, got {text!r}") from None
    if not host or not 0 <= port < 65536:
        raise argparse.ArgumentTypeError(f"expected HOST:PORT, got {text!r}")
    return host, port


@contextlib.contextmanager
def _graceful_shutdown() -> Iterator[None]:
    """Translate SIGINT/SIGTERM into ``SystemExit`` for the enclosing scope.

    A raised ``SystemExit`` unwinds the ``with service:`` block, so executor
    pools, forkserver workers and sockets are drained instead of leaked when
    the operator hits Ctrl-C or an orchestrator sends SIGTERM.  The previous
    handlers are restored on exit (the CLI commands are the outermost layer,
    so nesting is not a concern).
    """

    def _raise(signum: int, frame: object) -> None:
        raise SystemExit(128 + signum)

    previous = {}
    for signum in (signal.SIGINT, signal.SIGTERM):
        try:
            previous[signum] = signal.signal(signum, _raise)
        except ValueError:  # pragma: no cover - not the main thread
            pass
    try:
        yield
    finally:
        for signum, handler in previous.items():
            signal.signal(signum, handler)


def _add_placement_arguments(parser: argparse.ArgumentParser) -> None:
    """``--placement FILE`` / ``--replicas N`` for routing-capable commands."""
    parser.add_argument(
        "--placement",
        default=None,
        metavar="FILE",
        help="route by this placement.json map (stgq place output) instead "
        "of the CRC32 fallback; shard count must match the worker fleet",
    )
    parser.add_argument(
        "--replicas",
        type=_positive_int,
        default=None,
        help="override the loaded map's hot-ego replica width (requires "
        "--placement; 1 collapses replication)",
    )


def _resolve_placement(args: argparse.Namespace):
    """Load ``--placement`` (honouring ``--replicas``) or return ``None``.

    Raises :class:`QueryError` on usage mistakes so callers can render them
    argparse-style (stderr + exit 2).
    """
    from .service import load_placement

    placement_path = getattr(args, "placement", None)
    replicas = getattr(args, "replicas", None)
    if placement_path is None:
        if replicas is not None:
            raise QueryError("--replicas requires --placement FILE")
        return None
    placement = load_placement(placement_path)
    if replicas is not None:
        placement = placement.with_replicas(replicas)
    return placement


def build_parser() -> argparse.ArgumentParser:
    """Create the argument parser (exposed for the CLI tests)."""
    parser = argparse.ArgumentParser(
        prog="stgq",
        description="Social-Temporal Group Query reproduction (VLDB 2011).",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    query = subparsers.add_parser("query", help="answer one SGQ/STGQ on a generated dataset")
    query.add_argument("--people", type=int, default=194, help="population size (default 194)")
    query.add_argument("--days", type=int, default=1, help="schedule length in days (default 1)")
    query.add_argument("--seed", type=int, default=42, help="dataset seed (default 42)")
    query.add_argument("-p", "--group-size", type=int, required=True, help="activity size p")
    query.add_argument("-s", "--radius", type=int, default=1, help="social radius s (default 1)")
    query.add_argument("-k", "--acquaintance", type=int, default=1, help="acquaintance constraint k")
    query.add_argument(
        "-m",
        "--activity-length",
        type=int,
        default=None,
        help="activity length in slots; omit for a purely social query (SGQ)",
    )
    query.add_argument(
        "--algorithm",
        default=None,
        help="solver to use (sgselect/stgselect/baseline/ip/pcarrange)",
    )
    query.add_argument("--initiator", type=int, default=None, help="initiator id (default: auto)")

    figure = subparsers.add_parser("figure", help="re-run a panel of the paper's Figure 1")
    figure.add_argument("panel", choices=list(FIGURE_IDS), help="which panel to run (1a..1h)")
    figure.add_argument(
        "--scale",
        choices=[s.value for s in ExperimentScale],
        default=ExperimentScale.SMOKE.value,
        help="experiment scale (default smoke)",
    )
    figure.add_argument("--repetitions", type=int, default=1, help="timing repetitions per point")
    figure.add_argument("--csv", action="store_true", help="emit CSV instead of a table")

    ablation = subparsers.add_parser("ablation", help="strategy ablation study")
    ablation.add_argument("--people", type=int, default=120)
    ablation.add_argument("--days", type=int, default=1)
    ablation.add_argument("--seed", type=int, default=42)
    ablation.add_argument("-p", "--group-size", type=int, default=5)
    ablation.add_argument("-s", "--radius", type=int, default=1)
    ablation.add_argument("-k", "--acquaintance", type=int, default=2)
    ablation.add_argument("-m", "--activity-length", type=int, default=None)

    def add_dataset_arguments(sub: argparse.ArgumentParser) -> None:
        sub.add_argument("--people", type=int, default=194, help="population size (default 194)")
        sub.add_argument("--days", type=int, default=1, help="schedule length in days (default 1)")
        sub.add_argument("--seed", type=int, default=42, help="dataset/batch seed (default 42)")

    def add_substrate_argument(sub: argparse.ArgumentParser) -> None:
        sub.add_argument(
            "--graph",
            default=None,
            metavar="FILE.stgq",
            help="serve a packed CSR substrate opened memory-mapped (see 'stgq "
            "pack') instead of generating a --people dataset; calendars are "
            "materialised lazily from --seed",
        )

    def add_service_arguments(sub: argparse.ArgumentParser) -> None:
        sub.add_argument(
            "--cache-size", type=_positive_int, default=128, help="feasible-graph cache entries"
        )
        sub.add_argument(
            "--kernel",
            choices=list(VALID_KERNELS),
            default="compiled",
            help="branch-and-bound kernel (default compiled; 'numpy' needs "
            "the [speed] extra and falls back to compiled without it)",
        )

    def add_traffic_arguments(sub: argparse.ArgumentParser) -> None:
        sub.add_argument("--queries", type=int, default=100, help="batch size (default 100)")
        sub.add_argument(
            "--initiators",
            type=_positive_int,
            default=16,
            help="number of distinct initiators to draw queries from (default 16)",
        )
        sub.add_argument(
            "--jsonl",
            action="store_true",
            help="serve JSONL requests from stdin to stdout until EOF instead of "
            "generating a batch (stats summary goes to stderr)",
        )
        sub.add_argument(
            "--batch-size",
            type=_positive_int,
            default=64,
            help="pipelining batch size for --jsonl (default 64)",
        )
        sub.add_argument("-p", "--group-size", type=int, default=5)
        sub.add_argument("-s", "--radius", type=int, default=1)
        sub.add_argument("-k", "--acquaintance", type=int, default=2)
        sub.add_argument(
            "-m",
            "--activity-length",
            type=int,
            default=None,
            help="activity length in slots; omit for a purely social (SGQ) batch",
        )

    serve = subparsers.add_parser(
        "serve",
        help="answer queries through the cached QueryService (selectable executor backend)",
        description=(
            "Serve SGQ/STGQ traffic through the cached QueryService. Scaling the "
            "service: --backend thread (default) fans a batch over a thread pool "
            "sharing one ego-network cache — best for cache-hot traffic, but the "
            "compiled kernel is GIL-bound, so it peaks near one core. --backend "
            "process shards initiators across persistent worker processes, each "
            "holding its own graph copy and ego-network LRU cache; queries always "
            "route to the worker owning their initiator, so caches stay hot and "
            "popcount-heavy batches scale across cores. --backend serial is the "
            "single-threaded baseline. --backend remote --connect host:p1,host:p2 "
            "shards the same way across stgq worker processes over TCP — the "
            "cluster gateway. With --jsonl the command turns into a stdin/stdout "
            "JSONL request loop (one request per line, responses in request "
            "order) instead of generating a synthetic batch."
        ),
    )
    add_dataset_arguments(serve)
    add_substrate_argument(serve)
    add_traffic_arguments(serve)
    serve.add_argument(
        "--backend",
        choices=list(ALL_BACKEND_NAMES),
        default="thread",
        help=(
            "executor backend: 'serial' (in-process loop), 'thread' (shared-cache "
            "pool; GIL-bound), 'process' (initiator-sharded worker processes, one "
            "graph copy + ego cache each; scales across cores), 'remote' "
            "(initiator-sharded TCP workers; needs --connect) (default thread)"
        ),
    )
    serve.add_argument(
        "--workers",
        type=_positive_int,
        default=None,
        help="executor width: threads for --backend thread, worker processes "
        "(= shards) for --backend process (default: auto)",
    )
    serve.add_argument(
        "--connect",
        default=None,
        help="worker addresses for --backend remote, e.g. "
        "'127.0.0.1:9001,127.0.0.1:9002' (shard count = address count)",
    )
    serve.add_argument(
        "--timeout",
        type=float,
        default=30.0,
        help="per-request timeout in seconds for --backend remote (default 30)",
    )
    _add_placement_arguments(serve)
    add_service_arguments(serve)

    worker = subparsers.add_parser(
        "worker",
        help="serve a QueryService over the framed TCP protocol (cluster building block)",
        description=(
            "Run one cluster worker: a QueryService on the seeded dataset behind "
            "an asyncio TCP server speaking the length-framed stgq protocol "
            "(hello/ping/stats control frames + batch query frames). Gateways "
            "(stgq serve --backend remote) route each initiator's queries to the "
            "worker owning its shard, so this worker's ego-network cache stays "
            "hot for its share of users. Prints 'STGQ-WORKER-READY host port' "
            "once listening (port 0 picks an ephemeral port)."
        ),
    )
    worker.add_argument(
        "--listen",
        type=_listen_address,
        default=("127.0.0.1", 0),
        metavar="HOST:PORT",
        help="address to bind (default 127.0.0.1:0 = ephemeral port)",
    )
    add_dataset_arguments(worker)
    add_substrate_argument(worker)
    worker.add_argument(
        "--backend",
        choices=list(BACKEND_NAMES),
        default="serial",
        help="executor backend of this worker's local service (default serial)",
    )
    worker.add_argument(
        "--workers",
        type=_positive_int,
        default=None,
        help="executor width of the local backend (default: auto)",
    )
    _add_placement_arguments(worker)
    add_service_arguments(worker)

    cluster = subparsers.add_parser(
        "cluster",
        help="one-command local cluster: N worker subprocesses + a gateway",
        description=(
            "Spawn N stgq worker subprocesses on ephemeral localhost ports, then "
            "run a gateway (the equivalent of stgq serve --backend remote "
            "--connect ...) against them. Workers are terminated when the "
            "gateway exits, including on SIGINT/SIGTERM."
        ),
    )
    cluster.add_argument(
        "--workers",
        type=_positive_int,
        default=2,
        help="number of worker subprocesses (= shards) (default 2)",
    )
    cluster.add_argument(
        "--worker-backend",
        choices=list(BACKEND_NAMES),
        default="serial",
        help="executor backend inside each worker (default serial)",
    )
    cluster.add_argument(
        "--timeout",
        type=float,
        default=30.0,
        help="gateway per-request timeout in seconds (default 30)",
    )
    _add_placement_arguments(cluster)
    add_dataset_arguments(cluster)
    add_traffic_arguments(cluster)
    add_service_arguments(cluster)

    http = subparsers.add_parser(
        "http",
        help="run an HTTP/JSON gateway with admission control and load-shedding",
        description=(
            "Serve the query service over HTTP: POST /v1/queries answers one "
            "query object or a {'queries': [...]} batch (cursor pagination, "
            "bounded page size), GET /health reports fleet/cache/live-version "
            "state and GET /stats the service counters. Requests beyond "
            "--max-concurrency wait in a bounded queue of --max-queue; the "
            "rest are shed immediately with 429 + Retry-After, so overload "
            "costs the fleet nothing. --rate-limit adds per-client token "
            "buckets keyed on the X-API-Key header. Every request is logged "
            "as one JSON line (latency, status, shed/ratelimited outcome). "
            "Prints 'STGQ-HTTP-READY host port' once listening (port 0 picks "
            "an ephemeral port); SIGTERM drains in-flight requests before "
            "exit. Gateways are stateless: run N of them over one --connect "
            "worker fleet for the multi-gateway topology (docs/http.md)."
        ),
    )
    http.add_argument(
        "--listen",
        type=_listen_address,
        default=("127.0.0.1", 8080),
        metavar="HOST:PORT",
        help="address to bind (default 127.0.0.1:8080; port 0 = ephemeral)",
    )
    add_dataset_arguments(http)
    add_substrate_argument(http)
    http.add_argument(
        "--backend",
        choices=list(ALL_BACKEND_NAMES),
        default="serial",
        help="executor backend behind the gateway; 'remote' fronts a TCP "
        "worker fleet via --connect (default serial)",
    )
    http.add_argument(
        "--workers",
        type=_positive_int,
        default=None,
        help="executor width for thread/process backends (default: auto)",
    )
    http.add_argument(
        "--connect",
        default=None,
        help="worker addresses for --backend remote, e.g. "
        "'127.0.0.1:9001,127.0.0.1:9002'",
    )
    http.add_argument(
        "--timeout",
        type=float,
        default=30.0,
        help="per-request timeout in seconds for --backend remote (default 30)",
    )
    _add_placement_arguments(http)
    add_service_arguments(http)
    http.add_argument(
        "--max-concurrency",
        type=_positive_int,
        default=8,
        help="requests solving at once before newcomers queue (default 8)",
    )
    http.add_argument(
        "--max-queue",
        type=int,
        default=16,
        help="requests allowed to wait for a solve slot; beyond this they "
        "are shed with 429 + Retry-After (default 16; 0 = shed immediately "
        "at full concurrency)",
    )
    http.add_argument(
        "--retry-after",
        type=float,
        default=1.0,
        help="Retry-After hint in seconds on shed responses (default 1)",
    )
    http.add_argument(
        "--rate-limit",
        default=None,
        metavar="RATE[:BURST]",
        help="per-client token bucket keyed on the X-API-Key header (fall "
        "back: client IP): RATE tokens/s with BURST capacity, e.g. '10' or "
        "'10:25' (default: disabled)",
    )
    http.add_argument(
        "--admit-timeout",
        type=float,
        default=10.0,
        help="max seconds a request waits in the admission queue before "
        "being shed anyway (default 10)",
    )
    http.add_argument(
        "--drain-timeout",
        type=float,
        default=30.0,
        help="max seconds the SIGTERM drain waits for in-flight requests "
        "(default 30)",
    )
    http.add_argument(
        "--access-log",
        default="-",
        metavar="PATH",
        help="JSONL access-log destination: '-' for stderr (default), "
        "'none' to disable, or a file path (appended)",
    )

    stats = subparsers.add_parser(
        "stats",
        help="fetch and pretty-print live worker stats over the wire",
        description=(
            "Send the stats control frame to one or more running stgq workers "
            "and pretty-print each worker's service counters (queries, "
            "feasibility split, solver seconds, nodes expanded) and cache "
            "effectiveness. Unreachable workers are reported and the command "
            "exits non-zero if no worker answered."
        ),
    )
    stats.add_argument(
        "--connect",
        required=True,
        help="worker addresses, e.g. '127.0.0.1:9001,127.0.0.1:9002'",
    )
    stats.add_argument(
        "--timeout",
        type=float,
        default=5.0,
        help="per-worker connect/read timeout in seconds (default 5)",
    )
    stats.add_argument(
        "--json",
        action="store_true",
        help="emit one JSON object per worker instead of the table",
    )

    mutate = subparsers.add_parser(
        "mutate",
        help="apply (and optionally distribute) a live-graph mutation trace",
        description=(
            "Replay a mutation trace against the seeded dataset's service. "
            "Without --trace a seeded trace is generated (--count/--trace-seed), "
            "so the same flags produce the same mutations everywhere; --save "
            "writes the trace as JSONL for later replay. With --connect the "
            "trace is distributed batch-by-batch to running stgq workers as "
            "versioned delta frames (gaps bridged by log replay or snapshot), "
            "and the command verifies every worker ends at the gateway's live "
            "version. Prints applied counts, targeted-invalidation totals and "
            "the final fleet version."
        ),
    )
    add_dataset_arguments(mutate)
    add_substrate_argument(mutate)
    mutate.add_argument(
        "--count",
        type=_positive_int,
        default=32,
        help="mutations to generate when no --trace is given (default 32)",
    )
    mutate.add_argument(
        "--trace-seed",
        type=int,
        default=7,
        help="seed for the generated mutation trace (default 7)",
    )
    mutate.add_argument(
        "--trace",
        default=None,
        metavar="FILE.jsonl",
        help="replay this JSONL mutation trace instead of generating one",
    )
    mutate.add_argument(
        "--save",
        default=None,
        metavar="FILE.jsonl",
        help="write the trace as JSONL (one mutation per line) and continue",
    )
    mutate.add_argument(
        "--batch-size",
        type=_positive_int,
        default=8,
        help="mutations per distributed batch (default 8)",
    )
    mutate.add_argument(
        "--connect",
        default=None,
        help="distribute to these workers as delta frames, e.g. "
        "'127.0.0.1:9001,127.0.0.1:9002'",
    )
    mutate.add_argument(
        "--timeout",
        type=float,
        default=30.0,
        help="per-request timeout in seconds for --connect (default 30)",
    )
    mutate.add_argument(
        "--cache-size", type=_positive_int, default=128, help="feasible-graph cache entries"
    )

    place = subparsers.add_parser(
        "place",
        help="build a load-aware placement map from a saved workload trace",
        description=(
            "Offline placement pass (docs/placement.md): replay a workload "
            "trace (save_workload JSONL — the format stgq serve --jsonl and "
            "bench_service.py --replay consume), count queries per initiator, "
            "pack initiators onto --workers N workers greedily by descending "
            "load, and replicate any ego whose load alone reaches a worker's "
            "fair share across --replicas workers. Initiators absent from "
            "the trace route via a virtual-node consistent-hash ring. Writes "
            "the versioned map as placement.json (-o) for --placement / the "
            "placement_update control frame, and prints per-worker load "
            "shares with the CRC32-fallback comparison."
        ),
    )
    place.add_argument("trace", metavar="TRACE.jsonl", help="workload trace to replay")
    place.add_argument(
        "--workers",
        type=_positive_int,
        required=True,
        help="worker fleet size the map routes over (= shard count)",
    )
    place.add_argument(
        "--replicas",
        type=_positive_int,
        default=2,
        help="replica width for hot egos (default 2; 1 disables replication)",
    )
    place.add_argument(
        "--vnodes",
        type=_positive_int,
        default=None,
        help="virtual nodes per worker on the fallback ring (default 64)",
    )
    place.add_argument(
        "--ring-seed",
        type=int,
        default=0,
        help="seed for the ring's vnode positions (default 0)",
    )
    place.add_argument(
        "--map-version",
        type=_positive_int,
        default=1,
        help="version stamped into the map (>= 1; workers adopt only "
        "strictly newer versions) (default 1)",
    )
    place.add_argument(
        "-o",
        "--output",
        default=None,
        metavar="placement.json",
        help="write the map here (omit for a dry run that only prints)",
    )
    place.add_argument(
        "--json",
        action="store_true",
        help="emit the map plus the load report as one JSON object",
    )

    pack = subparsers.add_parser(
        "pack",
        help="convert an edge list into a packed .stgq CSR substrate file",
        description=(
            "Read a SNAP-style edge list (integer ids, 'u v [distance]' lines, "
            "# comments; self-loops dropped, duplicate edges deduplicated) and "
            "write it as a single .stgq file: CSR adjacency arrays behind a "
            "JSON header, ready for serve/worker to open memory-mapped via "
            "--graph. Prints the vertex/edge counts and the content version "
            "hash of the packed substrate."
        ),
    )
    pack.add_argument("edgelist", help="input edge-list file")
    pack.add_argument("output", metavar="OUT.stgq", help="destination substrate file")
    pack.add_argument(
        "--quantize",
        action="store_true",
        help="store edge weights as int32 against a header scale factor "
        "(format 2): halves the file's dominant array at a bounded ~2**-31 "
        "relative weight error; 'stgq inspect' reports the dtype",
    )

    inspect_parser = subparsers.add_parser(
        "inspect",
        help="print a .stgq substrate file's header",
        description=(
            "Decode the JSON header of a packed substrate file — vertex and "
            "edge counts, per-array dtypes, on-disk format revision and the "
            "content version hash — without touching the array payloads."
        ),
    )
    inspect_parser.add_argument("file", metavar="FILE.stgq", help="substrate file to inspect")
    inspect_parser.add_argument(
        "--json", action="store_true", help="emit the header as one JSON object"
    )

    return parser


def _command_query(args: argparse.Namespace) -> int:
    dataset = generate_real_dataset(
        n_people=args.people, schedule_days=args.days, seed=args.seed
    )
    initiator = args.initiator
    if initiator is None:
        initiator = pick_initiator(dataset, args.radius, min_candidates=args.group_size + 2)
    planner = ActivityPlanner(dataset.graph, dataset.calendars)

    if args.activity_length is None:
        algorithm = args.algorithm or "sgselect"
        result = planner.find_group(
            initiator=initiator,
            group_size=args.group_size,
            radius=args.radius,
            acquaintance=args.acquaintance,
            algorithm=algorithm,
        )
        print(f"initiator: {initiator}")
        if not result.feasible:
            print("no feasible group")
            return 1
        print(f"group ({algorithm}): {result.sorted_members()}")
        print(f"total social distance: {result.total_distance:.2f}")
        return 0

    algorithm = args.algorithm or "stgselect"
    result = planner.find_group_and_time(
        initiator=initiator,
        group_size=args.group_size,
        activity_length=args.activity_length,
        radius=args.radius,
        acquaintance=args.acquaintance,
        algorithm=algorithm,
    )
    print(f"initiator: {initiator}")
    if not result.feasible:
        print("no feasible group and activity period")
        return 1
    print(f"group ({algorithm}): {result.sorted_members()}")
    print(f"total social distance: {result.total_distance:.2f}")
    print(f"activity period (slots): {result.period.as_tuple()}")
    return 0


def _command_figure(args: argparse.Namespace) -> int:
    from .experiments.reporting import to_csv

    series = run_figure(
        args.panel, scale=ExperimentScale(args.scale), repetitions=args.repetitions
    )
    if args.csv:
        print(to_csv(series), end="")
    elif args.panel in ("1g", "1h"):
        print(format_quality_table(series))
    else:
        print(format_table(series))
    return 0


def _command_ablation(args: argparse.Namespace) -> int:
    dataset = generate_real_dataset(
        n_people=args.people, schedule_days=args.days, seed=args.seed
    )
    initiator = pick_initiator(dataset, args.radius, min_candidates=args.group_size + 2)
    if args.activity_length is None:
        report = run_sg_ablation(
            dataset, initiator, args.group_size, args.radius, args.acquaintance
        )
    else:
        report = run_stg_ablation(
            dataset,
            initiator,
            args.group_size,
            args.radius,
            args.acquaintance,
            args.activity_length,
        )
    print(format_ablation(report))
    return 0


def _load_service_dataset(args: argparse.Namespace):
    """Dataset for serve/worker: a packed substrate (``--graph``) or generated.

    ``--graph FILE.stgq`` opens the CSR substrate memory-mapped — every
    worker process attached to the same file shares one page-cache copy of
    the adjacency — with per-person calendars materialised lazily from
    ``--seed``.  Without it, the seeded 194-style dataset is generated as
    before.
    """
    if getattr(args, "graph", None):
        from .datasets.scale import dataset_from_substrate

        return dataset_from_substrate(args.graph, schedule_days=args.days, seed=args.seed)
    return generate_real_dataset(
        n_people=args.people, schedule_days=args.days, seed=args.seed
    )


def _service_session(args: argparse.Namespace, dataset, service: QueryService) -> int:
    """The serve/cluster gateway body: JSONL loop or a generated batch."""
    with service:
        if args.jsonl:
            # Deferred-signal serving: SIGTERM/SIGINT stop the read loop and
            # drain the in-flight batch plus every line already read (see
            # repro.service.drain) instead of raising mid-batch — so an
            # orchestrator's TERM drops no accepted requests.  Installed
            # inside any _graceful_shutdown scope; restored on exit.
            with ShutdownSignal() as stop:
                served = serve_jsonl(
                    service, sys.stdin, sys.stdout, batch_size=args.batch_size, stop=stop
                )
            if stop.triggered:
                print("signal received; drained in-flight requests", file=sys.stderr)
            stats = service.stats()
            info = service.cache_info()
            print(
                f"served {served} requests (backend={service.backend_name}, "
                f"workers={service.max_workers}); solver time {stats.solve_seconds:.3f} s, "
                f"cache hit rate {info.hit_rate:.0%}",
                file=sys.stderr,
            )
            return 0

        rng = random.Random(args.seed)
        pool = list(dataset.people)
        initiators = rng.sample(pool, min(args.initiators, len(pool)))

        queries: List = []
        for _ in range(args.queries):
            initiator = rng.choice(initiators)
            if args.activity_length is None:
                queries.append(
                    SGQuery(
                        initiator=initiator,
                        group_size=args.group_size,
                        radius=args.radius,
                        acquaintance=args.acquaintance,
                    )
                )
            else:
                queries.append(
                    STGQuery(
                        initiator=initiator,
                        group_size=args.group_size,
                        radius=args.radius,
                        acquaintance=args.acquaintance,
                        activity_length=args.activity_length,
                    )
                )

        start = time.perf_counter()
        results = service.solve_many(queries)
        elapsed = time.perf_counter() - start

        stats = service.stats()
        info = service.cache_info()
    feasible = sum(1 for r in results if r.feasible)
    errors = sum(1 for r in results if getattr(r, "error", None))
    kind = "SGQ" if args.activity_length is None else "STGQ"
    print(f"batch: {len(results)} {kind} queries over {dataset.graph.vertex_count} people "
          f"({len(initiators)} initiators, kernel={args.kernel})")
    print(f"feasible: {feasible}/{len(results)}" + (f"  (errors: {errors})" if errors else ""))
    print(f"wall clock: {elapsed:.3f} s  ({len(results) / elapsed:.1f} queries/s, "
          f"backend={service.backend_name}, workers={service.max_workers})")
    print(f"solver time: {stats.solve_seconds:.3f} s across {stats.nodes_expanded} nodes")
    print(f"cache: {info.hits} hits / {info.misses} misses "
          f"(hit rate {info.hit_rate:.0%}, {info.size}/{info.max_size} entries)")
    return 0


def _build_gateway_service(
    args: argparse.Namespace, dataset, backend, placement=None
) -> QueryService:
    return QueryService(
        dataset.graph,
        dataset.calendars,
        parameters=SearchParameters(kernel=args.kernel),
        cache_size=args.cache_size,
        max_workers=getattr(args, "workers", None),
        backend=backend,
        placement=placement,
    )


def _shutdown_code(exc: SystemExit) -> int:
    print("signal received; service closed cleanly", file=sys.stderr)
    return exc.code if isinstance(exc.code, int) else 130


def _command_serve(args: argparse.Namespace) -> int:
    # Usage mistakes (missing/malformed --connect, bad --timeout, a junk
    # --placement file) are answered like argparse does (stderr + exit 2),
    # not a traceback.
    try:
        placement = _resolve_placement(args)
        if placement is not None and args.backend not in ("process", "remote"):
            raise QueryError(
                f"--placement applies to --backend process or remote, not {args.backend!r}"
            )
    except QueryError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if args.backend == "remote":
        if not args.connect:
            print(
                "error: --backend remote requires --connect host:port[,host:port...]",
                file=sys.stderr,
            )
            return 2
        try:
            backend = RemoteBackend(args.connect, timeout=args.timeout, placement=placement)
        except QueryError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        placement = None  # consumed by the backend instance
    else:
        backend = args.backend
    try:
        dataset = _load_service_dataset(args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    with _graceful_shutdown():
        try:
            service = _build_gateway_service(args, dataset, backend, placement=placement)
        except QueryError as exc:  # e.g. placement shard count vs --workers
            print(f"error: {exc}", file=sys.stderr)
            return 2
        try:
            return _service_session(args, dataset, service)
        except SystemExit as exc:
            return _shutdown_code(exc)


def _command_worker(args: argparse.Namespace) -> int:
    try:
        # The worker stores the map (hello/batch_result advertise its
        # version; placement_get serves it) — its *local* backend keeps its
        # own routing, so the stored copy is distribution state, not a
        # constraint on this worker's executor width.
        placement = _resolve_placement(args)
    except QueryError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    try:
        dataset = _load_service_dataset(args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    host, port = args.listen
    service = QueryService(
        dataset.graph,
        dataset.calendars,
        parameters=SearchParameters(kernel=args.kernel),
        cache_size=args.cache_size,
        max_workers=args.workers,
        backend=args.backend,
    )
    with service:
        code = run_worker(service, host, port, announce=sys.stdout, placement=placement)
        stats = service.stats()
        info = service.cache_info()
        print(
            f"worker stopping (backend={service.backend_name}); answered "
            f"{stats.queries} queries, solver time {stats.solve_seconds:.3f} s, "
            f"cache hit rate {info.hit_rate:.0%}",
            file=sys.stderr,
        )
    return code


def _command_http(args: argparse.Namespace) -> int:
    from .service.http import AccessLog, GatewayConfig, parse_rate_spec, run_gateway

    rate = burst = None
    if args.rate_limit is not None:
        try:
            rate, burst = parse_rate_spec(args.rate_limit)
        except ValueError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
    if args.max_queue < 0:
        print(f"error: --max-queue must be >= 0, got {args.max_queue}", file=sys.stderr)
        return 2
    try:
        placement = _resolve_placement(args)
        if placement is not None and args.backend not in ("process", "remote"):
            raise QueryError(
                f"--placement applies to --backend process or remote, not {args.backend!r}"
            )
    except QueryError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if args.backend == "remote":
        if not args.connect:
            print(
                "error: --backend remote requires --connect host:port[,host:port...]",
                file=sys.stderr,
            )
            return 2
        try:
            backend = RemoteBackend(args.connect, timeout=args.timeout, placement=placement)
        except QueryError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        placement = None  # consumed by the backend instance
    else:
        backend = args.backend
    try:
        dataset = _load_service_dataset(args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    log_stream = None
    opened = None
    if args.access_log == "-":
        log_stream = sys.stderr
    elif args.access_log != "none":
        try:
            opened = log_stream = open(args.access_log, "a", encoding="utf-8")
        except OSError as exc:
            print(f"error: cannot open access log {args.access_log!r}: {exc}", file=sys.stderr)
            return 2

    host, port = args.listen
    config = GatewayConfig(
        max_concurrency=args.max_concurrency,
        max_queue=args.max_queue,
        retry_after=args.retry_after,
        rate=rate,
        burst=burst,
        admit_timeout=args.admit_timeout,
        drain_timeout=args.drain_timeout,
    )
    try:
        service = _build_gateway_service(args, dataset, backend, placement=placement)
    except QueryError as exc:  # e.g. placement shard count vs --workers
        print(f"error: {exc}", file=sys.stderr)
        if opened is not None:
            opened.close()
        return 2
    try:
        # run_gateway owns the drained SIGTERM/SIGINT shutdown and closes
        # the service (executor pools, worker connections) on the way out.
        code = run_gateway(
            service,
            host=host,
            port=port,
            config=config,
            access_log=AccessLog(log_stream),
            announce=True,
        )
    except OSError as exc:  # e.g. port already bound
        print(f"error: cannot listen on {host}:{port}: {exc}", file=sys.stderr)
        service.close()
        return 1
    finally:
        if opened is not None:
            opened.close()
    stats = service.stats()
    info = service.cache_info()
    print(
        f"gateway stopping (backend={service.backend_name}); answered "
        f"{stats.queries} queries, solver time {stats.solve_seconds:.3f} s, "
        f"cache hit rate {info.hit_rate:.0%}",
        file=sys.stderr,
    )
    return code


def _command_cluster(args: argparse.Namespace) -> int:
    try:
        placement = _resolve_placement(args)
        if placement is not None and placement.n_shards != args.workers:
            raise QueryError(
                f"placement map routes over {placement.n_shards} shards "
                f"but --workers is {args.workers}"
            )
    except QueryError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    dataset = generate_real_dataset(
        n_people=args.people, schedule_days=args.days, seed=args.seed
    )
    with _graceful_shutdown():
        cluster = start_local_workers(
            args.workers,
            people=args.people,
            days=args.days,
            seed=args.seed,
            backend=args.worker_backend,
            cache_size=args.cache_size,
            kernel=args.kernel,
            placement=args.placement,
        )
        try:
            print(
                f"cluster up: {args.workers} workers at {cluster.connect_spec()}",
                file=sys.stderr,
            )
            if placement is not None:
                print(
                    f"placement: version {placement.version} "
                    f"({len(placement.assignments)} assigned, "
                    f"{len(placement.replicas)} replicated egos)",
                    file=sys.stderr,
                )
            try:
                backend = RemoteBackend(
                    cluster.connect_spec(), timeout=args.timeout, placement=placement
                )
            except QueryError as exc:  # e.g. --timeout 0: usage error, not a traceback
                print(f"error: {exc}", file=sys.stderr)
                return 2
            service = QueryService(
                dataset.graph,
                dataset.calendars,
                parameters=SearchParameters(kernel=args.kernel),
                cache_size=args.cache_size,
                backend=backend,
            )
            return _service_session(args, dataset, service)
        except SystemExit as exc:
            return _shutdown_code(exc)
        finally:
            cluster.close()
            print("cluster workers terminated", file=sys.stderr)


def _fetch_worker_stats(address: Tuple[str, int], timeout: float) -> dict:
    """One stats control-frame round trip (hello handshake first).

    Raises ``OSError`` on transport failures and ``ProtocolError``/
    ``QueryError`` on protocol surprises, all rendered as per-worker errors
    by ``_command_stats``.
    """
    import socket

    from .service.net.protocol import client_handshake, recv_frame, send_frame

    with socket.create_connection(address, timeout=timeout) as sock:
        sock.settimeout(timeout)
        hello = client_handshake(sock)
        send_frame(sock, {"type": "stats"})
        reply = recv_frame(sock)
        if reply.get("type") != "stats":
            raise QueryError(f"unexpected reply type {reply.get('type')!r}")
        reply["hello"] = hello
        return reply


def _print_worker_stats(label: str, reply: dict) -> None:
    hello = reply.get("hello", {})
    stats = reply.get("stats", {})
    cache = reply.get("cache", {})
    print(f"worker {label}  (backend={hello.get('backend', '?')}, "
          f"workers={hello.get('workers', '?')}, graph={hello.get('graph_size', '?')} vertices)")
    queries = stats.get("queries", 0)
    solve_seconds = stats.get("solve_seconds", 0.0)
    rate = queries / solve_seconds if solve_seconds else 0.0
    print(f"  queries:      {queries} "
          f"({stats.get('sg_queries', 0)} SGQ / {stats.get('stg_queries', 0)} STGQ; "
          f"{stats.get('feasible', 0)} feasible, {stats.get('infeasible', 0)} infeasible)")
    print(f"  solver:       {solve_seconds:.3f} s over {stats.get('nodes_expanded', 0)} nodes"
          + (f"  ({rate:.1f} solved q/s)" if rate else ""))
    hits = cache.get("hits", 0)
    misses = cache.get("misses", 0)
    lookups = hits + misses
    hit_rate = f"{hits / lookups:.0%}" if lookups else "n/a"
    print(f"  cache:        {hits} hits / {misses} misses (hit rate {hit_rate}, "
          f"{cache.get('size', 0)}/{cache.get('max_size', 0)} entries)")
    placement_version = reply.get("placement_version", 0)
    print(f"  placement:    version {placement_version}"
          + ("" if placement_version else " (none stored; CRC32 fallback)"))
    routing = reply.get("routing")
    if routing:
        routed = routing.get("routed", [])
        print(f"  routing:      {routing.get('strategy', '?')} over "
              f"{routing.get('n_shards', '?')} shards; last imbalance "
              f"{routing.get('last_imbalance', 0.0):.2f}x (max "
              f"{routing.get('max_imbalance', 0.0):.2f}x, "
              f"{routing.get('skewed_batches', 0)}/{routing.get('measured_batches', 0)} "
              f"skewed batches); routed {routed}")


def _command_stats(args: argparse.Namespace) -> int:
    import json as json_module

    try:
        addresses = parse_addresses(args.connect)
    except QueryError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    reached = 0
    for host, port in addresses:
        label = f"{host}:{port}"
        try:
            reply = _fetch_worker_stats((host, port), args.timeout)
        except (OSError, ReproError) as exc:
            print(f"worker {label}  UNREACHABLE: {exc}", file=sys.stderr)
            continue
        reached += 1
        if args.json:
            print(json_module.dumps({"worker": label, **reply}, sort_keys=True))
        else:
            _print_worker_stats(label, reply)
    if reached < len(addresses):
        print(f"{reached}/{len(addresses)} workers answered", file=sys.stderr)
    return 0 if reached else 1


def _command_mutate(args: argparse.Namespace) -> int:
    import socket as socket_module

    from .graph.mutations import (
        generate_mutation_trace,
        load_mutation_trace,
        save_mutation_trace,
    )
    from .service.net.protocol import client_handshake

    try:
        dataset = _load_service_dataset(args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if args.trace:
        try:
            trace = load_mutation_trace(args.trace)
        except (OSError, ReproError) as exc:
            print(f"error: cannot load trace {args.trace!r}: {exc}", file=sys.stderr)
            return 1
        print(f"loaded {len(trace)} mutations from {args.trace}")
    else:
        trace = generate_mutation_trace(
            dataset.graph,
            args.count,
            seed=args.trace_seed,
            horizon=dataset.calendars.horizon,
        )
        print(f"generated {len(trace)} mutations (trace seed {args.trace_seed})")
    if args.save:
        try:
            save_mutation_trace(args.save, trace)
        except OSError as exc:
            print(f"error: cannot save trace to {args.save!r}: {exc}", file=sys.stderr)
            return 1
        print(f"saved trace -> {args.save}")
    if not trace:
        print("empty trace; nothing to apply")
        return 0

    if args.connect:
        try:
            backend = RemoteBackend(args.connect, timeout=args.timeout)
        except QueryError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
    else:
        backend = "serial"
    service = QueryService(
        dataset.graph, dataset.calendars, cache_size=args.cache_size, backend=backend
    )
    batches = 0
    worker_invalidations = 0
    with service, _graceful_shutdown():
        try:
            for start in range(0, len(trace), args.batch_size):
                report = service.apply_mutations(trace[start : start + args.batch_size])
                batches += 1
                worker_invalidations += report.worker_invalidations
        except ReproError as exc:
            print(f"error applying batch {batches + 1}: {exc}", file=sys.stderr)
            return 1
        except SystemExit as exc:
            return _shutdown_code(exc)
        stats = service.stats()
        version = service.live_version
        print(
            f"applied {stats.mutations} mutations in {batches} batches "
            f"-> live version {version}"
        )
        print(
            f"targeted invalidation: {stats.invalidations} gateway entries"
            + (f", {worker_invalidations} worker entries" if args.connect else "")
            + f" ({stats.invalidations_per_mutation:.2f} per mutation)"
        )
        if args.connect:
            # The distribution already guarantees this (apply_mutations
            # raises on an incomplete fleet), but the operator gets the
            # receipt: every worker's advertised live version.
            mismatched = []
            for host, port in parse_addresses(args.connect):
                label = f"{host}:{port}"
                try:
                    with socket_module.create_connection(
                        (host, port), timeout=args.timeout
                    ) as sock:
                        sock.settimeout(args.timeout)
                        hello = client_handshake(sock)
                except (OSError, ReproError) as exc:
                    print(f"worker {label}  UNREACHABLE: {exc}", file=sys.stderr)
                    mismatched.append(label)
                    continue
                worker_version = hello.get("live_version")
                marker = "ok" if worker_version == version else "MISMATCH"
                if worker_version != version:
                    mismatched.append(label)
                print(f"worker {label}  live version {worker_version}  [{marker}]")
            if mismatched:
                print(
                    f"fleet inconsistent: {len(mismatched)} worker(s) not at "
                    f"version {version}",
                    file=sys.stderr,
                )
                return 1
            print(f"fleet consistent at live version {version}")
    return 0


def _command_place(args: argparse.Namespace) -> int:
    import json as json_module

    from .experiments.workloads import load_workload
    from .service import ShardMap, build_placement, save_placement
    from .service.sharding import IMBALANCE_WARN_THRESHOLD

    try:
        queries = load_workload(args.trace)
    except OSError as exc:
        print(f"error: cannot read trace {args.trace!r}: {exc}", file=sys.stderr)
        return 1
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    kwargs = {}
    if args.vnodes is not None:
        kwargs["vnodes"] = args.vnodes
    try:
        placement = build_placement(
            queries,
            args.workers,
            replicas=args.replicas,
            seed=args.ring_seed,
            version=args.map_version,
            **kwargs,
        )
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    crc32 = ShardMap(args.workers)
    routed = placement.load_report(queries)
    total = sum(routed)
    report = {
        "trace": args.trace,
        "queries": total,
        "initiators": len({q.initiator for q in queries}),
        "map": placement.as_wire(),
        "load_shares": routed,
        "imbalance": placement.imbalance(queries),
        "crc32_imbalance": crc32.imbalance(queries),
        "threshold": IMBALANCE_WARN_THRESHOLD,
    }
    if args.output:
        try:
            save_placement(placement, args.output)
        except OSError as exc:
            print(f"error: cannot write {args.output!r}: {exc}", file=sys.stderr)
            return 1
        report["output"] = args.output
    if args.json:
        print(json_module.dumps(report, sort_keys=True, default=str))
        return 0
    print(
        f"placement:  version {placement.version} over {placement.n_shards} workers "
        f"(vnodes {placement.vnodes}, ring seed {placement.seed})"
    )
    print(f"trace:      {total} queries over {report['initiators']} initiators ({args.trace})")
    print(
        f"hot egos:   {len(placement.replicas)} replicated "
        f"x{args.replicas}, {len(placement.assignments)} assigned"
    )
    print("load shares (trace replay):")
    peak = max(routed) if routed and max(routed) else 1
    for shard, count in enumerate(routed):
        share = count / total if total else 0.0
        bar = "#" * max(1 if count else 0, round(24 * count / peak))
        print(f"  worker {shard}:  {count:6d} queries  ({share:6.1%})  {bar}")
    verdict = "balanced" if report["imbalance"] < IMBALANCE_WARN_THRESHOLD else "SKEWED"
    print(
        f"imbalance:  {report['imbalance']:.2f}x load-aware vs "
        f"{report['crc32_imbalance']:.2f}x crc32 fallback "
        f"(threshold {IMBALANCE_WARN_THRESHOLD}x) [{verdict}]"
    )
    if args.output:
        print(f"wrote {args.output}")
    return 0


def _command_pack(args: argparse.Namespace) -> int:
    from .graph.csr import csr_available, pack_graph
    from .graph.io import read_snap_edge_list

    if not csr_available():
        print("error: 'stgq pack' requires numpy (install the [speed] extra)", file=sys.stderr)
        return 2
    try:
        graph = read_snap_edge_list(args.edgelist)
    except OSError as exc:
        print(f"error: cannot read {args.edgelist!r}: {exc}", file=sys.stderr)
        return 1
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    try:
        csr = pack_graph(graph, args.output, quantize=args.quantize)
    except (OSError, ReproError) as exc:
        print(f"error: cannot pack to {args.output!r}: {exc}", file=sys.stderr)
        return 1
    print(f"packed {csr.vertex_count} vertices / {csr.edge_count} edges -> {args.output}")
    if args.quantize:
        print("weights: int32-quantized (dequantised on load via the header scale)")
    print(f"version: {csr.version}")
    return 0


def _command_inspect(args: argparse.Namespace) -> int:
    import json as json_module

    from .graph.csr import inspect_stgq

    try:
        info = inspect_stgq(args.file)
    except OSError as exc:
        print(f"error: cannot read {args.file!r}: {exc}", file=sys.stderr)
        return 1
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    if args.json:
        print(json_module.dumps(info, sort_keys=True))
        return 0
    def _dtype_name(spec: str) -> str:
        try:
            import numpy

            return numpy.dtype(spec).name
        except Exception:
            return spec

    dtypes = ", ".join(
        f"{name}={_dtype_name(dtype)}" for name, dtype in sorted(info["dtypes"].items())
    )
    print(f"substrate:  {info['path']}  ({info['file_bytes']} bytes, format {info['format']})")
    print(f"vertices:   {info['n']}  ({'identity ids 0..n-1' if info['identity_ids'] else 'labelled ids'})")
    print(f"edges:      {info['m']}")
    print(f"arrays:     {dtypes}")
    if info.get("quantized"):
        print(f"weights:    int32-quantized (scale {info.get('weight_scale')})")
    print(f"version:    {info['version']}")
    return 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Entry point for the ``stgq`` console script and ``python -m repro``."""
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.command == "query":
        return _command_query(args)
    if args.command == "figure":
        return _command_figure(args)
    if args.command == "ablation":
        return _command_ablation(args)
    if args.command == "serve":
        return _command_serve(args)
    if args.command == "worker":
        return _command_worker(args)
    if args.command == "cluster":
        return _command_cluster(args)
    if args.command == "http":
        return _command_http(args)
    if args.command == "stats":
        return _command_stats(args)
    if args.command == "mutate":
        return _command_mutate(args)
    if args.command == "place":
        return _command_place(args)
    if args.command == "pack":
        return _command_pack(args)
    if args.command == "inspect":
        return _command_inspect(args)
    parser.error(f"unknown command {args.command!r}")  # pragma: no cover
    return 2  # pragma: no cover


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
