"""Command-line interface.

Three sub-commands mirror how the library is typically used:

``stgq query``
    Answer one SGQ or STGQ on a generated dataset and print the group.

``stgq figure``
    Re-run a panel of the paper's Figure 1 and print the measured table.

``stgq ablation``
    Run the strategy-ablation study on a generated dataset.

``stgq serve``
    Answer queries through the cached :class:`~repro.service.QueryService`
    on a selectable executor backend (``--backend serial|thread|process``),
    either as a generated benchmark batch or as a JSONL request loop over
    stdin/stdout (``--jsonl``).

Run ``python -m repro --help`` (or ``stgq --help`` once installed) for the
full argument reference.
"""

from __future__ import annotations

import argparse
import random
import sys
import time
from typing import List, Optional, Sequence

from .core.planner import ActivityPlanner
from .core.query import SearchParameters, SGQuery, STGQuery
from .datasets.realistic import generate_real_dataset
from .experiments.ablation import format_ablation, run_sg_ablation, run_stg_ablation
from .experiments.config import FIGURE_IDS, ExperimentScale
from .experiments.figures import run_figure
from .experiments.reporting import format_quality_table, format_table
from .experiments.workloads import pick_initiator
from .service import QueryService, serve_jsonl

__all__ = ["main", "build_parser"]


def _positive_int(text: str) -> int:
    value = int(text)
    if value < 1:
        raise argparse.ArgumentTypeError(f"must be >= 1, got {value}")
    return value


def build_parser() -> argparse.ArgumentParser:
    """Create the argument parser (exposed for the CLI tests)."""
    parser = argparse.ArgumentParser(
        prog="stgq",
        description="Social-Temporal Group Query reproduction (VLDB 2011).",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    query = subparsers.add_parser("query", help="answer one SGQ/STGQ on a generated dataset")
    query.add_argument("--people", type=int, default=194, help="population size (default 194)")
    query.add_argument("--days", type=int, default=1, help="schedule length in days (default 1)")
    query.add_argument("--seed", type=int, default=42, help="dataset seed (default 42)")
    query.add_argument("-p", "--group-size", type=int, required=True, help="activity size p")
    query.add_argument("-s", "--radius", type=int, default=1, help="social radius s (default 1)")
    query.add_argument("-k", "--acquaintance", type=int, default=1, help="acquaintance constraint k")
    query.add_argument(
        "-m",
        "--activity-length",
        type=int,
        default=None,
        help="activity length in slots; omit for a purely social query (SGQ)",
    )
    query.add_argument(
        "--algorithm",
        default=None,
        help="solver to use (sgselect/stgselect/baseline/ip/pcarrange)",
    )
    query.add_argument("--initiator", type=int, default=None, help="initiator id (default: auto)")

    figure = subparsers.add_parser("figure", help="re-run a panel of the paper's Figure 1")
    figure.add_argument("panel", choices=list(FIGURE_IDS), help="which panel to run (1a..1h)")
    figure.add_argument(
        "--scale",
        choices=[s.value for s in ExperimentScale],
        default=ExperimentScale.SMOKE.value,
        help="experiment scale (default smoke)",
    )
    figure.add_argument("--repetitions", type=int, default=1, help="timing repetitions per point")
    figure.add_argument("--csv", action="store_true", help="emit CSV instead of a table")

    ablation = subparsers.add_parser("ablation", help="strategy ablation study")
    ablation.add_argument("--people", type=int, default=120)
    ablation.add_argument("--days", type=int, default=1)
    ablation.add_argument("--seed", type=int, default=42)
    ablation.add_argument("-p", "--group-size", type=int, default=5)
    ablation.add_argument("-s", "--radius", type=int, default=1)
    ablation.add_argument("-k", "--acquaintance", type=int, default=2)
    ablation.add_argument("-m", "--activity-length", type=int, default=None)

    serve = subparsers.add_parser(
        "serve",
        help="answer queries through the cached QueryService (selectable executor backend)",
        description=(
            "Serve SGQ/STGQ traffic through the cached QueryService. Scaling the "
            "service: --backend thread (default) fans a batch over a thread pool "
            "sharing one ego-network cache — best for cache-hot traffic, but the "
            "compiled kernel is GIL-bound, so it peaks near one core. --backend "
            "process shards initiators across persistent worker processes, each "
            "holding its own graph copy and ego-network LRU cache; queries always "
            "route to the worker owning their initiator, so caches stay hot and "
            "popcount-heavy batches scale across cores. --backend serial is the "
            "single-threaded baseline. With --jsonl the command turns into a "
            "stdin/stdout JSONL request loop (one request per line, responses in "
            "request order) instead of generating a synthetic batch."
        ),
    )
    serve.add_argument("--people", type=int, default=194, help="population size (default 194)")
    serve.add_argument("--days", type=int, default=1, help="schedule length in days (default 1)")
    serve.add_argument("--seed", type=int, default=42, help="dataset/batch seed (default 42)")
    serve.add_argument("--queries", type=int, default=100, help="batch size (default 100)")
    serve.add_argument(
        "--initiators",
        type=_positive_int,
        default=16,
        help="number of distinct initiators to draw queries from (default 16)",
    )
    serve.add_argument(
        "--backend",
        choices=["serial", "thread", "process"],
        default="thread",
        help=(
            "executor backend: 'serial' (in-process loop), 'thread' (shared-cache "
            "pool; GIL-bound), 'process' (initiator-sharded worker processes, one "
            "graph copy + ego cache each; scales across cores) (default thread)"
        ),
    )
    serve.add_argument(
        "--workers",
        type=_positive_int,
        default=None,
        help="executor width: threads for --backend thread, worker processes "
        "(= shards) for --backend process (default: auto)",
    )
    serve.add_argument(
        "--jsonl",
        action="store_true",
        help="serve JSONL requests from stdin to stdout until EOF instead of "
        "generating a batch (stats summary goes to stderr)",
    )
    serve.add_argument(
        "--batch-size",
        type=_positive_int,
        default=64,
        help="pipelining batch size for --jsonl (default 64)",
    )
    serve.add_argument(
        "--cache-size", type=_positive_int, default=128, help="feasible-graph cache entries"
    )
    serve.add_argument("-p", "--group-size", type=int, default=5)
    serve.add_argument("-s", "--radius", type=int, default=1)
    serve.add_argument("-k", "--acquaintance", type=int, default=2)
    serve.add_argument(
        "-m",
        "--activity-length",
        type=int,
        default=None,
        help="activity length in slots; omit for a purely social (SGQ) batch",
    )
    serve.add_argument(
        "--kernel",
        choices=["compiled", "reference"],
        default="compiled",
        help="branch-and-bound kernel (default compiled)",
    )

    return parser


def _command_query(args: argparse.Namespace) -> int:
    dataset = generate_real_dataset(
        n_people=args.people, schedule_days=args.days, seed=args.seed
    )
    initiator = args.initiator
    if initiator is None:
        initiator = pick_initiator(dataset, args.radius, min_candidates=args.group_size + 2)
    planner = ActivityPlanner(dataset.graph, dataset.calendars)

    if args.activity_length is None:
        algorithm = args.algorithm or "sgselect"
        result = planner.find_group(
            initiator=initiator,
            group_size=args.group_size,
            radius=args.radius,
            acquaintance=args.acquaintance,
            algorithm=algorithm,
        )
        print(f"initiator: {initiator}")
        if not result.feasible:
            print("no feasible group")
            return 1
        print(f"group ({algorithm}): {result.sorted_members()}")
        print(f"total social distance: {result.total_distance:.2f}")
        return 0

    algorithm = args.algorithm or "stgselect"
    result = planner.find_group_and_time(
        initiator=initiator,
        group_size=args.group_size,
        activity_length=args.activity_length,
        radius=args.radius,
        acquaintance=args.acquaintance,
        algorithm=algorithm,
    )
    print(f"initiator: {initiator}")
    if not result.feasible:
        print("no feasible group and activity period")
        return 1
    print(f"group ({algorithm}): {result.sorted_members()}")
    print(f"total social distance: {result.total_distance:.2f}")
    print(f"activity period (slots): {result.period.as_tuple()}")
    return 0


def _command_figure(args: argparse.Namespace) -> int:
    from .experiments.reporting import to_csv

    series = run_figure(
        args.panel, scale=ExperimentScale(args.scale), repetitions=args.repetitions
    )
    if args.csv:
        print(to_csv(series), end="")
    elif args.panel in ("1g", "1h"):
        print(format_quality_table(series))
    else:
        print(format_table(series))
    return 0


def _command_ablation(args: argparse.Namespace) -> int:
    dataset = generate_real_dataset(
        n_people=args.people, schedule_days=args.days, seed=args.seed
    )
    initiator = pick_initiator(dataset, args.radius, min_candidates=args.group_size + 2)
    if args.activity_length is None:
        report = run_sg_ablation(
            dataset, initiator, args.group_size, args.radius, args.acquaintance
        )
    else:
        report = run_stg_ablation(
            dataset,
            initiator,
            args.group_size,
            args.radius,
            args.acquaintance,
            args.activity_length,
        )
    print(format_ablation(report))
    return 0


def _command_serve(args: argparse.Namespace) -> int:
    dataset = generate_real_dataset(
        n_people=args.people, schedule_days=args.days, seed=args.seed
    )
    service = QueryService(
        dataset.graph,
        dataset.calendars,
        parameters=SearchParameters(kernel=args.kernel),
        cache_size=args.cache_size,
        max_workers=args.workers,
        backend=args.backend,
    )
    with service:
        if args.jsonl:
            served = serve_jsonl(service, sys.stdin, sys.stdout, batch_size=args.batch_size)
            stats = service.stats()
            info = service.cache_info()
            print(
                f"served {served} requests (backend={service.backend_name}, "
                f"workers={service.max_workers}); solver time {stats.solve_seconds:.3f} s, "
                f"cache hit rate {info.hit_rate:.0%}",
                file=sys.stderr,
            )
            return 0

        rng = random.Random(args.seed)
        pool = list(dataset.people)
        initiators = rng.sample(pool, min(args.initiators, len(pool)))

        queries: List = []
        for _ in range(args.queries):
            initiator = rng.choice(initiators)
            if args.activity_length is None:
                queries.append(
                    SGQuery(
                        initiator=initiator,
                        group_size=args.group_size,
                        radius=args.radius,
                        acquaintance=args.acquaintance,
                    )
                )
            else:
                queries.append(
                    STGQuery(
                        initiator=initiator,
                        group_size=args.group_size,
                        radius=args.radius,
                        acquaintance=args.acquaintance,
                        activity_length=args.activity_length,
                    )
                )

        start = time.perf_counter()
        results = service.solve_many(queries)
        elapsed = time.perf_counter() - start

        stats = service.stats()
        info = service.cache_info()
    feasible = sum(1 for r in results if r.feasible)
    kind = "SGQ" if args.activity_length is None else "STGQ"
    print(f"batch: {len(results)} {kind} queries over {args.people} people "
          f"({len(initiators)} initiators, kernel={args.kernel})")
    print(f"feasible: {feasible}/{len(results)}")
    print(f"wall clock: {elapsed:.3f} s  ({len(results) / elapsed:.1f} queries/s, "
          f"backend={service.backend_name}, workers={service.max_workers})")
    print(f"solver time: {stats.solve_seconds:.3f} s across {stats.nodes_expanded} nodes")
    print(f"cache: {info.hits} hits / {info.misses} misses "
          f"(hit rate {info.hit_rate:.0%}, {info.size}/{info.max_size} entries)")
    return 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Entry point for the ``stgq`` console script and ``python -m repro``."""
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.command == "query":
        return _command_query(args)
    if args.command == "figure":
        return _command_figure(args)
    if args.command == "ablation":
        return _command_ablation(args)
    if args.command == "serve":
        return _command_serve(args)
    parser.error(f"unknown command {args.command!r}")  # pragma: no cover
    return 2  # pragma: no cover


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
