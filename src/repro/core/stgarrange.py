"""STGArrange — quality-comparison wrapper around STGSelect (paper §5.1).

For the solution-quality experiments (Figures 1(g) and 1(h)) the paper
introduces *STGArrange*: starting from ``k = 0``, it runs STGSelect with
increasing ``k`` until the first solution whose total social distance is no
worse than PCArrange's.  The reported pair is that ``k`` and the
corresponding total distance; the claim reproduced here is that STGArrange
finds groups with both a smaller ``k`` (more mutually acquainted) and a
smaller total distance than manual coordination.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional

from ..graph.social_graph import SocialGraph
from ..temporal.calendars import CalendarStore
from ..types import Vertex
from .pcarrange import PCArrange
from .query import STGQuery, SearchParameters
from .result import STGroupResult
from .stgselect import STGSelect

__all__ = ["STGArrangeOutcome", "STGArrange"]


@dataclass(frozen=True)
class STGArrangeOutcome:
    """Side-by-side quality comparison for one query.

    Attributes
    ----------
    pcarrange:
        The manual-coordination result (may be infeasible).
    pcarrange_k:
        The observed acquaintance parameter ``k_h`` of the PCArrange group.
    stgarrange:
        The STGSelect result at the smallest sufficient ``k`` (may be
        infeasible when no ``k`` admits a group).
    stgarrange_k:
        The smallest ``k`` at which STGSelect matched or beat PCArrange's
        total distance (or produced any feasible group when PCArrange
        failed).
    """

    pcarrange: STGroupResult
    pcarrange_k: int
    stgarrange: STGroupResult
    stgarrange_k: Optional[int]

    @property
    def distance_improvement(self) -> float:
        """PCArrange distance minus STGArrange distance (positive = better)."""
        if not (self.pcarrange.feasible and self.stgarrange.feasible):
            return math.nan
        return self.pcarrange.total_distance - self.stgarrange.total_distance

    @property
    def k_improvement(self) -> Optional[int]:
        """PCArrange ``k_h`` minus STGArrange ``k`` (positive = tighter group)."""
        if self.stgarrange_k is None or not self.pcarrange.feasible:
            return None
        return self.pcarrange_k - self.stgarrange_k


class STGArrange:
    """Find the smallest ``k`` for which STGSelect matches manual coordination."""

    def __init__(
        self,
        graph: SocialGraph,
        calendars: CalendarStore,
        parameters: Optional[SearchParameters] = None,
    ) -> None:
        self.graph = graph
        self.calendars = calendars
        self.parameters = parameters or SearchParameters()

    def compare(
        self,
        initiator: Vertex,
        group_size: int,
        radius: int,
        activity_length: int,
        max_k: Optional[int] = None,
    ) -> STGArrangeOutcome:
        """Run PCArrange and the incremental-``k`` STGSelect search side by side.

        Parameters
        ----------
        max_k:
            Largest ``k`` to try; defaults to ``group_size - 1`` (at which
            point the acquaintance constraint is vacuous).
        """
        pc = PCArrange(self.graph, self.calendars)
        pc_result = pc.solve(
            STGQuery(
                initiator=initiator,
                group_size=group_size,
                radius=radius,
                acquaintance=group_size,
                activity_length=activity_length,
            )
        )
        pc_k = pc.observed_k(pc_result)
        target_distance = pc_result.total_distance if pc_result.feasible else math.inf

        limit = max_k if max_k is not None else max(0, group_size - 1)
        best_result = STGroupResult.infeasible(solver="STGArrange")
        best_k: Optional[int] = None
        solver = STGSelect(self.graph, self.calendars, self.parameters)
        for k in range(0, limit + 1):
            query = STGQuery(
                initiator=initiator,
                group_size=group_size,
                radius=radius,
                acquaintance=k,
                activity_length=activity_length,
            )
            result = solver.solve(query)
            if not result.feasible:
                continue
            # First feasible result no worse than manual coordination wins;
            # when PCArrange itself failed, the first feasible result wins.
            # The small tolerance absorbs floating-point noise when both
            # approaches select the exact same group.
            if result.total_distance <= target_distance + 1e-9 or not pc_result.feasible:
                best_result = result
                best_k = k
                break

        return STGArrangeOutcome(
            pcarrange=pc_result,
            pcarrange_k=pc_k,
            stgarrange=best_result,
            stgarrange_k=best_k,
        )
