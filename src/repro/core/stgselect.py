"""STGSelect — exact branch-and-bound algorithm for Social-Temporal Group
Queries (paper §4.2).

STGSelect extends SGSelect along the temporal dimension:

* **Pivot time slots** (Lemma 4) — only slots with IDs ``m, 2m, 3m, ...``
  need to be anchored; for each pivot the candidate activity periods live in
  a window of ``2m - 1`` slots, and the search for different pivots shares a
  single incumbent, so the distance bound tightens monotonically.
* **Temporal feasibility per candidate** (Definition 4) — a candidate is
  admitted to a pivot's search only when it has a free run of at least ``m``
  slots containing the pivot inside the window.
* **Temporal extensibility** ``X(VS)`` joins interior unfamiliarity and
  exterior expansibility in the access ordering; its relaxation exponent
  ``φ`` is raised (up to a threshold) when no candidate qualifies.
* **Availability pruning** (Lemma 5) discards nodes whose remaining
  candidates are collectively too busy around the pivot.

The returned :class:`~repro.core.result.STGroupResult` carries the selected
activity period, the pivot it was anchored at, and the full shared run.
"""

from __future__ import annotations

import math
import time
from typing import Dict, List, Optional, Sequence, Set, Tuple

from ..exceptions import InfeasibleQueryError, ScheduleError
from ..graph.extraction import FeasibleGraph, extract_feasible_graph
from ..graph.social_graph import SocialGraph
from ..temporal.calendars import CalendarStore
from ..temporal.pivot import PivotWindow, feasible_members_for_pivot, pivot_windows
from ..temporal.schedule import Schedule
from ..temporal.slots import SlotRange
from ..types import Vertex
from .ordering import (
    exterior_expansibility,
    exterior_expansibility_condition,
    interior_unfamiliarity,
    interior_unfamiliarity_condition,
    temporal_extensibility,
    temporal_extensibility_condition,
)
from .pruning import acquaintance_pruning, availability_pruning, distance_pruning
from .query import STGQuery, SearchParameters
from .result import STGroupResult, SearchStats

__all__ = ["STGSelect", "stg_select"]


class STGSelect:
    """Reusable STGSelect solver bound to one social graph and calendar store.

    Parameters
    ----------
    graph:
        The full social graph ``G``.
    calendars:
        Availability schedules for (at least) every candidate attendee and
        the initiator.
    parameters:
        Search tunables (``θ``, ``φ``, strategy toggles).
    """

    def __init__(
        self,
        graph: SocialGraph,
        calendars: CalendarStore,
        parameters: Optional[SearchParameters] = None,
    ) -> None:
        self.graph = graph
        self.calendars = calendars
        self.parameters = parameters or SearchParameters()

    # ------------------------------------------------------------------
    # public API
    # ------------------------------------------------------------------
    def solve(self, query: STGQuery, on_infeasible: str = "return") -> STGroupResult:
        """Answer ``query`` and return the optimal group and activity period."""
        start = time.perf_counter()
        stats = SearchStats()
        horizon = self.calendars.horizon
        if query.activity_length > horizon:
            raise ScheduleError(
                f"activity length m={query.activity_length} exceeds the planning horizon {horizon}"
            )

        feasible_graph = extract_feasible_graph(self.graph, query.initiator, query.radius)
        best: Dict[str, object] = {
            "distance": math.inf,
            "members": None,
            "shared": None,
            "pivot": None,
        }

        if self.parameters.use_pivot_slots:
            windows = pivot_windows(horizon, query.activity_length)
        else:
            # Degenerate decomposition used by the ablation study: one window
            # per candidate period, anchored at the period's final slot.
            windows = self._all_period_windows(horizon, query.activity_length)

        q_schedule = self.calendars.get(query.initiator)
        for window in windows:
            # The initiator must be available for some period through this pivot.
            if not self._member_feasible(q_schedule, window):
                continue
            stats.pivots_processed += 1
            self._search_pivot(feasible_graph, query, window, best, stats)

        stats.elapsed_seconds = time.perf_counter() - start
        if best["members"] is None:
            result = STGroupResult.infeasible(solver="STGSelect", stats=stats)
            if on_infeasible == "raise":
                raise InfeasibleQueryError(f"no feasible group for {query.describe()}")
            return result

        shared: SlotRange = best["shared"]  # type: ignore[assignment]
        period = self._canonical_period(shared, best["pivot"], query.activity_length)  # type: ignore[arg-type]
        return STGroupResult(
            feasible=True,
            members=frozenset(best["members"]),  # type: ignore[arg-type]
            total_distance=float(best["distance"]),  # type: ignore[arg-type]
            period=period,
            pivot=best["pivot"],  # type: ignore[arg-type]
            shared_slots=shared,
            solver="STGSelect",
            stats=stats,
        )

    # ------------------------------------------------------------------
    # helpers
    # ------------------------------------------------------------------
    @staticmethod
    def _all_period_windows(horizon: int, m: int) -> List[PivotWindow]:
        """Fallback decomposition when pivot slots are disabled: one window per
        candidate period, anchored at the period's final slot."""
        windows = []
        for start in range(1, horizon - m + 2):
            windows.append(
                PivotWindow(pivot=start + m - 1, window=SlotRange(start, start + m - 1), activity_length=m)
            )
        return windows

    @staticmethod
    def _member_feasible(schedule: Schedule, window: PivotWindow) -> bool:
        """Definition 4: available at the pivot with a free run of >= m slots
        inside the window."""
        if window.pivot > schedule.horizon or not schedule.is_available(window.pivot):
            return False
        run = schedule.restricted(window.window).run_containing(window.pivot)
        return run is not None and len(run) >= window.activity_length

    @staticmethod
    def _canonical_period(shared: SlotRange, pivot: int, m: int) -> SlotRange:
        """Pick one activity period of exactly ``m`` slots inside the shared run
        that contains the pivot (the earliest such period)."""
        start = max(shared.start, pivot - m + 1)
        start = min(start, shared.end - m + 1)
        return SlotRange(start, start + m - 1)

    # ------------------------------------------------------------------
    # per-pivot search
    # ------------------------------------------------------------------
    def _search_pivot(
        self,
        feasible_graph: FeasibleGraph,
        query: STGQuery,
        window: PivotWindow,
        best: Dict[str, object],
        stats: SearchStats,
    ) -> None:
        q = query.initiator
        p = query.group_size
        graph = feasible_graph.graph
        distances = feasible_graph.distances

        q_shared = self.calendars.get(q).restricted(window.window).run_containing(window.pivot)
        if q_shared is None or len(q_shared) < query.activity_length:
            return
        if p == 1:
            if 0.0 < best["distance"]:  # type: ignore[operator]
                best.update(distance=0.0, members={q}, shared=q_shared, pivot=window.pivot)
                stats.solutions_found += 1
            return

        candidates = [
            v
            for v in feasible_graph.candidates
            if self._member_feasible(self.calendars.get(v), window)
        ]
        if len(candidates) < p - 1:
            return

        self._expand(
            graph=graph,
            distances=distances,
            query=query,
            window=window,
            members=[q],
            members_set={q},
            shared=q_shared,
            remaining=list(candidates),
            current_distance=0.0,
            best=best,
            stats=stats,
        )

    def _expand(
        self,
        graph: SocialGraph,
        distances,
        query: STGQuery,
        window: PivotWindow,
        members: List[Vertex],
        members_set: Set[Vertex],
        shared: SlotRange,
        remaining: List[Vertex],
        current_distance: float,
        best: Dict[str, object],
        stats: SearchStats,
    ) -> None:
        """Explore one node of the per-pivot set-enumeration tree."""
        params = self.parameters
        p = query.group_size
        k = query.acquaintance
        m = query.activity_length
        stats.nodes_expanded += 1

        theta = params.theta if params.use_access_ordering else 0
        phi = params.phi if params.use_access_ordering else params.phi_threshold
        deferred: Set[Vertex] = set()

        while True:
            if len(members_set) == p:
                if current_distance < best["distance"]:  # type: ignore[operator]
                    best["distance"] = current_distance
                    best["members"] = set(members_set)
                    best["shared"] = shared
                    best["pivot"] = window.pivot
                    stats.solutions_found += 1
                return
            if len(members_set) + len(remaining) < p:
                return

            # --- node-level pruning -----------------------------------
            if params.use_distance_pruning and distance_pruning(
                incumbent_distance=best["distance"],  # type: ignore[arg-type]
                current_distance=current_distance,
                members_count=len(members_set),
                group_size=p,
                remaining_distances=(distances[v] for v in remaining),
            ):
                stats.distance_prunes += 1
                return
            if params.use_acquaintance_pruning and acquaintance_pruning(
                graph=graph,
                remaining=remaining,
                members_count=len(members_set),
                group_size=p,
                acquaintance=k,
            ):
                stats.acquaintance_prunes += 1
                return
            if params.use_availability_pruning and availability_pruning(
                calendars=self.calendars,
                remaining=remaining,
                members_count=len(members_set),
                group_size=p,
                window=window,
            ):
                stats.availability_prunes += 1
                return

            # --- candidate selection (access ordering) ----------------
            selected: Optional[Vertex] = None
            selected_shared: Optional[SlotRange] = None
            while selected is None:
                candidate = self._next_unvisited(remaining, deferred, distances)
                if candidate is None:
                    if theta > 0:
                        theta -= 1
                        deferred.clear()
                        continue
                    if phi < params.phi_threshold:
                        phi += 1
                        deferred.clear()
                        continue
                    return
                stats.candidates_considered += 1

                new_size = len(members_set) + 1
                trial_remaining = [v for v in remaining if v != candidate]
                expans = exterior_expansibility(
                    graph, list(members_set) + [candidate], trial_remaining, k
                )
                if not exterior_expansibility_condition(expans, new_size, p):
                    remaining.remove(candidate)
                    deferred.discard(candidate)
                    stats.expansibility_removals += 1
                    continue

                unfam = interior_unfamiliarity(graph, list(members_set) + [candidate])
                if not interior_unfamiliarity_condition(unfam, new_size, p, k, theta):
                    if theta == 0:
                        remaining.remove(candidate)
                        deferred.discard(candidate)
                        stats.unfamiliarity_removals += 1
                    else:
                        deferred.add(candidate)
                    continue

                cand_shared = self._joint_run(shared, candidate, window)
                ext = temporal_extensibility(cand_shared, m)
                if not temporal_extensibility_condition(
                    ext, new_size, p, m, phi, params.phi_threshold
                ):
                    if ext < 0:
                        # Adding this candidate destroys temporal feasibility
                        # for every extension of the current VS.
                        remaining.remove(candidate)
                        deferred.discard(candidate)
                        stats.temporal_removals += 1
                    else:
                        deferred.add(candidate)
                    continue

                selected = candidate
                selected_shared = cand_shared

            # --- branch 1: include ``selected`` -----------------------
            assert selected_shared is not None
            child_remaining = [v for v in remaining if v != selected]
            members.append(selected)
            members_set.add(selected)
            self._expand(
                graph=graph,
                distances=distances,
                query=query,
                window=window,
                members=members,
                members_set=members_set,
                shared=selected_shared,
                remaining=child_remaining,
                current_distance=current_distance + distances[selected],
                best=best,
                stats=stats,
            )
            members.pop()
            members_set.discard(selected)

            # --- branch 2: exclude ``selected`` and continue ----------
            remaining.remove(selected)
            deferred.discard(selected)

    def _joint_run(
        self, shared: SlotRange, candidate: Vertex, window: PivotWindow
    ) -> Optional[SlotRange]:
        """Shared run of consecutive free slots containing the pivot after
        intersecting the current run with ``candidate``'s availability."""
        schedule = self.calendars.get(candidate)
        pivot = window.pivot
        if not schedule.is_available(pivot):
            return None
        lo = pivot
        while lo > shared.start and schedule.is_available(lo - 1):
            lo -= 1
        hi = pivot
        while hi < shared.end and schedule.is_available(hi + 1):
            hi += 1
        return SlotRange(lo, hi)

    @staticmethod
    def _next_unvisited(
        remaining: Sequence[Vertex], deferred: Set[Vertex], distances
    ) -> Optional[Vertex]:
        """Return the unvisited candidate with the smallest social distance."""
        best_v = None
        best_d = math.inf
        for v in remaining:
            if v in deferred:
                continue
            d = distances[v]
            if d < best_d:
                best_d = d
                best_v = v
        return best_v


def stg_select(
    graph: SocialGraph,
    calendars: CalendarStore,
    initiator: Vertex,
    group_size: int,
    radius: int,
    acquaintance: int,
    activity_length: int,
    parameters: Optional[SearchParameters] = None,
) -> STGroupResult:
    """Convenience wrapper: build the query and run :class:`STGSelect` once."""
    query = STGQuery(
        initiator=initiator,
        group_size=group_size,
        radius=radius,
        acquaintance=acquaintance,
        activity_length=activity_length,
    )
    return STGSelect(graph, calendars, parameters).solve(query)
