"""STGSelect — exact branch-and-bound algorithm for Social-Temporal Group
Queries (paper §4.2).

STGSelect extends SGSelect along the temporal dimension:

* **Pivot time slots** (Lemma 4) — only slots with IDs ``m, 2m, 3m, ...``
  need to be anchored; for each pivot the candidate activity periods live in
  a window of ``2m - 1`` slots, and the search for different pivots shares a
  single incumbent, so the distance bound tightens monotonically.
* **Temporal feasibility per candidate** (Definition 4) — a candidate is
  admitted to a pivot's search only when it has a free run of at least ``m``
  slots containing the pivot inside the window.
* **Temporal extensibility** ``X(VS)`` joins interior unfamiliarity and
  exterior expansibility in the access ordering; its relaxation exponent
  ``φ`` is raised (up to a threshold) when no candidate qualifies.
* **Availability pruning** (Lemma 5) discards nodes whose remaining
  candidates are collectively too busy around the pivot.

Like SGSelect, two interchangeable kernels drive the per-pivot inner loop
(``SearchParameters.kernel``): the default ``"compiled"`` kernel runs on the
dense-id bitmask form of the feasible graph (incremental stranger counters,
AND/popcount measures, per-slot busy masks for Lemma 5), while
``"reference"`` keeps the original set-based loop as the executable
specification.  Both visit the identical search tree.

The returned :class:`~repro.core.result.STGroupResult` carries the selected
activity period, the pivot it was anchored at, and the full shared run.
"""

from __future__ import annotations

import math
import time
from typing import Callable, Dict, List, Optional, Sequence, Set

from ..exceptions import InfeasibleQueryError, ScheduleError
from .context import SearchContext, record_into
from ..graph.compiled import CompiledFeasibleGraph, compile_feasible_graph
from ..graph.extraction import FeasibleGraph, extract_query_forms
from ..graph.packed import PackedAdjacency, busy_slot_masks, pack_adjacency
from ..graph.social_graph import SocialGraph
from ..temporal.calendars import CalendarStore
from ..temporal.pivot import PivotWindow, pivot_windows
from ..temporal.schedule import Schedule
from ..temporal.slots import SlotRange
from ..types import Vertex
from .ordering import (
    candidate_measures_bitset,
    expansibility_member_terms,
    exterior_expansibility,
    exterior_expansibility_condition,
    interior_unfamiliarity,
    interior_unfamiliarity_condition,
    temporal_extensibility,
    temporal_extensibility_condition,
    unfamiliarity_measures_packed,
)
from .pruning import (
    acquaintance_pruning,
    acquaintance_pruning_bitset,
    acquaintance_pruning_packed,
    availability_pruning,
    availability_pruning_bitset,
    distance_pruning,
    distance_pruning_bitset,
)
from .query import STGQuery, SearchParameters
from .result import STGroupResult, SearchStats
from .sgselect import LAZY_MEASURE_THRESHOLD, NUMPY_MIN_CANDIDATES

__all__ = ["STGSelect", "stg_select"]

#: Incumbent-recording callback: (members, total, shared_run, pivot).
RecordFn = Callable[[object, float, SlotRange, int], None]


class STGSelect:
    """Reusable STGSelect solver bound to one social graph and calendar store.

    Parameters
    ----------
    graph:
        The full social graph ``G``.
    calendars:
        Availability schedules for (at least) every candidate attendee and
        the initiator.
    parameters:
        Search tunables (``θ``, ``φ``, kernel choice, strategy toggles).
    """

    def __init__(
        self,
        graph: SocialGraph,
        calendars: CalendarStore,
        parameters: Optional[SearchParameters] = None,
    ) -> None:
        self.graph = graph
        self.calendars = calendars
        self.parameters = parameters or SearchParameters()

    # ------------------------------------------------------------------
    # public API
    # ------------------------------------------------------------------
    def solve(
        self,
        query: STGQuery,
        on_infeasible: str = "return",
        feasible_graph: Optional[FeasibleGraph] = None,
        compiled_graph: Optional[CompiledFeasibleGraph] = None,
        packed_graph: Optional[PackedAdjacency] = None,
        context: Optional[SearchContext] = None,
    ) -> STGroupResult:
        """Answer ``query`` and return the optimal group and activity period.

        ``feasible_graph`` / ``compiled_graph`` / ``packed_graph`` allow a
        caller (the batched :class:`~repro.service.QueryService`) to reuse a
        cached extraction (and its compiled/packed forms) for
        ``(query.initiator, query.radius)``; the caller guarantees the
        correspondence.  ``context`` optionally receives this solve's kernel
        statistics (see :class:`~repro.core.context.SearchContext`) — the
        service layer records every solve of a batch into one per-batch
        ``ExecutionContext`` this way.
        """
        start = time.perf_counter()
        stats = SearchStats()
        horizon = self.calendars.horizon
        if query.activity_length > horizon:
            raise ScheduleError(
                f"activity length m={query.activity_length} exceeds the planning horizon {horizon}"
            )

        if feasible_graph is None:
            feasible_graph, compiled_graph, packed_graph = extract_query_forms(
                self.graph, query.initiator, query.radius, self.parameters.kernel
            )
        kernel = self.parameters.kernel
        use_bitset = kernel != "reference"
        compiled: Optional[CompiledFeasibleGraph] = None
        packed: Optional[PackedAdjacency] = None
        use_numpy = False
        if use_bitset:
            compiled = compiled_graph or compile_feasible_graph(feasible_graph)
            # Small egos route to the bitset expansion even on the numpy
            # kernel (see NUMPY_MIN_CANDIDATES) — identical tree and stats.
            use_numpy = kernel == "numpy" and compiled.candidate_count >= NUMPY_MIN_CANDIDATES
            if use_numpy:
                packed = packed_graph or pack_adjacency(compiled)

        best: Dict[str, object] = {
            "distance": math.inf,
            "members": None,
            "shared": None,
            "pivot": None,
        }

        def record(members, total: float, shared: SlotRange, pivot: int) -> None:
            """Single incumbent-update path shared by both kernels."""
            if total < best["distance"]:  # type: ignore[operator]
                best["distance"] = total
                best["members"] = set(members)
                best["shared"] = shared
                best["pivot"] = pivot
                stats.solutions_found += 1

        if self.parameters.use_pivot_slots:
            windows = pivot_windows(horizon, query.activity_length)
        else:
            # Degenerate decomposition used by the ablation study: one window
            # per candidate period, anchored at the period's final slot.
            windows = self._all_period_windows(horizon, query.activity_length)

        q_schedule = self.calendars.get(query.initiator)
        for window in windows:
            # The initiator must be available for some period through this pivot.
            if not self._member_feasible(q_schedule, window):
                continue
            stats.pivots_processed += 1
            if use_numpy:
                assert compiled is not None and packed is not None
                self._search_pivot_numpy(compiled, packed, query, window, record, best, stats)
            elif use_bitset:
                assert compiled is not None
                self._search_pivot_bitset(compiled, query, window, record, best, stats)
            else:
                self._search_pivot(feasible_graph, query, window, record, best, stats)

        stats.elapsed_seconds = time.perf_counter() - start
        record_into(context, stats)
        if best["members"] is None:
            result = STGroupResult.infeasible(solver="STGSelect", stats=stats)
            if on_infeasible == "raise":
                raise InfeasibleQueryError(f"no feasible group for {query.describe()}")
            return result

        shared: SlotRange = best["shared"]  # type: ignore[assignment]
        period = self._canonical_period(shared, best["pivot"], query.activity_length)  # type: ignore[arg-type]
        return STGroupResult(
            feasible=True,
            members=frozenset(best["members"]),  # type: ignore[arg-type]
            total_distance=float(best["distance"]),  # type: ignore[arg-type]
            period=period,
            pivot=best["pivot"],  # type: ignore[arg-type]
            shared_slots=shared,
            solver="STGSelect",
            stats=stats,
        )

    # ------------------------------------------------------------------
    # helpers
    # ------------------------------------------------------------------
    @staticmethod
    def _all_period_windows(horizon: int, m: int) -> List[PivotWindow]:
        """Fallback decomposition when pivot slots are disabled: one window per
        candidate period, anchored at the period's final slot."""
        windows = []
        for start in range(1, horizon - m + 2):
            windows.append(
                PivotWindow(pivot=start + m - 1, window=SlotRange(start, start + m - 1), activity_length=m)
            )
        return windows

    @staticmethod
    def _member_feasible(schedule: Schedule, window: PivotWindow) -> bool:
        """Definition 4: available at the pivot with a free run of >= m slots
        inside the window."""
        if window.pivot > schedule.horizon or not schedule.is_available(window.pivot):
            return False
        run = schedule.restricted(window.window).run_containing(window.pivot)
        return run is not None and len(run) >= window.activity_length

    @staticmethod
    def _canonical_period(shared: SlotRange, pivot: int, m: int) -> SlotRange:
        """Pick one activity period of exactly ``m`` slots inside the shared run
        that contains the pivot (the earliest such period)."""
        start = max(shared.start, pivot - m + 1)
        start = min(start, shared.end - m + 1)
        return SlotRange(start, start + m - 1)

    # ------------------------------------------------------------------
    # per-pivot search (compiled kernel)
    # ------------------------------------------------------------------
    def _search_pivot_bitset(
        self,
        compiled: CompiledFeasibleGraph,
        query: STGQuery,
        window: PivotWindow,
        record: RecordFn,
        best: Dict[str, object],
        stats: SearchStats,
    ) -> None:
        q = query.initiator
        p = query.group_size

        q_shared = self.calendars.get(q).restricted(window.window).run_containing(window.pivot)
        if q_shared is None or len(q_shared) < query.activity_length:
            return
        if p == 1:
            record((q,), 0.0, q_shared, window.pivot)
            return

        # Pivot-feasible candidate pool (Definition 4) as a bitmask, plus the
        # per-candidate schedules the joint-run updates need.
        schedules: List[Optional[Schedule]] = [None] * len(compiled)
        feasible_mask = 0
        for i in range(1, len(compiled)):
            sched = self.calendars.get(compiled.vertices[i])
            if self._member_feasible(sched, window):
                feasible_mask |= 1 << i
                schedules[i] = sched
        if feasible_mask.bit_count() < p - 1:
            return

        # Per-slot busy masks over the pivot window turn Lemma 5's per-slot
        # candidate scan into one AND/popcount.  Built by the same helper
        # the numpy kernel packs its busy matrix from, so the two kernels
        # can never drift on the prune's input.  Skipped when availability
        # pruning is ablated so the toggle isolates the strategy's full cost.
        busy_masks: Dict[int, int] = {}
        if self.parameters.use_availability_pruning:
            busy_masks = dict(
                zip(window.window, busy_slot_masks(schedules, feasible_mask, window))
            )

        strangers = [0] * len(compiled)
        self._expand_bitset(
            compiled=compiled,
            schedules=schedules,
            busy_masks=busy_masks,
            query=query,
            window=window,
            members_mask=1,
            member_ids=[0],
            strangers=strangers,
            shared=q_shared,
            remaining_mask=feasible_mask,
            current_distance=0.0,
            record=record,
            best=best,
            stats=stats,
        )

    def _expand_bitset(
        self,
        compiled: CompiledFeasibleGraph,
        schedules: List[Optional[Schedule]],
        busy_masks: Dict[int, int],
        query: STGQuery,
        window: PivotWindow,
        members_mask: int,
        member_ids: List[int],
        strangers: List[int],
        shared: SlotRange,
        remaining_mask: int,
        current_distance: float,
        record: RecordFn,
        best: Dict[str, object],
        stats: SearchStats,
    ) -> None:
        """Explore one node of the per-pivot set-enumeration tree (bitset state)."""
        params = self.parameters
        p = query.group_size
        k = query.acquaintance
        m = query.activity_length
        adj = compiled.adj
        dist = compiled.dist
        stats.nodes_expanded += 1

        theta = params.theta if params.use_access_ordering else 0
        phi = params.phi if params.use_access_ordering else params.phi_threshold
        deferred_mask = 0
        members_count = len(member_ids)

        while True:
            if members_count == p:
                record(compiled.members_of(members_mask), current_distance, shared, window.pivot)
                return
            if members_count + remaining_mask.bit_count() < p:
                return

            # --- node-level pruning -----------------------------------
            if params.use_distance_pruning and distance_pruning_bitset(
                incumbent_distance=best["distance"],  # type: ignore[arg-type]
                current_distance=current_distance,
                members_count=members_count,
                group_size=p,
                remaining_mask=remaining_mask,
                dist=dist,
            ):
                stats.distance_prunes += 1
                return
            if params.use_acquaintance_pruning and acquaintance_pruning_bitset(
                adj=adj,
                remaining_mask=remaining_mask,
                members_count=members_count,
                group_size=p,
                acquaintance=k,
            ):
                stats.acquaintance_prunes += 1
                return
            if params.use_availability_pruning and availability_pruning_bitset(
                busy_masks=busy_masks,
                remaining_mask=remaining_mask,
                members_count=members_count,
                group_size=p,
                window=window,
            ):
                stats.availability_prunes += 1
                return

            # --- candidate selection (access ordering) ----------------
            selected = -1
            selected_shared: Optional[SlotRange] = None
            while selected < 0:
                open_mask = remaining_mask & ~deferred_mask
                if not open_mask:
                    if theta > 0:
                        theta -= 1
                        deferred_mask = 0
                        continue
                    if phi < params.phi_threshold:
                        phi += 1
                        deferred_mask = 0
                        continue
                    return
                candidate = (open_mask & -open_mask).bit_length() - 1
                stats.candidates_considered += 1

                new_size = members_count + 1
                cand_bit = 1 << candidate
                trial_remaining = remaining_mask & ~cand_bit
                unfam, expans = candidate_measures_bitset(
                    adj, member_ids, strangers, members_mask, trial_remaining, candidate, k
                )
                if not exterior_expansibility_condition(expans, new_size, p):
                    remaining_mask &= ~cand_bit
                    deferred_mask &= ~cand_bit
                    stats.expansibility_removals += 1
                    continue
                if not interior_unfamiliarity_condition(unfam, new_size, p, k, theta):
                    if theta == 0:
                        remaining_mask &= ~cand_bit
                        deferred_mask &= ~cand_bit
                        stats.unfamiliarity_removals += 1
                    else:
                        deferred_mask |= cand_bit
                    continue

                cand_shared = self._joint_run_schedule(
                    shared, schedules[candidate], window  # type: ignore[arg-type]
                )
                ext = temporal_extensibility(cand_shared, m)
                if not temporal_extensibility_condition(
                    ext, new_size, p, m, phi, params.phi_threshold
                ):
                    if ext < 0:
                        # Adding this candidate destroys temporal feasibility
                        # for every extension of the current VS.
                        remaining_mask &= ~cand_bit
                        deferred_mask &= ~cand_bit
                        stats.temporal_removals += 1
                    else:
                        deferred_mask |= cand_bit
                    continue

                selected = candidate
                selected_shared = cand_shared

            # --- branch 1: include ``selected`` -----------------------
            assert selected_shared is not None
            sel_bit = 1 << selected
            sel_adj = adj[selected]
            strangers[selected] = (members_mask & ~sel_adj).bit_count()
            for v in member_ids:
                if not sel_adj >> v & 1:
                    strangers[v] += 1
            member_ids.append(selected)
            self._expand_bitset(
                compiled=compiled,
                schedules=schedules,
                busy_masks=busy_masks,
                query=query,
                window=window,
                members_mask=members_mask | sel_bit,
                member_ids=member_ids,
                strangers=strangers,
                shared=selected_shared,
                remaining_mask=remaining_mask & ~sel_bit,
                current_distance=current_distance + dist[selected],
                record=record,
                best=best,
                stats=stats,
            )
            member_ids.pop()
            for v in member_ids:
                if not sel_adj >> v & 1:
                    strangers[v] -= 1

            # --- branch 2: exclude ``selected`` and continue ----------
            remaining_mask &= ~sel_bit
            deferred_mask &= ~sel_bit

    # ------------------------------------------------------------------
    # per-pivot search (numpy kernel)
    # ------------------------------------------------------------------
    def _search_pivot_numpy(
        self,
        compiled: CompiledFeasibleGraph,
        packed: PackedAdjacency,
        query: STGQuery,
        window: PivotWindow,
        record: RecordFn,
        best: Dict[str, object],
        stats: SearchStats,
    ) -> None:
        q = query.initiator
        p = query.group_size
        m = query.activity_length
        pivot = window.pivot
        span = window.window

        q_shared = self.calendars.get(q).free_run_around(pivot, span)
        if q_shared is None or len(q_shared) < m:
            return
        if p == 1:
            record((q,), 0.0, q_shared, pivot)
            return

        # Pivot-feasible candidate pool (Definition 4) as a bitmask, plus
        # the per-candidate schedules the joint-run updates need.  Same
        # filter as :meth:`_member_feasible`, via the allocation-free
        # :meth:`~repro.temporal.schedule.Schedule.free_run_around`.
        schedules: List[Optional[Schedule]] = [None] * len(compiled)
        feasible_mask = 0
        for i in range(1, len(compiled)):
            sched = self.calendars.get(compiled.vertices[i])
            run = sched.free_run_around(pivot, span)
            if run is not None and len(run) >= m:
                feasible_mask |= 1 << i
                schedules[i] = sched
        if feasible_mask.bit_count() < p - 1:
            return

        # Lemma 5's per-slot busy masks, kept as plain ints: the in-search
        # check scans at most ``2m - 2`` slots and usually breaks on the
        # first, so one AND/popcount per scanned slot beats converting the
        # remaining pool to a packed row every node; ``busy_max`` (the
        # largest per-slot busy total) gates the check so pools nowhere
        # near the threshold skip it entirely.  Skipped when availability
        # pruning is ablated so the toggle isolates the strategy's cost.
        busy_masks = None
        busy_max = 0
        if self.parameters.use_availability_pruning:
            masks = busy_slot_masks(schedules, feasible_mask, window)
            busy_masks = dict(zip(window.window, masks))
            busy_max = max((mask.bit_count() for mask in masks), default=0)

        strangers = [0] * len(compiled)
        self._expand_numpy(
            compiled=compiled,
            packed=packed,
            schedules=schedules,
            busy_masks=busy_masks,
            busy_max=busy_max,
            query=query,
            window=window,
            members_mask=1,
            member_ids=[0],
            strangers=strangers,
            shared=q_shared,
            remaining_mask=feasible_mask,
            current_distance=0.0,
            record=record,
            best=best,
            stats=stats,
        )

    def _expand_numpy(
        self,
        compiled: CompiledFeasibleGraph,
        packed: PackedAdjacency,
        schedules: List[Optional[Schedule]],
        busy_masks,
        busy_max: int,
        query: STGQuery,
        window: PivotWindow,
        members_mask: int,
        member_ids: List[int],
        strangers: List[int],
        shared: SlotRange,
        remaining_mask: int,
        current_distance: float,
        record: RecordFn,
        best: Dict[str, object],
        stats: SearchStats,
        base_counts=None,
        pending_mask: int = 0,
    ) -> None:
        """Explore one node of the per-pivot tree (vectorized measures).

        Same state and branching as :meth:`_expand_bitset`; the social
        measures follow :meth:`SGSelect._expand_numpy` exactly (per-node
        unfam lists, copy-on-write ``base_counts`` + ``pending_mask``, int
        ``member_terms``, precomputed condition right-hand sides, node-local
        stat accumulation).  On top of that, the temporal machinery:

        * Lemma 5's per-slot scan becomes one matrix ``bitwise_count``
          reduction over the packed busy rows, gated by ``busy_max`` (no
          slot can reach the threshold ⇒ the prune cannot fire ⇒ skip the
          array work — the window boundaries alone never prune, as
          ``t⁺ - t⁻`` is then the full window plus both virtual busy
          slots, which always exceeds ``m``);
        * joint runs are pure functions of the node-fixed ``shared`` run,
          so reconsidering a deferred candidate after a θ/φ relaxation
          replays them from a per-node memo instead of re-walking the
          schedule.
        """
        params = self.parameters
        p = query.group_size
        k = query.acquaintance
        m = query.activity_length
        adj = compiled.adj
        dist = compiled.dist
        stats.nodes_expanded += 1

        theta = params.theta if params.use_access_ordering else 0
        phi = params.phi if params.use_access_ordering else params.phi_threshold
        deferred_mask = 0
        members_count = len(member_ids)

        cand_strangers = None  # per-id |VS - N_u| list (whole-node validity)
        unfam = None  # per-id U(VS ∪ {u}) list (whole-node validity)
        member_terms = None  # member side of A(VS ∪ {u}); tracks removals
        member_min = 0
        considered = 0
        expans_removed = 0
        unfam_removed = 0
        temporal_removed = 0

        new_size = members_count + 1
        expans_need = p - new_size
        unfam_rhs = k * (new_size / p) ** theta
        temporal_rhs = (
            0.0 if phi >= params.phi_threshold else (m - 1) * ((p - new_size) / p) ** phi
        )
        joint_memo: Dict[int, tuple] = {}

        try:
            while True:
                if members_count == p:
                    record(
                        compiled.members_of(members_mask), current_distance, shared, window.pivot
                    )
                    return
                remaining_count = remaining_mask.bit_count()
                if members_count + remaining_count < p:
                    return

                # --- node-level pruning -----------------------------------
                if params.use_distance_pruning and distance_pruning_bitset(
                    incumbent_distance=best["distance"],  # type: ignore[arg-type]
                    current_distance=current_distance,
                    members_count=members_count,
                    group_size=p,
                    remaining_mask=remaining_mask,
                    dist=dist,
                ):
                    stats.distance_prunes += 1
                    return
                needed = p - members_count
                if params.use_acquaintance_pruning:
                    # Same early-outs as the helper, checked first so the
                    # (frequent) can't-fire case costs no array work.
                    if needed * (needed - 1 - k) > 0 and remaining_count >= needed:
                        if base_counts is None:
                            base_counts = packed.intersect_counts(packed.row(remaining_mask))
                            pending_mask = 0
                        elif pending_mask:
                            # Rebase into a fresh array: the stale base may be
                            # shared with ancestor nodes.
                            base_counts = base_counts - packed.intersect_counts(
                                packed.row(pending_mask)
                            )
                            pending_mask = 0
                        if acquaintance_pruning_packed(
                            remaining_counts=base_counts,
                            remaining_indicator=packed.indicator(remaining_mask),
                            remaining_count=remaining_count,
                            members_count=members_count,
                            group_size=p,
                            acquaintance=k,
                        ):
                            stats.acquaintance_prunes += 1
                            return
                if (
                    params.use_availability_pruning
                    and remaining_count >= needed
                    and busy_max >= remaining_count - needed + 1
                    and availability_pruning_bitset(
                        busy_masks=busy_masks,
                        remaining_mask=remaining_mask,
                        members_count=members_count,
                        group_size=p,
                        window=window,
                    )
                ):
                    stats.availability_prunes += 1
                    return

                # --- candidate selection (access ordering) ----------------
                selected = -1
                selected_shared: Optional[SlotRange] = None
                while selected < 0:
                    open_mask = remaining_mask & ~deferred_mask
                    if not open_mask:
                        if theta > 0:
                            theta -= 1
                            unfam_rhs = k * (new_size / p) ** theta
                            deferred_mask = 0
                            continue
                        if phi < params.phi_threshold:
                            phi += 1
                            temporal_rhs = (
                                0.0
                                if phi >= params.phi_threshold
                                else (m - 1) * ((p - new_size) / p) ** phi
                            )
                            deferred_mask = 0
                            continue
                        return
                    cand_bit = open_mask & -open_mask
                    candidate = cand_bit.bit_length() - 1
                    considered += 1

                    if unfam is None and remaining_mask.bit_count() <= LAZY_MEASURE_THRESHOLD:
                        # Cascade-batching scalar lane (see
                        # SGSelect._expand_numpy): exact bitset measures for
                        # a nearly-empty pool, so the forced-chain tail of
                        # the search skips the whole-pool materialisation.
                        # The temporal checks are shared with the array lane
                        # (``joint_memo`` is keyed by candidate either way).
                        u_val, e_val = candidate_measures_bitset(
                            adj,
                            member_ids,
                            strangers,
                            members_mask,
                            remaining_mask & ~cand_bit,
                            candidate,
                            k,
                        )
                        if e_val < expans_need:
                            expans_removed += 1
                        elif u_val > unfam_rhs:
                            if theta == 0:
                                unfam_removed += 1
                            else:
                                deferred_mask |= cand_bit
                                continue
                        else:
                            entry = joint_memo.get(candidate)
                            if entry is None:
                                cand_shared = schedules[candidate].free_run_around(  # type: ignore[union-attr]
                                    window.pivot, shared
                                )
                                ext = temporal_extensibility(cand_shared, m)
                                joint_memo[candidate] = (cand_shared, ext)
                            else:
                                cand_shared, ext = entry
                            if ext >= temporal_rhs:
                                selected = candidate
                                selected_shared = cand_shared
                                continue
                            if ext >= 0:
                                deferred_mask |= cand_bit
                                continue
                            temporal_removed += 1
                        # Removal without arrays: ``member_terms`` is still
                        # None (it materialises together with ``unfam``), and
                        # pending bits are harmless while ``base_counts`` is
                        # None — every materialisation site resets them.
                        remaining_mask &= ~cand_bit
                        deferred_mask &= ~cand_bit
                        pending_mask |= cand_bit
                        continue

                    if unfam is None:
                        cs_arr, unfam_arr = unfamiliarity_measures_packed(
                            packed, member_ids, strangers, members_mask
                        )
                        cand_strangers = cs_arr.tolist()
                        unfam = unfam_arr.tolist()
                    if base_counts is None:
                        base_counts = packed.intersect_counts(packed.row(remaining_mask))
                        pending_mask = 0
                    if member_terms is None:
                        member_terms = expansibility_member_terms(
                            base_counts, member_ids, strangers, k, adj, pending_mask
                        )
                        member_min = min(member_terms)

                    cand_adj = adj[candidate]
                    expans = int(base_counts[candidate]) + k - cand_strangers[candidate]
                    if pending_mask:
                        expans -= (pending_mask & cand_adj).bit_count()
                    if member_min < expans:
                        expans = member_min
                    if expans < expans_need:
                        expans_removed += 1
                    elif unfam[candidate] > unfam_rhs:
                        if theta == 0:
                            unfam_removed += 1
                        else:
                            deferred_mask |= cand_bit
                            continue
                    else:
                        entry = joint_memo.get(candidate)
                        if entry is None:
                            # Same joint run as _joint_run_schedule, via the
                            # allocation-free bit-trick query.
                            cand_shared = schedules[candidate].free_run_around(  # type: ignore[union-attr]
                                window.pivot, shared
                            )
                            ext = temporal_extensibility(cand_shared, m)
                            joint_memo[candidate] = (cand_shared, ext)
                        else:
                            cand_shared, ext = entry
                        if ext >= temporal_rhs:
                            selected = candidate
                            selected_shared = cand_shared
                            continue
                        if ext >= 0:
                            deferred_mask |= cand_bit
                            continue
                        # Adding this candidate destroys temporal feasibility
                        # for every extension of the current VS.
                        temporal_removed += 1
                    # Drop ``candidate`` from the pool: one bit into the
                    # pending batch, plus the int updates that keep the
                    # member terms exact.
                    remaining_mask &= ~cand_bit
                    deferred_mask &= ~cand_bit
                    pending_mask |= cand_bit
                    for j, v in enumerate(member_ids):
                        member_terms[j] -= cand_adj >> v & 1
                    member_min = min(member_terms)

                # --- branch 1: include ``selected`` -----------------------
                assert selected_shared is not None
                sel_bit = 1 << selected
                sel_adj = adj[selected]
                strangers[selected] = (members_mask & ~sel_adj).bit_count()
                for v in member_ids:
                    if not sel_adj >> v & 1:
                        strangers[v] += 1
                member_ids.append(selected)
                self._expand_numpy(
                    compiled=compiled,
                    packed=packed,
                    schedules=schedules,
                    busy_masks=busy_masks,
                    busy_max=busy_max,
                    query=query,
                    window=window,
                    members_mask=members_mask | sel_bit,
                    member_ids=member_ids,
                    strangers=strangers,
                    shared=selected_shared,
                    remaining_mask=remaining_mask & ~sel_bit,
                    current_distance=current_distance + dist[selected],
                    record=record,
                    best=best,
                    stats=stats,
                    # Copy-on-write: the child shares this base array and
                    # extends the pending batch with ``selected`` (no
                    # self-loops, so the id's own count needs no fix-up).
                    base_counts=base_counts,
                    pending_mask=pending_mask | sel_bit,
                )
                member_ids.pop()
                for v in member_ids:
                    if not sel_adj >> v & 1:
                        strangers[v] -= 1

                # --- branch 2: exclude ``selected`` and continue ----------
                # ``member_terms`` may still be None when ``selected`` came
                # from the scalar cascade lane; it materialises (reflecting
                # every pending removal) the first time the array path runs.
                remaining_mask &= ~sel_bit
                deferred_mask &= ~sel_bit
                pending_mask |= sel_bit
                if member_terms is not None:
                    for j, v in enumerate(member_ids):
                        member_terms[j] -= sel_adj >> v & 1
                    member_min = min(member_terms)
        finally:
            stats.candidates_considered += considered
            stats.expansibility_removals += expans_removed
            stats.unfamiliarity_removals += unfam_removed
            stats.temporal_removals += temporal_removed

    # ------------------------------------------------------------------
    # per-pivot search (reference kernel)
    # ------------------------------------------------------------------
    def _search_pivot(
        self,
        feasible_graph: FeasibleGraph,
        query: STGQuery,
        window: PivotWindow,
        record: RecordFn,
        best: Dict[str, object],
        stats: SearchStats,
    ) -> None:
        q = query.initiator
        p = query.group_size
        graph = feasible_graph.graph
        distances = feasible_graph.distances

        q_shared = self.calendars.get(q).restricted(window.window).run_containing(window.pivot)
        if q_shared is None or len(q_shared) < query.activity_length:
            return
        if p == 1:
            record((q,), 0.0, q_shared, window.pivot)
            return

        candidates = [
            v
            for v in feasible_graph.candidates
            if self._member_feasible(self.calendars.get(v), window)
        ]
        if len(candidates) < p - 1:
            return

        self._expand(
            graph=graph,
            distances=distances,
            query=query,
            window=window,
            members=[q],
            members_set={q},
            shared=q_shared,
            remaining=list(candidates),
            current_distance=0.0,
            record=record,
            best=best,
            stats=stats,
        )

    def _expand(
        self,
        graph: SocialGraph,
        distances,
        query: STGQuery,
        window: PivotWindow,
        members: List[Vertex],
        members_set: Set[Vertex],
        shared: SlotRange,
        remaining: List[Vertex],
        current_distance: float,
        record: RecordFn,
        best: Dict[str, object],
        stats: SearchStats,
    ) -> None:
        """Explore one node of the per-pivot set-enumeration tree."""
        params = self.parameters
        p = query.group_size
        k = query.acquaintance
        m = query.activity_length
        stats.nodes_expanded += 1

        theta = params.theta if params.use_access_ordering else 0
        phi = params.phi if params.use_access_ordering else params.phi_threshold
        deferred: Set[Vertex] = set()

        while True:
            if len(members_set) == p:
                record(members_set, current_distance, shared, window.pivot)
                return
            if len(members_set) + len(remaining) < p:
                return

            # --- node-level pruning -----------------------------------
            if params.use_distance_pruning and distance_pruning(
                incumbent_distance=best["distance"],  # type: ignore[arg-type]
                current_distance=current_distance,
                members_count=len(members_set),
                group_size=p,
                remaining_distances=(distances[v] for v in remaining),
            ):
                stats.distance_prunes += 1
                return
            if params.use_acquaintance_pruning and acquaintance_pruning(
                graph=graph,
                remaining=remaining,
                members_count=len(members_set),
                group_size=p,
                acquaintance=k,
            ):
                stats.acquaintance_prunes += 1
                return
            if params.use_availability_pruning and availability_pruning(
                calendars=self.calendars,
                remaining=remaining,
                members_count=len(members_set),
                group_size=p,
                window=window,
            ):
                stats.availability_prunes += 1
                return

            # --- candidate selection (access ordering) ----------------
            selected: Optional[Vertex] = None
            selected_shared: Optional[SlotRange] = None
            while selected is None:
                candidate = self._next_unvisited(remaining, deferred, distances)
                if candidate is None:
                    if theta > 0:
                        theta -= 1
                        deferred.clear()
                        continue
                    if phi < params.phi_threshold:
                        phi += 1
                        deferred.clear()
                        continue
                    return
                stats.candidates_considered += 1

                new_size = len(members_set) + 1
                trial_remaining = [v for v in remaining if v != candidate]
                expans = exterior_expansibility(
                    graph, list(members_set) + [candidate], trial_remaining, k
                )
                if not exterior_expansibility_condition(expans, new_size, p):
                    remaining.remove(candidate)
                    deferred.discard(candidate)
                    stats.expansibility_removals += 1
                    continue

                unfam = interior_unfamiliarity(graph, list(members_set) + [candidate])
                if not interior_unfamiliarity_condition(unfam, new_size, p, k, theta):
                    if theta == 0:
                        remaining.remove(candidate)
                        deferred.discard(candidate)
                        stats.unfamiliarity_removals += 1
                    else:
                        deferred.add(candidate)
                    continue

                cand_shared = self._joint_run(shared, candidate, window)
                ext = temporal_extensibility(cand_shared, m)
                if not temporal_extensibility_condition(
                    ext, new_size, p, m, phi, params.phi_threshold
                ):
                    if ext < 0:
                        # Adding this candidate destroys temporal feasibility
                        # for every extension of the current VS.
                        remaining.remove(candidate)
                        deferred.discard(candidate)
                        stats.temporal_removals += 1
                    else:
                        deferred.add(candidate)
                    continue

                selected = candidate
                selected_shared = cand_shared

            # --- branch 1: include ``selected`` -----------------------
            assert selected_shared is not None
            child_remaining = [v for v in remaining if v != selected]
            members.append(selected)
            members_set.add(selected)
            self._expand(
                graph=graph,
                distances=distances,
                query=query,
                window=window,
                members=members,
                members_set=members_set,
                shared=selected_shared,
                remaining=child_remaining,
                current_distance=current_distance + distances[selected],
                record=record,
                best=best,
                stats=stats,
            )
            members.pop()
            members_set.discard(selected)

            # --- branch 2: exclude ``selected`` and continue ----------
            remaining.remove(selected)
            deferred.discard(selected)

    def _joint_run(
        self, shared: SlotRange, candidate: Vertex, window: PivotWindow
    ) -> Optional[SlotRange]:
        """Shared run of consecutive free slots containing the pivot after
        intersecting the current run with ``candidate``'s availability."""
        return self._joint_run_schedule(shared, self.calendars.get(candidate), window)

    @staticmethod
    def _joint_run_schedule(
        shared: SlotRange, schedule: Schedule, window: PivotWindow
    ) -> Optional[SlotRange]:
        """Joint-run computation shared by both kernels."""
        pivot = window.pivot
        if not schedule.is_available(pivot):
            return None
        lo = pivot
        while lo > shared.start and schedule.is_available(lo - 1):
            lo -= 1
        hi = pivot
        while hi < shared.end and schedule.is_available(hi + 1):
            hi += 1
        return SlotRange(lo, hi)

    @staticmethod
    def _next_unvisited(
        remaining: Sequence[Vertex], deferred: Set[Vertex], distances
    ) -> Optional[Vertex]:
        """Return the unvisited candidate with the smallest social distance."""
        best_v = None
        best_d = math.inf
        for v in remaining:
            if v in deferred:
                continue
            d = distances[v]
            if d < best_d:
                best_d = d
                best_v = v
        return best_v


def stg_select(
    graph: SocialGraph,
    calendars: CalendarStore,
    initiator: Vertex,
    group_size: int,
    radius: int,
    acquaintance: int,
    activity_length: int,
    parameters: Optional[SearchParameters] = None,
) -> STGroupResult:
    """Convenience wrapper: build the query and run :class:`STGSelect` once."""
    query = STGQuery(
        initiator=initiator,
        group_size=group_size,
        radius=radius,
        acquaintance=acquaintance,
        activity_length=activity_length,
    )
    return STGSelect(graph, calendars, parameters).solve(query)
