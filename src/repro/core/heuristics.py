"""Approximate solvers for very large instances (extension beyond the paper).

SGSelect and STGSelect are exact and, the paper notes, necessarily
exponential in the worst case.  For interactive deployments (the paper's
closing remark is that the authors were integrating the algorithms into
Facebook) a bounded-latency approximate answer is often preferable for very
large ego networks.  This module provides that escape hatch:

* :class:`GreedySGQ` — grows the group one attendee at a time, always taking
  the closest candidate whose addition keeps the acquaintance constraint
  satisfiable, then improves the group with swap-based local search.
* :class:`GreedySTGQ` — runs the same construction once per pivot time slot
  (so the temporal machinery — pivot windows, per-member feasibility — is
  shared with the exact solver) and keeps the best period found.

Both return the same result types as the exact algorithms, flag themselves
via ``solver=``, and are benchmarked against the exact optimum in
``tests/core/test_heuristics.py`` (they must be feasible and within a
configurable factor of optimal on small instances, and exact solvers remain
the reference).
"""

from __future__ import annotations

import math
import time
from typing import Optional, Sequence, Set, Tuple

from ..graph.extraction import FeasibleGraph, extract_feasible_graph
from ..graph.kplex import is_kplex
from ..graph.social_graph import SocialGraph
from ..temporal.calendars import CalendarStore
from ..temporal.pivot import PivotWindow, pivot_windows
from ..temporal.slots import SlotRange
from ..types import Vertex
from .query import SGQuery, STGQuery
from .result import GroupResult, STGroupResult, SearchStats

__all__ = ["GreedySGQ", "GreedySTGQ", "greedy_sg", "greedy_stg"]


class GreedySGQ:
    """Greedy construction + swap local search for SGQ.

    Parameters
    ----------
    graph:
        The social graph.
    local_search_rounds:
        Maximum number of improvement passes over the group; each pass tries
        to swap every member (except the initiator) with every unused
        candidate and applies the best distance-reducing feasible swap.
    """

    def __init__(self, graph: SocialGraph, local_search_rounds: int = 3) -> None:
        self.graph = graph
        self.local_search_rounds = local_search_rounds

    def solve(self, query: SGQuery, allowed_candidates: Optional[Set[Vertex]] = None) -> GroupResult:
        """Return a feasible (not necessarily optimal) group for ``query``."""
        start = time.perf_counter()
        stats = SearchStats()
        feasible = extract_feasible_graph(self.graph, query.initiator, query.radius)
        candidates = feasible.candidates
        if allowed_candidates is not None:
            candidates = [v for v in candidates if v in allowed_candidates]

        members = self._construct(feasible, query, candidates, stats)
        if members is None:
            stats.elapsed_seconds = time.perf_counter() - start
            return GroupResult.infeasible(solver="GreedySGQ", stats=stats)

        members = self._local_search(feasible, query, members, candidates, stats)
        total = sum(feasible.distances[v] for v in members if v != query.initiator)
        stats.elapsed_seconds = time.perf_counter() - start
        stats.solutions_found += 1
        return GroupResult(
            feasible=True,
            members=frozenset(members),
            total_distance=total,
            solver="GreedySGQ",
            stats=stats,
        )

    # ------------------------------------------------------------------
    def _construct(
        self,
        feasible: FeasibleGraph,
        query: SGQuery,
        candidates: Sequence[Vertex],
        stats: SearchStats,
    ) -> Optional[Set[Vertex]]:
        """Closest-first greedy construction with a feasibility check per step."""
        members: Set[Vertex] = {query.initiator}
        if query.group_size == 1:
            return members
        graph = feasible.graph
        for v in candidates:  # already ordered by ascending distance
            if len(members) == query.group_size:
                break
            stats.candidates_considered += 1
            trial = members | {v}
            if is_kplex(graph, trial, query.acquaintance):
                members = trial
        if len(members) < query.group_size:
            # Greedy got stuck: retry once preferring well-connected candidates,
            # which handles the "close friends are mutual strangers" situation
            # the paper highlights in its introduction.
            members = {query.initiator}
            by_connectivity = sorted(
                candidates,
                key=lambda v: (-len(graph.neighbors(v) & set(candidates)), feasible.distances[v]),
            )
            for v in by_connectivity:
                if len(members) == query.group_size:
                    break
                stats.candidates_considered += 1
                trial = members | {v}
                if is_kplex(graph, trial, query.acquaintance):
                    members = trial
        if len(members) < query.group_size:
            return None
        return members

    def _local_search(
        self,
        feasible: FeasibleGraph,
        query: SGQuery,
        members: Set[Vertex],
        candidates: Sequence[Vertex],
        stats: SearchStats,
    ) -> Set[Vertex]:
        """Swap-based improvement: replace one member with one outsider."""
        graph = feasible.graph
        distances = feasible.distances
        unused = [v for v in candidates if v not in members]
        current = set(members)
        for _ in range(self.local_search_rounds):
            best_gain = 0.0
            best_swap: Optional[Tuple[Vertex, Vertex]] = None
            for out in list(current):
                if out == query.initiator:
                    continue
                for inp in unused:
                    gain = distances[out] - distances[inp]
                    if gain <= best_gain:
                        continue
                    stats.candidates_considered += 1
                    trial = (current - {out}) | {inp}
                    if is_kplex(graph, trial, query.acquaintance):
                        best_gain = gain
                        best_swap = (out, inp)
            if best_swap is None:
                break
            out, inp = best_swap
            current.remove(out)
            current.add(inp)
            unused.remove(inp)
            unused.append(out)
            stats.nodes_expanded += 1
        return current


class GreedySTGQ:
    """Greedy heuristic for STGQ: one greedy SGQ per pivot time slot."""

    def __init__(
        self,
        graph: SocialGraph,
        calendars: CalendarStore,
        local_search_rounds: int = 3,
    ) -> None:
        self.graph = graph
        self.calendars = calendars
        self._sg = GreedySGQ(graph, local_search_rounds=local_search_rounds)

    def solve(self, query: STGQuery) -> STGroupResult:
        """Return a feasible (not necessarily optimal) group and period."""
        start = time.perf_counter()
        stats = SearchStats()
        horizon = self.calendars.horizon
        sg_query = query.social_part()

        best_distance = math.inf
        best_members: Optional[frozenset] = None
        best_period: Optional[SlotRange] = None
        best_pivot: Optional[int] = None

        for window in pivot_windows(horizon, query.activity_length):
            stats.pivots_processed += 1
            available = self._available_for_window(window)
            if query.initiator not in available or len(available) < query.group_size:
                continue
            result = self._sg.solve(sg_query, allowed_candidates=available - {query.initiator})
            stats.merge(result.stats)
            if not result.feasible or result.total_distance >= best_distance:
                continue
            period = self._common_period(result.members, window, query.activity_length)
            if period is None:
                continue
            best_distance = result.total_distance
            best_members = result.members
            best_period = period
            best_pivot = window.pivot
            stats.solutions_found += 1

        stats.elapsed_seconds = time.perf_counter() - start
        if best_members is None:
            return STGroupResult.infeasible(solver="GreedySTGQ", stats=stats)
        return STGroupResult(
            feasible=True,
            members=best_members,
            total_distance=best_distance,
            period=best_period,
            pivot=best_pivot,
            shared_slots=best_period,
            solver="GreedySTGQ",
            stats=stats,
        )

    # ------------------------------------------------------------------
    def _available_for_window(self, window: PivotWindow) -> Set[Vertex]:
        """People with a long-enough free run through the pivot (Definition 4)."""
        available: Set[Vertex] = set()
        for person in self.calendars.people():
            sched = self.calendars.get(person)
            if window.pivot > sched.horizon or not sched.is_available(window.pivot):
                continue
            run = sched.restricted(window.window).run_containing(window.pivot)
            if run is not None and len(run) >= window.activity_length:
                available.add(person)
        return available

    def _common_period(
        self, members: frozenset, window: PivotWindow, activity_length: int
    ) -> Optional[SlotRange]:
        """The earliest period of ``m`` slots inside the window, containing the
        pivot, in which every member is free; ``None`` if there is none."""
        for period in window.periods():
            if all(self.calendars.is_available_range(v, period) for v in members):
                return period
        return None


def greedy_sg(
    graph: SocialGraph,
    initiator: Vertex,
    group_size: int,
    radius: int,
    acquaintance: int,
) -> GroupResult:
    """Convenience wrapper for :class:`GreedySGQ`."""
    query = SGQuery(
        initiator=initiator, group_size=group_size, radius=radius, acquaintance=acquaintance
    )
    return GreedySGQ(graph).solve(query)


def greedy_stg(
    graph: SocialGraph,
    calendars: CalendarStore,
    initiator: Vertex,
    group_size: int,
    radius: int,
    acquaintance: int,
    activity_length: int,
) -> STGroupResult:
    """Convenience wrapper for :class:`GreedySTGQ`."""
    query = STGQuery(
        initiator=initiator,
        group_size=group_size,
        radius=radius,
        acquaintance=acquaintance,
        activity_length=activity_length,
    )
    return GreedySTGQ(graph, calendars).solve(query)
