"""Constraint verification for SGQ/STGQ solutions.

The solvers guarantee these constraints by construction, but independent
verification is essential for the test-suite (every solver's output is
re-checked against the raw graph and calendars) and useful for callers who
combine results from multiple tools.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, List, Optional

from ..graph.distance import bounded_distances
from ..graph.kplex import non_neighbor_counts
from ..graph.social_graph import SocialGraph
from ..temporal.calendars import CalendarStore
from ..temporal.slots import SlotRange
from ..types import Vertex
from .query import SGQuery, STGQuery

__all__ = [
    "ConstraintReport",
    "check_sg_solution",
    "check_stg_solution",
    "group_total_distance",
    "observed_acquaintance",
]


@dataclass(frozen=True)
class ConstraintReport:
    """Outcome of verifying a candidate solution against a query.

    ``ok`` is ``True`` when every constraint holds; the individual flags and
    the ``violations`` list describe what failed otherwise.
    """

    ok: bool
    size_ok: bool
    initiator_included: bool
    radius_ok: bool
    acquaintance_ok: bool
    availability_ok: bool
    total_distance: float
    violations: List[str]

    def __bool__(self) -> bool:
        return self.ok


def group_total_distance(
    graph: SocialGraph, initiator: Vertex, members: Iterable[Vertex], radius: int
) -> float:
    """Total social distance of ``members`` from ``initiator`` under radius ``radius``.

    Uses the s-edge-bounded minimum distances; members unreachable within the
    radius are absent from the bounded-distance map and contribute
    ``math.inf``.
    """
    dist = bounded_distances(graph, initiator, radius)
    return sum(dist.get(v, math.inf) for v in members if v != initiator)


def observed_acquaintance(graph: SocialGraph, members: Iterable[Vertex]) -> int:
    """The smallest ``k`` for which ``members`` satisfies the acquaintance constraint.

    This is the ``k_h`` quantity the paper extracts from PCArrange results:
    the maximum, over members, of the number of other members they share no
    edge with.
    """
    counts = non_neighbor_counts(graph, members)
    return max(counts.values(), default=0)


def check_sg_solution(
    graph: SocialGraph,
    query: SGQuery,
    members: Iterable[Vertex],
) -> ConstraintReport:
    """Verify a candidate SGQ solution against the raw social graph."""
    member_set = frozenset(members)
    violations: List[str] = []

    size_ok = len(member_set) == query.group_size
    if not size_ok:
        violations.append(
            f"group has {len(member_set)} members, expected p={query.group_size}"
        )

    initiator_included = query.initiator in member_set
    if not initiator_included:
        violations.append("initiator is not part of the group")

    # bounded_distances maps reached vertices only: a member outside the
    # radius is simply absent, hence the math.inf default.
    dist = bounded_distances(graph, query.initiator, query.radius)
    unreachable = [v for v in member_set if dist.get(v, math.inf) == math.inf]
    radius_ok = not unreachable
    if unreachable:
        violations.append(
            f"members not reachable within s={query.radius} edges: {sorted(map(repr, unreachable))}"
        )

    counts = non_neighbor_counts(graph, member_set)
    offenders = {v: c for v, c in counts.items() if c > query.acquaintance}
    acquaintance_ok = not offenders
    if offenders:
        violations.append(
            "acquaintance constraint violated: "
            + ", ".join(f"{v!r} has {c} non-neighbours (k={query.acquaintance})" for v, c in offenders.items())
        )

    total = sum(dist.get(v, math.inf) for v in member_set if v != query.initiator)
    ok = size_ok and initiator_included and radius_ok and acquaintance_ok
    return ConstraintReport(
        ok=ok,
        size_ok=size_ok,
        initiator_included=initiator_included,
        radius_ok=radius_ok,
        acquaintance_ok=acquaintance_ok,
        availability_ok=True,
        total_distance=total,
        violations=violations,
    )


def check_stg_solution(
    graph: SocialGraph,
    calendars: CalendarStore,
    query: STGQuery,
    members: Iterable[Vertex],
    period: Optional[SlotRange],
) -> ConstraintReport:
    """Verify a candidate STGQ solution (group + activity period)."""
    member_set = frozenset(members)
    base = check_sg_solution(graph, query.social_part(), member_set)
    violations = list(base.violations)

    availability_ok = True
    if period is None:
        availability_ok = False
        violations.append("no activity period returned")
    else:
        if len(period) != query.activity_length:
            availability_ok = False
            violations.append(
                f"period {period.as_tuple()} has {len(period)} slots, expected m={query.activity_length}"
            )
        if period.end > calendars.horizon:
            availability_ok = False
            violations.append(
                f"period {period.as_tuple()} extends past the planning horizon {calendars.horizon}"
            )
        busy = [v for v in member_set if not calendars.is_available_range(v, period)]
        if busy:
            availability_ok = False
            violations.append(
                f"members not available for the whole period: {sorted(map(repr, busy))}"
            )

    ok = base.ok and availability_ok
    return ConstraintReport(
        ok=ok,
        size_ok=base.size_ok,
        initiator_included=base.initiator_included,
        radius_ok=base.radius_ok,
        acquaintance_ok=base.acquaintance_ok,
        availability_ok=availability_ok,
        total_distance=base.total_distance,
        violations=violations,
    )
