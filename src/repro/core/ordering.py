"""Access-ordering measures (paper §3.2.2 and §4.2).

SGSelect decides which candidate to add to the intermediate solution set
``VS`` next using three measures over the candidate state:

* **interior unfamiliarity** ``U(VS)`` — the worst-case number of
  non-neighbours any current member has inside ``VS`` (Definition 2),
* **exterior expansibility** ``A(VS)`` — the maximum number of vertices that
  ``VS`` can still be expanded by without some member exceeding its
  acquaintance quota (Definition 3),
* **temporal extensibility** ``X(VS)`` — the slack of the joint availability
  run around the pivot slot beyond the required activity length
  (Definition 5; STGSelect only).

Each measure has a companion *condition* used during candidate selection;
the conditions carry relaxation exponents (``θ``, ``φ``) that the solvers
adjust when no candidate qualifies.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterable, Optional, Sequence

try:  # numpy is optional (the [speed] extra); the packed helpers need it.
    import numpy as np
except ImportError:  # pragma: no cover - exercised by the no-numpy CI leg
    np = None

from ..graph.social_graph import SocialGraph
from ..temporal.slots import SlotRange
from ..types import Vertex

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..graph.packed import PackedAdjacency

__all__ = [
    "interior_unfamiliarity",
    "exterior_expansibility",
    "temporal_extensibility",
    "interior_unfamiliarity_condition",
    "exterior_expansibility_condition",
    "temporal_extensibility_condition",
    "candidate_measures_bitset",
    "unfamiliarity_measures_packed",
    "expansibility_member_terms",
]


def interior_unfamiliarity(graph: SocialGraph, members: Iterable[Vertex]) -> int:
    """``U(VS) = max_{v in VS} |VS - {v} - N_v|``.

    The number of non-neighbours (within ``VS``) of the member who knows the
    fewest other members.  ``U(VS) <= k`` is exactly the acquaintance
    constraint on ``VS``.
    """
    member_list = list(members)
    member_set = set(member_list)
    worst = 0
    for v in member_list:
        nbrs = graph.neighbors(v)
        strangers = sum(1 for u in member_set if u != v and u not in nbrs)
        if strangers > worst:
            worst = strangers
    return worst


def exterior_expansibility(
    graph: SocialGraph,
    members: Iterable[Vertex],
    remaining: Iterable[Vertex],
    acquaintance: int,
) -> int:
    """``A(VS) = min_{v in VS} (|VA ∩ N_v| + (k - |VS - {v} - N_v|))``.

    For every current member ``v``: the number of remaining candidates that
    are acquainted with ``v`` plus ``v``'s residual quota of unacquainted
    co-attendees.  The minimum over members bounds how many more attendees
    can possibly join ``VS``.
    """
    member_list = list(members)
    member_set = set(member_list)
    remaining_set = set(remaining)
    best = None
    for v in member_list:
        nbrs = graph.neighbors(v)
        neighbours_outside = sum(1 for u in remaining_set if u in nbrs)
        strangers_inside = sum(1 for u in member_set if u != v and u not in nbrs)
        value = neighbours_outside + (acquaintance - strangers_inside)
        if best is None or value < best:
            best = value
    return best if best is not None else 0


def candidate_measures_bitset(
    adj: Sequence[int],
    member_ids: Sequence[int],
    strangers: Sequence[int],
    members_mask: int,
    trial_remaining_mask: int,
    candidate: int,
    acquaintance: int,
) -> "tuple[int, int]":
    """Bitset evaluation of ``U(VS ∪ {u})`` and ``A(VS ∪ {u})`` in one pass.

    This is the compiled-kernel counterpart of
    :func:`interior_unfamiliarity` + :func:`exterior_expansibility`.  Instead
    of rescanning ``VS`` with set operations per member, it reuses the
    *incrementally maintained* stranger counters of the current search node:
    ``strangers[v]`` must hold ``|VS - {v} - N_v|`` for every ``v`` in
    ``member_ids``.  The candidate's own stranger count and every member's
    one-step delta are then single AND/popcount expressions over the
    adjacency bitmasks.

    Parameters
    ----------
    adj:
        Bitmask adjacency of the compiled feasible graph.
    member_ids:
        Ids currently in ``VS`` (any order).
    strangers:
        Per-id stranger counters, valid at the ids in ``member_ids``.
    members_mask:
        Bitmask of ``VS``.
    trial_remaining_mask:
        Bitmask of ``VA - {u}``.
    candidate:
        The id ``u`` being evaluated.
    acquaintance:
        The constraint ``k``.

    Returns
    -------
    (unfamiliarity, expansibility):
        ``U(VS ∪ {u})`` and ``A(VS ∪ {u})`` — identical to the reference
        measures evaluated on the expanded set.
    """
    cand_adj = adj[candidate]
    cand_strangers = (members_mask & ~cand_adj).bit_count()
    worst = cand_strangers
    best = (trial_remaining_mask & cand_adj).bit_count() + (acquaintance - cand_strangers)
    for v in member_ids:
        s = strangers[v] + (0 if cand_adj >> v & 1 else 1)
        if s > worst:
            worst = s
        value = (trial_remaining_mask & adj[v]).bit_count() + (acquaintance - s)
        if value < best:
            best = value
    return worst, best


def unfamiliarity_measures_packed(
    packed: "PackedAdjacency",
    member_ids: Sequence[int],
    strangers: Sequence[int],
    members_mask: int,
) -> "tuple[np.ndarray, np.ndarray]":
    """``U(VS ∪ {u})`` for *every* id ``u`` at once (numpy kernel).

    Whole-pool counterpart of the unfamiliarity half of
    :func:`candidate_measures_bitset`: one ``bitwise_count`` reduction gives
    every candidate's stranger count inside ``VS``, and one elementwise-max
    pass per member folds in the members' one-step deltas
    (``strangers[v] + 1 - adj(u, v)``).  Entries at ids inside ``VS`` are
    meaningless (a member is never a candidate) — callers only index the
    result at ids from the remaining pool.

    Both returned arrays depend only on ``VS``, so one evaluation serves a
    search node for its whole lifetime (the remaining pool may shrink, the
    member set cannot).

    Returns
    -------
    (cand_strangers, unfamiliarity):
        Per-id ``|VS - N_u|`` and per-id ``U(VS ∪ {u})``.
    """
    overlap = packed.intersect_counts(packed.row(members_mask))
    cand_strangers = len(member_ids) - overlap
    member_term: Optional[np.ndarray] = None
    for v in member_ids:
        term = strangers[v] + 1 - packed.column(v)
        member_term = term if member_term is None else np.maximum(member_term, term)
    # member_ids always contains the initiator, so member_term is set.
    return cand_strangers, np.maximum(cand_strangers, member_term)


def expansibility_member_terms(
    base_counts: "np.ndarray",
    member_ids: Sequence[int],
    strangers: Sequence[int],
    acquaintance: int,
    adj: Sequence[int],
    pending_mask: int = 0,
) -> "list[int]":
    """The member side of ``A(VS ∪ {u})``, one small int list for the pool.

    Rests on the identity that makes this side pool-invariant: for a member
    ``v`` and *any* candidate ``u`` still in the pool,
    ``|(VA - {u}) ∩ N_v| + (k - |VS ∪ {u} - {v} - N_v|)`` collapses to
    ``|VA ∩ N_v| + k - strangers[v] - 1`` — the adjacency bit ``adj(u, v)``
    cancels between the neighbour count and the stranger delta.  The full
    measure is then ``A(VS ∪ {u}) = min(min(terms), |VA ∩ N_u| + k -
    |VS - N_u|)`` (no self-loops, so dropping ``u`` from ``VA`` never
    changes ``|VA ∩ N_u|``) — a pure scalar computation per candidate.

    ``base_counts`` holds ``|VA₀ ∩ N_i|`` for a *base* pool ``VA₀``;
    ``pending_mask`` lists the ids removed from ``VA₀`` since (the numpy
    kernels batch removals this way instead of touching the array), so the
    current count for a member ``v`` is ``base_counts[v] - |pending ∩
    N_v|``.  The terms align with ``member_ids``; the kernels keep them
    current across further removals with plain int updates
    (``terms[j] -= adj(c, member_ids[j])``).
    """
    terms = []
    for v in member_ids:
        term = int(base_counts[v]) + acquaintance - strangers[v] - 1
        if pending_mask:
            term -= (pending_mask & adj[v]).bit_count()
        terms.append(term)
    return terms


def temporal_extensibility(shared_slots: Optional[SlotRange], activity_length: int) -> int:
    """``X(VS) = |TS| - m`` where ``TS`` is the joint availability run around the pivot.

    ``shared_slots`` is ``None`` when the members of ``VS`` no longer share
    any run containing the pivot slot; the extensibility is then ``-m``
    (maximally infeasible).
    """
    if shared_slots is None:
        return -activity_length
    return len(shared_slots) - activity_length


def interior_unfamiliarity_condition(
    unfamiliarity: int,
    new_size: int,
    group_size: int,
    acquaintance: int,
    theta: int,
) -> bool:
    """The interior unfamiliarity condition
    ``U(VS ∪ {v}) <= k * (|VS ∪ {v}| / p) ** θ``.

    With ``θ = 0`` the right-hand side is ``k`` and the condition is exactly
    the acquaintance constraint on the expanded set.
    """
    rhs = acquaintance * (new_size / group_size) ** theta
    return unfamiliarity <= rhs


def exterior_expansibility_condition(
    expansibility: int,
    new_size: int,
    group_size: int,
) -> bool:
    """The exterior expansibility condition
    ``A(VS ∪ {v}) >= p - |VS ∪ {v}|`` (Lemma 1 makes its failure a sound removal)."""
    return expansibility >= group_size - new_size


def temporal_extensibility_condition(
    extensibility: int,
    new_size: int,
    group_size: int,
    activity_length: int,
    phi: int,
    phi_threshold: int,
) -> bool:
    """The temporal extensibility condition
    ``X(VS ∪ {u}) >= (m - 1) * ((p - |VS ∪ {u}|) / p) ** φ``.

    Once ``φ`` has been raised to ``phi_threshold`` the right-hand side is
    treated as 0, i.e. only hard temporal feasibility (``X >= 0``) is
    required.
    """
    if phi >= phi_threshold:
        rhs = 0.0
    else:
        rhs = (activity_length - 1) * ((group_size - new_size) / group_size) ** phi
    return extensibility >= rhs
