"""PCArrange — a model of manual activity coordination (paper §5.1).

The paper's quality study compares STGSelect against *PCArrange*, "an
algorithm imitating the behavior of manual coordination via phone calls,
where the initiator q sequentially invites close friends first and then
finds out the common available time slots".  PCArrange ignores the
acquaintance constraint entirely; the observed constraint ``k_h`` (the
largest number of strangers any attendee ends up with) is extracted from its
result afterwards.

The coordination model implemented here:

1. The initiator calls friends in ascending order of social distance
   (closest first), exactly like working down a phone list.
2. A called friend joins the tentative group only if, after joining, the
   group still shares at least one common period of ``m`` consecutive free
   slots — i.e. the call "checks calendars" and the friend declines when no
   common time would remain.
3. Calling stops once ``p`` attendees (including the initiator) have agreed;
   the activity is scheduled in the earliest remaining common period.

If the phone list is exhausted before ``p`` attendees agree, the manual
coordination fails — which does happen for tight schedules, and is reported
as an infeasible result.
"""

from __future__ import annotations

import time
from typing import List

from ..graph.extraction import extract_feasible_graph
from ..graph.social_graph import SocialGraph
from ..temporal.calendars import CalendarStore
from ..types import Vertex
from .constraints import observed_acquaintance
from .query import STGQuery
from .result import STGroupResult, SearchStats

__all__ = ["PCArrange", "pc_arrange"]


class PCArrange:
    """Greedy closest-friend-first coordination heuristic."""

    def __init__(self, graph: SocialGraph, calendars: CalendarStore) -> None:
        self.graph = graph
        self.calendars = calendars

    def solve(self, query: STGQuery) -> STGroupResult:
        """Run the manual-coordination model for ``query``.

        The acquaintance parameter of ``query`` is ignored (the manual
        coordinator does not reason about mutual acquaintance); use
        :func:`~repro.core.constraints.observed_acquaintance` or
        :meth:`observed_k` to measure the ``k_h`` of the outcome.
        """
        start = time.perf_counter()
        stats = SearchStats()
        q = query.initiator
        p = query.group_size
        m = query.activity_length

        feasible = extract_feasible_graph(self.graph, q, query.radius)
        distances = feasible.distances
        phone_list = feasible.candidates  # already sorted by ascending distance

        group: List[Vertex] = [q]
        joint = self.calendars.get(q)
        if not joint.has_window(m):
            stats.elapsed_seconds = time.perf_counter() - start
            return STGroupResult.infeasible(solver="PCArrange", stats=stats)

        for friend in phone_list:
            if len(group) == p:
                break
            stats.candidates_considered += 1
            trial = joint.intersect(self.calendars.get(friend))
            if trial.has_window(m):
                group.append(friend)
                joint = trial

        stats.elapsed_seconds = time.perf_counter() - start
        if len(group) < p:
            return STGroupResult.infeasible(solver="PCArrange", stats=stats)

        windows = joint.free_windows(m)
        period = windows[0]
        total = sum(distances[v] for v in group if v != q)
        return STGroupResult(
            feasible=True,
            members=frozenset(group),
            total_distance=total,
            period=period,
            pivot=None,
            shared_slots=period,
            solver="PCArrange",
            stats=stats,
        )

    def observed_k(self, result: STGroupResult) -> int:
        """The ``k_h`` of a PCArrange outcome: the smallest ``k`` its group satisfies."""
        if not result.feasible:
            return 0
        return observed_acquaintance(self.graph, result.members)


def pc_arrange(
    graph: SocialGraph,
    calendars: CalendarStore,
    initiator: Vertex,
    group_size: int,
    radius: int,
    activity_length: int,
) -> STGroupResult:
    """Convenience wrapper for :class:`PCArrange` (no acquaintance parameter)."""
    query = STGQuery(
        initiator=initiator,
        group_size=group_size,
        radius=radius,
        acquaintance=group_size,  # ignored by PCArrange; any valid value works
        activity_length=activity_length,
    )
    return PCArrange(graph, calendars).solve(query)
