"""Brute-force baseline algorithms (paper §5).

The paper compares its algorithms against two simple baselines:

* **SGQ baseline** — enumerate every possible group of ``p - 1`` candidates
  (``C(f-1, p-1)`` groups for ``f`` feasible candidates), keep the groups
  that satisfy the acquaintance constraint, and return the one with the
  smallest total social distance.
* **STGQ baseline** — "sequentially considering each time slot and solving
  the corresponding SGQ problem": for every candidate activity period of
  ``m`` consecutive slots, restrict the candidate pool to the people
  available for the whole period, solve the induced SGQ, and keep the best
  result over all periods.

Both are exact, so they double as ground truth in the correctness tests; the
STGQ baseline can use SGSelect for the inner problem (matching the paper's
description) or the brute-force enumeration (for a fully independent
cross-check).  In both cases social distances are measured on the full
graph — availability restricts who may *join* the group, not how distances
are computed — matching the STGQ definition in the paper.
"""

from __future__ import annotations

import math
import time
from itertools import combinations
from typing import Optional, Set, Tuple

from ..graph.extraction import extract_feasible_graph
from ..graph.kplex import is_kplex
from ..graph.social_graph import SocialGraph
from ..temporal.calendars import CalendarStore
from ..temporal.slots import SlotRange
from ..types import Vertex
from .query import SGQuery, STGQuery, SearchParameters
from .result import GroupResult, STGroupResult, SearchStats

__all__ = ["BaselineSGQ", "BaselineSTGQ", "baseline_sg", "baseline_stg"]


class BaselineSGQ:
    """Exhaustive enumeration solver for SGQ."""

    def __init__(self, graph: SocialGraph) -> None:
        self.graph = graph

    def solve(
        self,
        query: SGQuery,
        max_groups: Optional[int] = None,
        allowed_candidates: Optional[Set[Vertex]] = None,
    ) -> GroupResult:
        """Enumerate every candidate group and return the optimum.

        Parameters
        ----------
        query:
            The SGQ to answer.
        max_groups:
            Optional safety cap on the number of enumerated groups; exceeding
            it raises :class:`ValueError`.  Benchmarks use it to guard against
            accidentally launching astronomically large enumerations.
        allowed_candidates:
            Optional restriction of the candidate pool (the initiator is
            always allowed); distances remain those of the full graph.
        """
        start = time.perf_counter()
        stats = SearchStats()

        q = query.initiator
        p = query.group_size
        feasible = extract_feasible_graph(self.graph, q, query.radius)
        candidates = feasible.candidates
        if allowed_candidates is not None:
            candidates = [v for v in candidates if v in allowed_candidates]

        if p == 1:
            stats.elapsed_seconds = time.perf_counter() - start
            return GroupResult(True, frozenset({q}), 0.0, solver="BaselineSGQ", stats=stats)
        if len(candidates) < p - 1:
            stats.elapsed_seconds = time.perf_counter() - start
            return GroupResult.infeasible(solver="BaselineSGQ", stats=stats)

        if max_groups is not None:
            total = math.comb(len(candidates), p - 1)
            if total > max_groups:
                raise ValueError(
                    f"baseline would enumerate {total} groups, above the cap of {max_groups}"
                )

        graph = feasible.graph
        distances = feasible.distances
        best_members: Optional[Tuple[Vertex, ...]] = None
        best_distance = math.inf
        for combo in combinations(candidates, p - 1):
            stats.nodes_expanded += 1
            total_distance = sum(distances[v] for v in combo)
            if total_distance >= best_distance:
                continue
            group = (q,) + combo
            if is_kplex(graph, group, query.acquaintance):
                best_members = group
                best_distance = total_distance
                stats.solutions_found += 1

        stats.elapsed_seconds = time.perf_counter() - start
        if best_members is None:
            return GroupResult.infeasible(solver="BaselineSGQ", stats=stats)
        return GroupResult(
            feasible=True,
            members=frozenset(best_members),
            total_distance=best_distance,
            solver="BaselineSGQ",
            stats=stats,
        )


class BaselineSTGQ:
    """Per-period baseline for STGQ: one SGQ per candidate activity period."""

    def __init__(
        self,
        graph: SocialGraph,
        calendars: CalendarStore,
        inner: str = "sgselect",
        parameters: Optional[SearchParameters] = None,
    ) -> None:
        """``inner`` selects the per-period solver: ``"sgselect"`` (as the
        paper describes) or ``"bruteforce"`` for a fully independent check."""
        if inner not in ("sgselect", "bruteforce"):
            raise ValueError(f"inner must be 'sgselect' or 'bruteforce', got {inner!r}")
        self.graph = graph
        self.calendars = calendars
        self.inner = inner
        self.parameters = parameters or SearchParameters()

    def solve(self, query: STGQuery, max_groups: Optional[int] = None) -> STGroupResult:
        """Enumerate every activity period, solve the induced SGQ, keep the best."""
        from .sgselect import SGSelect  # local import avoids a cycle at module load

        start = time.perf_counter()
        stats = SearchStats()
        horizon = self.calendars.horizon
        m = query.activity_length
        q = query.initiator

        best_distance = math.inf
        best_members: Optional[frozenset] = None
        best_period: Optional[SlotRange] = None

        sg_query = query.social_part()
        feasible = extract_feasible_graph(self.graph, q, query.radius)
        all_candidates = feasible.candidates
        sg_solver = SGSelect(self.graph, self.parameters)
        brute_solver = BaselineSGQ(self.graph)

        for period in SlotRange(1, horizon).windows(m):
            stats.pivots_processed += 1
            if not self.calendars.is_available_range(q, period):
                continue
            available = {
                v for v in all_candidates if self.calendars.is_available_range(v, period)
            }
            if len(available) < query.group_size - 1:
                continue
            if self.inner == "sgselect":
                sub_result = sg_solver.solve(sg_query, allowed_candidates=available)
            else:
                sub_result = brute_solver.solve(
                    sg_query, max_groups=max_groups, allowed_candidates=available
                )
            stats.merge(sub_result.stats)
            if sub_result.feasible and sub_result.total_distance < best_distance:
                best_distance = sub_result.total_distance
                best_members = sub_result.members
                best_period = period
                stats.solutions_found += 1

        stats.elapsed_seconds = time.perf_counter() - start
        if best_members is None:
            return STGroupResult.infeasible(solver="BaselineSTGQ", stats=stats)
        return STGroupResult(
            feasible=True,
            members=best_members,
            total_distance=best_distance,
            period=best_period,
            pivot=None,
            shared_slots=best_period,
            solver="BaselineSTGQ",
            stats=stats,
        )


def baseline_sg(
    graph: SocialGraph,
    initiator: Vertex,
    group_size: int,
    radius: int,
    acquaintance: int,
    max_groups: Optional[int] = None,
) -> GroupResult:
    """Convenience wrapper for :class:`BaselineSGQ`."""
    query = SGQuery(
        initiator=initiator, group_size=group_size, radius=radius, acquaintance=acquaintance
    )
    return BaselineSGQ(graph).solve(query, max_groups=max_groups)


def baseline_stg(
    graph: SocialGraph,
    calendars: CalendarStore,
    initiator: Vertex,
    group_size: int,
    radius: int,
    acquaintance: int,
    activity_length: int,
    inner: str = "sgselect",
) -> STGroupResult:
    """Convenience wrapper for :class:`BaselineSTGQ`."""
    query = STGQuery(
        initiator=initiator,
        group_size=group_size,
        radius=radius,
        acquaintance=acquaintance,
        activity_length=activity_length,
    )
    return BaselineSTGQ(graph, calendars, inner=inner).solve(query)
