"""Core algorithms of the reproduction: query model, SGSelect, STGSelect,
baselines, the Integer Programming formulation, and the quality-comparison
heuristics (PCArrange / STGArrange)."""

from .baseline import BaselineSGQ, BaselineSTGQ, baseline_sg, baseline_stg
from .context import SearchContext
from .constraints import (
    ConstraintReport,
    check_sg_solution,
    check_stg_solution,
    group_total_distance,
    observed_acquaintance,
)
from .heuristics import GreedySGQ, GreedySTGQ, greedy_sg, greedy_stg
from .ip import IPSolver, solve_sgq_ip, solve_stgq_ip
from .ordering import (
    exterior_expansibility,
    exterior_expansibility_condition,
    interior_unfamiliarity,
    interior_unfamiliarity_condition,
    temporal_extensibility,
    temporal_extensibility_condition,
)
from .pcarrange import PCArrange, pc_arrange
from .planner import ActivityPlanner
from .pruning import acquaintance_pruning, availability_pruning, distance_pruning
from .query import VALID_KERNELS, SGQuery, STGQuery, SearchParameters
from .result import GroupResult, STGroupResult, SearchStats
from .sgselect import SGSelect, sg_select
from .stgarrange import STGArrange, STGArrangeOutcome
from .stgselect import STGSelect, stg_select

__all__ = [
    "SGQuery",
    "STGQuery",
    "SearchParameters",
    "VALID_KERNELS",
    "GroupResult",
    "STGroupResult",
    "SearchStats",
    "SearchContext",
    "SGSelect",
    "sg_select",
    "STGSelect",
    "stg_select",
    "BaselineSGQ",
    "BaselineSTGQ",
    "baseline_sg",
    "baseline_stg",
    "IPSolver",
    "solve_sgq_ip",
    "solve_stgq_ip",
    "GreedySGQ",
    "GreedySTGQ",
    "greedy_sg",
    "greedy_stg",
    "PCArrange",
    "pc_arrange",
    "STGArrange",
    "STGArrangeOutcome",
    "ActivityPlanner",
    "ConstraintReport",
    "check_sg_solution",
    "check_stg_solution",
    "group_total_distance",
    "observed_acquaintance",
    "interior_unfamiliarity",
    "exterior_expansibility",
    "temporal_extensibility",
    "interior_unfamiliarity_condition",
    "exterior_expansibility_condition",
    "temporal_extensibility_condition",
    "distance_pruning",
    "acquaintance_pruning",
    "availability_pruning",
]
