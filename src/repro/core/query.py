"""Query objects for SGQ and STGQ.

The paper parameterises its queries as ``SGQ(p, s, k)`` and
``STGQ(p, s, k, m)``:

* ``p`` — activity size, the number of attendees *including* the initiator,
* ``s`` — social radius constraint (max number of edges from the initiator),
* ``k`` — acquaintance constraint (max number of unacquainted co-attendees
  per attendee),
* ``m`` — activity length in consecutive time slots (STGQ only).

The dataclasses below carry the parameters together with the initiator and
validate them eagerly so solvers can assume well-formed input.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass

from ..exceptions import QueryError
from ..graph.packed import numpy_kernel_available
from ..types import Vertex

__all__ = ["SGQuery", "STGQuery", "SearchParameters", "VALID_KERNELS"]

#: Every selectable branch-and-bound kernel, in documentation order.  The
#: validation error message is derived from this tuple, so adding a kernel
#: here is what keeps the message (and the CLI choices) from drifting.
VALID_KERNELS = ("compiled", "numpy", "reference")


@dataclass(frozen=True)
class SearchParameters:
    """Tunables of the SGSelect / STGSelect search (not query semantics).

    Attributes
    ----------
    theta:
        Initial exponent of the interior unfamiliarity condition
        (``θ`` in the paper).  ``θ = 0`` makes the condition exactly the
        acquaintance constraint; larger values prefer well-connected vertices
        early.  Relaxed (decremented) during the search when no candidate
        qualifies.
    phi:
        Initial exponent of the temporal extensibility condition (``φ``).
        Must be at least 1.  Raised during the search when no candidate
        qualifies.
    phi_threshold:
        The predetermined threshold ``t``: once ``φ`` reaches it the temporal
        extensibility requirement degenerates to "the joint availability must
        still contain an activity period" (RHS = 0).
    use_access_ordering / use_distance_pruning / use_acquaintance_pruning /
    use_availability_pruning / use_pivot_slots:
        Toggles for the individual strategies, used by the ablation
        benchmarks.  Disabling a strategy never affects optimality, only
        running time.
    kernel:
        Which branch-and-bound inner loop to run: ``"compiled"`` (default)
        maps the feasible graph to dense integer ids and evaluates the
        measures with bitmask AND/popcount and incrementally maintained
        counters; ``"numpy"`` additionally packs the adjacency into a
        ``uint64`` matrix (:mod:`repro.graph.packed`) and evaluates the
        per-candidate measures and candidate-pool pruning scans as
        whole-pool vectorized reductions; ``"reference"`` keeps the
        original pure-Python set-based loop.  All kernels explore the
        identical search tree and return identical results and statistics
        (asserted by the equivalence test-suite); the reference kernel
        exists as the executable specification.  numpy is an optional
        dependency (the ``[speed]`` extra): requesting ``"numpy"`` without
        it degrades to ``"compiled"`` with a :class:`RuntimeWarning`, never
        an error — see :func:`repro.graph.packed.numpy_kernel_available`.
    """

    theta: int = 2
    phi: int = 2
    phi_threshold: int = 6
    use_access_ordering: bool = True
    use_distance_pruning: bool = True
    use_acquaintance_pruning: bool = True
    use_availability_pruning: bool = True
    use_pivot_slots: bool = True
    kernel: str = "compiled"

    def __post_init__(self) -> None:
        if self.theta < 0:
            raise QueryError(f"theta must be >= 0, got {self.theta}")
        if self.phi < 1:
            raise QueryError(f"phi must be >= 1, got {self.phi}")
        if self.phi_threshold < self.phi:
            raise QueryError(
                f"phi_threshold ({self.phi_threshold}) must be >= phi ({self.phi})"
            )
        if self.kernel not in VALID_KERNELS:
            choices = " or ".join(repr(kernel) for kernel in VALID_KERNELS)
            raise QueryError(f"kernel must be {choices}, got {self.kernel!r}")
        if self.kernel == "numpy" and not numpy_kernel_available():
            warnings.warn(
                "kernel='numpy' requested but numpy >= 2.0 is not installed; "
                "falling back to the compiled kernel (pip install repro[speed] "
                "to enable the vectorized kernel)",
                RuntimeWarning,
                stacklevel=2,
            )
            object.__setattr__(self, "kernel", "compiled")


@dataclass(frozen=True)
class SGQuery:
    """A Social Group Query ``SGQ(p, s, k)`` issued by ``initiator``.

    Attributes
    ----------
    initiator:
        The activity initiator ``q``; always part of the returned group.
    group_size:
        ``p`` — total number of attendees including the initiator.
    radius:
        ``s`` — candidates must be reachable within ``s`` edges of ``q``.
    acquaintance:
        ``k`` — each attendee may be non-adjacent to at most ``k`` other
        attendees.  ``k = 0`` demands a clique; ``k >= p - 1`` disables the
        constraint.
    """

    initiator: Vertex
    group_size: int
    radius: int
    acquaintance: int

    def __post_init__(self) -> None:
        if self.group_size < 1:
            raise QueryError(f"group size p must be >= 1, got {self.group_size}")
        if self.radius < 1:
            raise QueryError(f"social radius s must be >= 1, got {self.radius}")
        if self.acquaintance < 0:
            raise QueryError(f"acquaintance constraint k must be >= 0, got {self.acquaintance}")

    @property
    def attendees_to_select(self) -> int:
        """Number of attendees besides the initiator (``p - 1``)."""
        return self.group_size - 1

    def describe(self) -> str:
        """One-line human-readable description."""
        return (
            f"SGQ(p={self.group_size}, s={self.radius}, k={self.acquaintance}) "
            f"for initiator {self.initiator!r}"
        )


@dataclass(frozen=True)
class STGQuery:
    """A Social-Temporal Group Query ``STGQ(p, s, k, m)``.

    In addition to the SGQ parameters, ``activity_length`` (``m``) gives the
    number of consecutive time slots every attendee must share.
    """

    initiator: Vertex
    group_size: int
    radius: int
    acquaintance: int
    activity_length: int

    def __post_init__(self) -> None:
        if self.group_size < 1:
            raise QueryError(f"group size p must be >= 1, got {self.group_size}")
        if self.radius < 1:
            raise QueryError(f"social radius s must be >= 1, got {self.radius}")
        if self.acquaintance < 0:
            raise QueryError(f"acquaintance constraint k must be >= 0, got {self.acquaintance}")
        if self.activity_length < 1:
            raise QueryError(f"activity length m must be >= 1, got {self.activity_length}")

    @property
    def attendees_to_select(self) -> int:
        """Number of attendees besides the initiator (``p - 1``)."""
        return self.group_size - 1

    def social_part(self) -> SGQuery:
        """The SGQ obtained by dropping the temporal constraint."""
        return SGQuery(
            initiator=self.initiator,
            group_size=self.group_size,
            radius=self.radius,
            acquaintance=self.acquaintance,
        )

    def describe(self) -> str:
        """One-line human-readable description."""
        return (
            f"STGQ(p={self.group_size}, s={self.radius}, k={self.acquaintance}, "
            f"m={self.activity_length}) for initiator {self.initiator!r}"
        )
