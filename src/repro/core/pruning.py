"""Pruning strategies (Lemmas 2, 3 and 5 of the paper).

Each strategy is a standalone predicate over the current search state so it
can be unit-tested in isolation, toggled for ablation studies, and shared
between SGSelect and STGSelect.  All three are *sound*: they only discard
states that provably cannot improve on the incumbent (distance pruning) or
cannot be completed into any feasible solution (acquaintance and
availability pruning), so enabling them never changes the optimal answer.
"""

from __future__ import annotations

import math
from typing import Iterable, Mapping, Optional, Sequence

try:  # numpy is optional (the [speed] extra); the packed helpers need it.
    import numpy as np
except ImportError:  # pragma: no cover - exercised by the no-numpy CI leg
    np = None

from ..graph.social_graph import SocialGraph
from ..temporal.calendars import CalendarStore
from ..temporal.pivot import PivotWindow
from ..types import Vertex

__all__ = [
    "distance_pruning",
    "acquaintance_pruning",
    "availability_pruning",
    "distance_pruning_bitset",
    "acquaintance_pruning_bitset",
    "availability_pruning_bitset",
    "acquaintance_pruning_packed",
]


def distance_pruning(
    incumbent_distance: float,
    current_distance: float,
    members_count: int,
    group_size: int,
    remaining_distances: Iterable[float],
) -> bool:
    """Lemma 2: prune when the remaining distance budget cannot pay for the
    cheapest possible completion.

    Returns ``True`` (prune) when

        D - sum_{v in VS} d_{v,q}  <  (p - |VS|) * min_{v in VA} d_{v,q}

    where ``D`` is the incumbent total distance.  With no incumbent
    (``D = inf``) the rule never fires.  With an empty candidate set the rule
    does not fire either (the size check handles that case).
    """
    if incumbent_distance == math.inf:
        return False
    needed = group_size - members_count
    if needed <= 0:
        return False
    cheapest = min(remaining_distances, default=math.inf)
    if cheapest == math.inf:
        # No candidates left: nothing to prune here, the size check stops the node.
        return False
    return incumbent_distance - current_distance < needed * cheapest


def acquaintance_pruning(
    graph: SocialGraph,
    remaining: Sequence[Vertex],
    members_count: int,
    group_size: int,
    acquaintance: int,
) -> bool:
    """Lemma 3: prune when the candidate set is too sparsely connected to
    supply the rest of the group.

    Let ``inner(v) = |VA ∩ N_v|`` be the inner degree of candidate ``v``
    (edges to other candidates).  Any feasible completion picks
    ``p - |VS|`` candidates; each of them has at most ``|VS|`` acquaintances
    among the already-selected members, so it needs at least
    ``(p - 1 - k) - |VS| = p - |VS| - 1 - k`` acquaintances among the other
    chosen candidates.  Their total inner degree is therefore at least
    ``(p - |VS|) (p - |VS| - 1 - k)``.  The rule compares that lower bound
    with the upper bound

        sum_{v in VA} inner(v) - (|VA| - p + |VS|) * min_{v in VA} inner(v)

    on the total inner degree of the chosen candidates (avoiding a sort).
    Returns ``True`` (prune) when the upper bound is below the lower bound.

    .. note::
       The paper's Lemma 3 states the lower bound as
       ``(p - |VS|)(p - |VS| - k)``, which implicitly assumes a chosen
       candidate gets no acquaintance credit from the members already in
       ``VS``; that version can prune states that still lead to feasible
       groups (verified by counter-example in the test-suite).  The corrected
       bound used here is sound, still prunes the paper's worked example
       (Appendix A, Example 2), and preserves optimality.
    """
    needed = group_size - members_count
    if needed <= 0:
        return False
    required = needed * (needed - 1 - acquaintance)
    if required <= 0:
        # The lower bound is non-positive: the rule can never fire.
        return False
    remaining_set = set(remaining)
    if not remaining_set:
        return False
    total_inner = 0
    min_inner = None
    for v in remaining_set:
        nbrs = graph.neighbors(v)
        inner = sum(1 for u in remaining_set if u in nbrs)
        total_inner += inner
        if min_inner is None or inner < min_inner:
            min_inner = inner
    not_chosen = len(remaining_set) - needed
    if not_chosen < 0:
        # Fewer candidates than needed; the size check stops the node.
        return False
    upper_bound = total_inner - not_chosen * (min_inner or 0)
    return upper_bound < required


def distance_pruning_bitset(
    incumbent_distance: float,
    current_distance: float,
    members_count: int,
    group_size: int,
    remaining_mask: int,
    dist: Sequence[float],
) -> bool:
    """Bitset counterpart of :func:`distance_pruning` (Lemma 2).

    Relies on the compiled-graph invariant that adopted distances are
    ascending in id order, so the cheapest remaining candidate is simply the
    lowest set bit of ``remaining_mask`` — no scan needed.
    """
    if incumbent_distance == math.inf:
        return False
    needed = group_size - members_count
    if needed <= 0 or not remaining_mask:
        return False
    cheapest = dist[(remaining_mask & -remaining_mask).bit_length() - 1]
    return incumbent_distance - current_distance < needed * cheapest


def acquaintance_pruning_bitset(
    adj: Sequence[int],
    remaining_mask: int,
    members_count: int,
    group_size: int,
    acquaintance: int,
) -> bool:
    """Bitset counterpart of :func:`acquaintance_pruning` (Lemma 3, corrected
    bound — see the reference docstring).  Inner degrees become one
    AND/popcount per remaining candidate."""
    needed = group_size - members_count
    if needed <= 0:
        return False
    required = needed * (needed - 1 - acquaintance)
    if required <= 0 or not remaining_mask:
        return False
    count = remaining_mask.bit_count()
    not_chosen = count - needed
    if not_chosen < 0:
        return False
    total_inner = 0
    min_inner: Optional[int] = None
    mask = remaining_mask
    while mask:
        low = mask & -mask
        inner = (remaining_mask & adj[low.bit_length() - 1]).bit_count()
        total_inner += inner
        if min_inner is None or inner < min_inner:
            min_inner = inner
        mask ^= low
    upper_bound = total_inner - not_chosen * (min_inner or 0)
    return upper_bound < required


def acquaintance_pruning_packed(
    remaining_counts: "np.ndarray",
    remaining_indicator: "np.ndarray",
    remaining_count: int,
    members_count: int,
    group_size: int,
    acquaintance: int,
) -> bool:
    """Packed counterpart of :func:`acquaintance_pruning_bitset` (Lemma 3).

    ``remaining_counts[i]`` must hold ``|VA ∩ N_i|`` for every id (one
    whole-pool ``bitwise_count`` reduction) and ``remaining_indicator`` the
    boolean membership of VA, so the per-candidate inner-degree loop of the
    bitset version becomes a vectorized sum/min over the selected entries.
    """
    needed = group_size - members_count
    if needed <= 0:
        return False
    required = needed * (needed - 1 - acquaintance)
    if required <= 0 or not remaining_count:
        return False
    not_chosen = remaining_count - needed
    if not_chosen < 0:
        return False
    inner = remaining_counts[remaining_indicator]
    upper_bound = int(inner.sum()) - not_chosen * int(inner.min())
    return upper_bound < required


def availability_pruning_bitset(
    busy_masks: Mapping[int, int],
    remaining_mask: int,
    members_count: int,
    group_size: int,
    window: PivotWindow,
) -> bool:
    """Bitset counterpart of :func:`availability_pruning` (Lemma 5).

    ``busy_masks[slot]`` must hold the bitmask of candidate ids that are
    *unavailable* in ``slot`` for every slot of the pivot window, so the
    per-slot unavailable count is one AND/popcount instead of a scan over
    the remaining candidates.
    """
    needed = group_size - members_count
    if needed <= 0:
        return False
    count = remaining_mask.bit_count()
    if count < needed:
        return False
    threshold = count - needed + 1
    pivot = window.pivot
    m = window.activity_length

    t_minus = window.window.start - 1
    slot = pivot - 1
    while slot >= window.window.start:
        if (remaining_mask & busy_masks[slot]).bit_count() >= threshold:
            t_minus = slot
            break
        slot -= 1

    t_plus = window.window.end + 1
    slot = pivot + 1
    while slot <= window.window.end:
        if (remaining_mask & busy_masks[slot]).bit_count() >= threshold:
            t_plus = slot
            break
        slot += 1

    return t_plus - t_minus <= m


def availability_pruning(
    calendars: CalendarStore,
    remaining: Sequence[Vertex],
    members_count: int,
    group_size: int,
    window: PivotWindow,
) -> bool:
    """Lemma 5: prune when too many candidates are busy too close to the pivot.

    Let ``n = |VA| - p + |VS| + 1``.  Find the slots nearest to the pivot on
    each side (``t^-_A(n) < pivot < t^+_A(n)``) in which at least ``n``
    candidates are unavailable.  Any completion needs ``p - |VS|`` candidates
    from ``VA``; in such a slot at most ``p - |VS| - 1`` candidates are free,
    so at least one chosen attendee is busy there.  The group's shared run
    around the pivot is then confined to ``(t^-, t^+)``; if that open
    interval has fewer than ``m`` slots the state is infeasible.

    The window boundaries act as virtual all-busy slots because the activity
    period anchored at this pivot cannot extend outside the window.
    Returns ``True`` (prune) when ``t^+ - t^- <= m``.
    """
    needed = group_size - members_count
    if needed <= 0:
        return False
    remaining_list = list(remaining)
    if len(remaining_list) < needed:
        return False
    threshold = len(remaining_list) - needed + 1
    pivot = window.pivot
    m = window.activity_length

    def unavailable_count(slot: int) -> int:
        return sum(1 for v in remaining_list if not calendars.is_available(v, slot))

    # Scan below the pivot.
    t_minus = window.window.start - 1
    slot = pivot - 1
    while slot >= window.window.start:
        if unavailable_count(slot) >= threshold:
            t_minus = slot
            break
        slot -= 1

    # Scan above the pivot.
    t_plus = window.window.end + 1
    slot = pivot + 1
    while slot <= window.window.end:
        if unavailable_count(slot) >= threshold:
            t_plus = slot
            break
        slot += 1

    return t_plus - t_minus <= m
