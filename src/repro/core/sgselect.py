"""SGSelect — exact branch-and-bound algorithm for Social Group Queries
(paper §3.2).

The search explores the set-enumeration tree of candidate groups rooted at
``VS = {q}``.  At each node it holds an intermediate solution set ``VS`` and
a remaining candidate set ``VA`` and branches on one candidate ``u`` at a
time: first the subtree where ``u`` joins the group, then the subtree where
``u`` is excluded (by dropping ``u`` from ``VA`` and continuing at the same
node).  Optimality relies on three ingredients:

* **Access ordering** — candidates are tried in ascending social distance,
  but a candidate is only *branched on* when the interior unfamiliarity and
  exterior expansibility conditions hold; failing candidates are deferred
  (the condition threshold ``θ`` is relaxed when nobody qualifies) or
  removed outright when the failure is provably permanent.
* **Distance pruning** (Lemma 2) and **acquaintance pruning** (Lemma 3) —
  sound node-level prunes based on the incumbent distance and on the inner
  degrees of the remaining candidates.
* The interior unfamiliarity condition at ``θ = 0`` *is* the acquaintance
  constraint, so every recorded solution is feasible by construction.

The solver reports rich :class:`~repro.core.result.SearchStats` so the
experiment harness can attribute speed-ups to individual strategies.
"""

from __future__ import annotations

import math
import time
from typing import Dict, List, Optional, Sequence, Set, Tuple

from ..exceptions import InfeasibleQueryError
from ..graph.extraction import FeasibleGraph, extract_feasible_graph
from ..graph.social_graph import SocialGraph
from ..types import Vertex
from .ordering import (
    exterior_expansibility,
    exterior_expansibility_condition,
    interior_unfamiliarity,
    interior_unfamiliarity_condition,
)
from .pruning import acquaintance_pruning, distance_pruning
from .query import SearchParameters, SGQuery
from .result import GroupResult, SearchStats

__all__ = ["SGSelect", "sg_select"]


class SGSelect:
    """Reusable SGSelect solver bound to one social graph.

    Parameters
    ----------
    graph:
        The full social graph ``G``.
    parameters:
        Search tunables (``θ`` start value and strategy toggles); defaults
        reproduce the paper's configuration.

    Examples
    --------
    >>> from repro.graph import SocialGraph
    >>> g = SocialGraph()
    >>> for u, v, d in [("q", "a", 1.0), ("q", "b", 2.0), ("a", "b", 1.0)]:
    ...     g.add_edge(u, v, d)
    >>> solver = SGSelect(g)
    >>> result = solver.solve(SGQuery(initiator="q", group_size=3, radius=1, acquaintance=0))
    >>> result.feasible, result.total_distance
    (True, 3.0)
    """

    def __init__(self, graph: SocialGraph, parameters: Optional[SearchParameters] = None) -> None:
        self.graph = graph
        self.parameters = parameters or SearchParameters()

    # ------------------------------------------------------------------
    # public API
    # ------------------------------------------------------------------
    def solve(
        self,
        query: SGQuery,
        on_infeasible: str = "return",
        allowed_candidates: Optional[Set[Vertex]] = None,
    ) -> GroupResult:
        """Answer ``query`` and return the optimal group.

        Parameters
        ----------
        query:
            The SGQ to answer.
        on_infeasible:
            ``"return"`` (default) yields an infeasible :class:`GroupResult`;
            ``"raise"`` raises :class:`InfeasibleQueryError` instead.
        allowed_candidates:
            Optional restriction of the candidate pool (the initiator is
            always allowed).  Social distances are still measured on the full
            graph; only group membership is restricted.  This is how the
            per-period STGQ baseline reuses SGSelect without perturbing the
            distance semantics.
        """
        start = time.perf_counter()
        stats = SearchStats()

        feasible_graph = extract_feasible_graph(self.graph, query.initiator, query.radius)
        result = self._search(
            feasible_graph, query, stats, incumbent=math.inf, allowed_candidates=allowed_candidates
        )
        stats.elapsed_seconds = time.perf_counter() - start

        if result is None:
            final = GroupResult.infeasible(solver="SGSelect", stats=stats)
            if on_infeasible == "raise":
                raise InfeasibleQueryError(f"no feasible group for {query.describe()}")
            return final
        members, total = result
        return GroupResult(
            feasible=True,
            members=frozenset(members),
            total_distance=total,
            solver="SGSelect",
            stats=stats,
        )

    # ------------------------------------------------------------------
    # search
    # ------------------------------------------------------------------
    def _search(
        self,
        feasible_graph: FeasibleGraph,
        query: SGQuery,
        stats: SearchStats,
        incumbent: float,
        allowed_candidates: Optional[Set[Vertex]] = None,
    ) -> Optional[Tuple[Set[Vertex], float]]:
        """Run the branch-and-bound over the feasible graph.

        Returns the optimal ``(members, total_distance)`` or ``None`` when no
        feasible group exists.  ``incumbent`` seeds the distance-pruning bound
        (used by STGSelect to share the bound across pivot slots).
        """
        q = query.initiator
        p = query.group_size
        if p == 1:
            return {q}, 0.0
        candidates = feasible_graph.candidates
        if allowed_candidates is not None:
            candidates = [v for v in candidates if v in allowed_candidates]
        if len(candidates) < p - 1:
            return None

        graph = feasible_graph.graph
        distances = feasible_graph.distances

        best: Dict[str, object] = {"distance": incumbent, "members": None}

        def record(members: Set[Vertex], total: float) -> None:
            if total < best["distance"]:
                best["distance"] = total
                best["members"] = set(members)
                stats.solutions_found += 1

        self._expand(
            graph=graph,
            distances=distances,
            query=query,
            members=[q],
            members_set={q},
            remaining=list(candidates),
            current_distance=0.0,
            best=best,
            stats=stats,
        )

        if best["members"] is None:
            return None
        return best["members"], float(best["distance"])  # type: ignore[arg-type]

    def _expand(
        self,
        graph: SocialGraph,
        distances,
        query: SGQuery,
        members: List[Vertex],
        members_set: Set[Vertex],
        remaining: List[Vertex],
        current_distance: float,
        best: Dict[str, object],
        stats: SearchStats,
    ) -> None:
        """Explore one node of the set-enumeration tree."""
        params = self.parameters
        p = query.group_size
        k = query.acquaintance
        stats.nodes_expanded += 1

        # ``remaining`` is owned by this node (each recursion copies it), so
        # in-place removal is safe and keeps the exclude branch cheap.
        theta = params.theta if params.use_access_ordering else 0
        deferred: Set[Vertex] = set()

        while True:
            if len(members_set) == p:
                record_distance = current_distance
                if record_distance < best["distance"]:  # type: ignore[operator]
                    best["distance"] = record_distance
                    best["members"] = set(members_set)
                    stats.solutions_found += 1
                return
            if len(members_set) + len(remaining) < p:
                return

            # --- node-level pruning -----------------------------------
            if params.use_distance_pruning and distance_pruning(
                incumbent_distance=best["distance"],  # type: ignore[arg-type]
                current_distance=current_distance,
                members_count=len(members_set),
                group_size=p,
                remaining_distances=(distances[v] for v in remaining),
            ):
                stats.distance_prunes += 1
                return
            if params.use_acquaintance_pruning and acquaintance_pruning(
                graph=graph,
                remaining=remaining,
                members_count=len(members_set),
                group_size=p,
                acquaintance=k,
            ):
                stats.acquaintance_prunes += 1
                return

            # --- candidate selection (access ordering) ----------------
            selected = None
            while selected is None:
                candidate = self._next_unvisited(remaining, deferred, distances)
                if candidate is None:
                    if theta > 0:
                        theta -= 1
                        deferred.clear()
                        continue
                    # θ exhausted and every remaining candidate deferred or
                    # removed: nothing left to branch on at this node.
                    return
                stats.candidates_considered += 1

                new_size = len(members_set) + 1
                trial_remaining = [v for v in remaining if v != candidate]
                expans = exterior_expansibility(
                    graph, list(members_set) + [candidate], trial_remaining, k
                )
                if not exterior_expansibility_condition(expans, new_size, p):
                    # Lemma 1: this candidate can never complete the group.
                    remaining.remove(candidate)
                    deferred.discard(candidate)
                    stats.expansibility_removals += 1
                    continue

                unfam = interior_unfamiliarity(graph, list(members_set) + [candidate])
                if not interior_unfamiliarity_condition(unfam, new_size, p, k, theta):
                    if theta == 0:
                        # The expanded set already violates the acquaintance
                        # constraint; adding more members can only make it worse.
                        remaining.remove(candidate)
                        deferred.discard(candidate)
                        stats.unfamiliarity_removals += 1
                    else:
                        deferred.add(candidate)
                    continue
                selected = candidate

            # --- branch 1: include ``selected`` -----------------------
            child_remaining = [v for v in remaining if v != selected]
            members.append(selected)
            members_set.add(selected)
            self._expand(
                graph=graph,
                distances=distances,
                query=query,
                members=members,
                members_set=members_set,
                remaining=child_remaining,
                current_distance=current_distance + distances[selected],
                best=best,
                stats=stats,
            )
            members.pop()
            members_set.discard(selected)

            # --- branch 2: exclude ``selected`` and continue ----------
            remaining.remove(selected)
            deferred.discard(selected)

    @staticmethod
    def _next_unvisited(
        remaining: Sequence[Vertex], deferred: Set[Vertex], distances
    ) -> Optional[Vertex]:
        """Return the unvisited candidate with the smallest social distance."""
        best_v = None
        best_d = math.inf
        for v in remaining:
            if v in deferred:
                continue
            d = distances[v]
            if d < best_d:
                best_d = d
                best_v = v
        return best_v


def sg_select(
    graph: SocialGraph,
    initiator: Vertex,
    group_size: int,
    radius: int,
    acquaintance: int,
    parameters: Optional[SearchParameters] = None,
) -> GroupResult:
    """Convenience wrapper: build the query and run :class:`SGSelect` once."""
    query = SGQuery(
        initiator=initiator, group_size=group_size, radius=radius, acquaintance=acquaintance
    )
    return SGSelect(graph, parameters).solve(query)
