"""SGSelect — exact branch-and-bound algorithm for Social Group Queries
(paper §3.2).

The search explores the set-enumeration tree of candidate groups rooted at
``VS = {q}``.  At each node it holds an intermediate solution set ``VS`` and
a remaining candidate set ``VA`` and branches on one candidate ``u`` at a
time: first the subtree where ``u`` joins the group, then the subtree where
``u`` is excluded (by dropping ``u`` from ``VA`` and continuing at the same
node).  Optimality relies on three ingredients:

* **Access ordering** — candidates are tried in ascending social distance,
  but a candidate is only *branched on* when the interior unfamiliarity and
  exterior expansibility conditions hold; failing candidates are deferred
  (the condition threshold ``θ`` is relaxed when nobody qualifies) or
  removed outright when the failure is provably permanent.
* **Distance pruning** (Lemma 2) and **acquaintance pruning** (Lemma 3) —
  sound node-level prunes based on the incumbent distance and on the inner
  degrees of the remaining candidates.
* The interior unfamiliarity condition at ``θ = 0`` *is* the acquaintance
  constraint, so every recorded solution is feasible by construction.

Two interchangeable kernels drive the inner loop (selected via
``SearchParameters.kernel``):

* ``"compiled"`` (default) — the feasible graph is mapped to dense integer
  ids (:mod:`repro.graph.compiled`); ``VS``/``VA``/deferred become int
  bitmasks, the measures become AND/popcount expressions, and the
  per-member stranger counters behind ``U``/``A`` are maintained
  *incrementally* across include/backtrack instead of being recomputed
  from scratch per candidate.
* ``"reference"`` — the original pure-Python set-based loop, kept as the
  executable specification.  Both kernels visit the identical search tree
  and produce identical results and statistics (asserted by the
  equivalence test-suite).

The solver reports rich :class:`~repro.core.result.SearchStats` so the
experiment harness can attribute speed-ups to individual strategies.
"""

from __future__ import annotations

import math
import time
from typing import Callable, Dict, List, Optional, Sequence, Set, Tuple

from ..exceptions import InfeasibleQueryError
from .context import SearchContext, record_into
from ..graph.compiled import CompiledFeasibleGraph, compile_feasible_graph
from ..graph.extraction import FeasibleGraph, extract_query_forms
from ..graph.packed import PackedAdjacency, pack_adjacency
from ..graph.social_graph import SocialGraph
from ..types import Vertex
from .ordering import (
    candidate_measures_bitset,
    expansibility_member_terms,
    exterior_expansibility,
    exterior_expansibility_condition,
    interior_unfamiliarity,
    interior_unfamiliarity_condition,
    unfamiliarity_measures_packed,
)
from .pruning import (
    acquaintance_pruning,
    acquaintance_pruning_bitset,
    acquaintance_pruning_packed,
    distance_pruning,
    distance_pruning_bitset,
)
from .query import SearchParameters, SGQuery
from .result import GroupResult, SearchStats

__all__ = ["SGSelect", "sg_select"]

#: Signature of the incumbent-recording callback shared by both kernels.
RecordFn = Callable[[Set[Vertex], float], None]

#: Cascade batching: a node whose remaining pool has at most this many
#: candidates is evaluated with the exact scalar bitset measures instead of
#: materialising whole-pool arrays.  Forced chains — the deep tails of a
#: search where pruning leaves a handful of survivors per node — then never
#: pay per-node numpy dispatch, while wide nodes take the vectorized path
#: from their first candidate.  Decisions are provably identical in either
#: lane (same integer measures, same precomputed right-hand sides), so the
#: search tree and the stats don't depend on the threshold.
LAZY_MEASURE_THRESHOLD = 4

#: Below this many candidates the numpy kernel routes the whole search to
#: the compiled bitset expansion: array setup costs more than it saves on
#: sub-millisecond egos (the cache-hot radius-1 regime), and the two
#: expansions visit the identical tree with identical stats — pinned by
#: the kernel-equivalence suite — so routing is invisible in the results.
NUMPY_MIN_CANDIDATES = 48


class SGSelect:
    """Reusable SGSelect solver bound to one social graph.

    Parameters
    ----------
    graph:
        The full social graph ``G``.
    parameters:
        Search tunables (``θ`` start value, kernel choice, and strategy
        toggles); defaults reproduce the paper's configuration on the
        compiled kernel.

    Examples
    --------
    >>> from repro.graph import SocialGraph
    >>> g = SocialGraph()
    >>> for u, v, d in [("q", "a", 1.0), ("q", "b", 2.0), ("a", "b", 1.0)]:
    ...     g.add_edge(u, v, d)
    >>> solver = SGSelect(g)
    >>> result = solver.solve(SGQuery(initiator="q", group_size=3, radius=1, acquaintance=0))
    >>> result.feasible, result.total_distance
    (True, 3.0)
    """

    def __init__(self, graph: SocialGraph, parameters: Optional[SearchParameters] = None) -> None:
        self.graph = graph
        self.parameters = parameters or SearchParameters()

    # ------------------------------------------------------------------
    # public API
    # ------------------------------------------------------------------
    def solve(
        self,
        query: SGQuery,
        on_infeasible: str = "return",
        allowed_candidates: Optional[Set[Vertex]] = None,
        feasible_graph: Optional[FeasibleGraph] = None,
        compiled_graph: Optional[CompiledFeasibleGraph] = None,
        packed_graph: Optional[PackedAdjacency] = None,
        context: Optional[SearchContext] = None,
    ) -> GroupResult:
        """Answer ``query`` and return the optimal group.

        Parameters
        ----------
        query:
            The SGQ to answer.
        on_infeasible:
            ``"return"`` (default) yields an infeasible :class:`GroupResult`;
            ``"raise"`` raises :class:`InfeasibleQueryError` instead.
        allowed_candidates:
            Optional restriction of the candidate pool (the initiator is
            always allowed).  Social distances are still measured on the full
            graph; only group membership is restricted.  This is how the
            per-period STGQ baseline reuses SGSelect without perturbing the
            distance semantics.
        feasible_graph:
            Optional pre-extracted feasible graph for
            ``(query.initiator, query.radius)``.  The caller guarantees the
            correspondence; :class:`~repro.service.QueryService` uses this to
            amortise extraction across queries sharing an ego network.
        compiled_graph:
            Optional pre-compiled bitmask form of ``feasible_graph`` (full
            candidate pool).  Ignored when ``allowed_candidates`` restricts
            the pool or the reference kernel is selected.
        packed_graph:
            Optional pre-packed ``uint64`` matrix form of ``compiled_graph``
            (numpy kernel only; same id layout required, so it is discarded
            whenever ``compiled_graph`` is).
        context:
            Optional :class:`~repro.core.context.SearchContext` this solve's
            kernel statistics are recorded into (in addition to the returned
            result).  The service layer passes its per-batch
            ``ExecutionContext`` here, so batch-scoped accounting needs no
            solver-global state.
        """
        start = time.perf_counter()
        stats = SearchStats()

        if feasible_graph is None:
            # A caller-supplied compilation is only trusted together with the
            # feasible graph it was built from (the packing rides on the
            # compilation's id layout, so it shares its fate).  On a CSR
            # graph extract_query_forms derives all three forms in one pass.
            feasible_graph, compiled_graph, packed_graph = extract_query_forms(
                self.graph, query.initiator, query.radius, self.parameters.kernel
            )
        result = self._search(
            feasible_graph,
            query,
            stats,
            incumbent=math.inf,
            allowed_candidates=allowed_candidates,
            compiled_graph=compiled_graph,
            packed_graph=packed_graph,
        )
        stats.elapsed_seconds = time.perf_counter() - start
        record_into(context, stats)

        if result is None:
            final = GroupResult.infeasible(solver="SGSelect", stats=stats)
            if on_infeasible == "raise":
                raise InfeasibleQueryError(f"no feasible group for {query.describe()}")
            return final
        members, total = result
        return GroupResult(
            feasible=True,
            members=frozenset(members),
            total_distance=total,
            solver="SGSelect",
            stats=stats,
        )

    # ------------------------------------------------------------------
    # search
    # ------------------------------------------------------------------
    def _search(
        self,
        feasible_graph: FeasibleGraph,
        query: SGQuery,
        stats: SearchStats,
        incumbent: float,
        allowed_candidates: Optional[Set[Vertex]] = None,
        compiled_graph: Optional[CompiledFeasibleGraph] = None,
        packed_graph: Optional[PackedAdjacency] = None,
    ) -> Optional[Tuple[Set[Vertex], float]]:
        """Run the branch-and-bound over the feasible graph.

        Returns the optimal ``(members, total_distance)`` or ``None`` when no
        feasible group exists.  ``incumbent`` seeds the distance-pruning bound
        (used by STGSelect to share the bound across pivot slots).
        """
        q = query.initiator
        p = query.group_size
        if p == 1:
            return {q}, 0.0
        candidates = feasible_graph.candidates
        if allowed_candidates is not None:
            candidates = [v for v in candidates if v in allowed_candidates]
            # A restricted pool invalidates a full-pool compilation (and the
            # packing built on its id layout).
            compiled_graph = None
            packed_graph = None
        if len(candidates) < p - 1:
            return None

        best: Dict[str, object] = {"distance": incumbent, "members": None}

        def record(members, total: float) -> None:
            """Single incumbent-update path shared by both kernels."""
            if total < best["distance"]:  # type: ignore[operator]
                best["distance"] = total
                best["members"] = set(members)
                stats.solutions_found += 1

        kernel = self.parameters.kernel
        if kernel != "reference":
            compiled = compiled_graph or compile_feasible_graph(feasible_graph, candidates)
            strangers = [0] * len(compiled)
            if kernel == "numpy" and compiled.candidate_count >= NUMPY_MIN_CANDIDATES:
                packed = packed_graph or pack_adjacency(compiled)
                self._expand_numpy(
                    compiled=compiled,
                    packed=packed,
                    query=query,
                    members_mask=1,
                    member_ids=[0],
                    strangers=strangers,
                    remaining_mask=compiled.candidate_mask,
                    current_distance=0.0,
                    record=record,
                    best=best,
                    stats=stats,
                )
            else:
                self._expand_bitset(
                    compiled=compiled,
                    query=query,
                    members_mask=1,
                    member_ids=[0],
                    strangers=strangers,
                    remaining_mask=compiled.candidate_mask,
                    current_distance=0.0,
                    record=record,
                    best=best,
                    stats=stats,
                )
        else:
            self._expand(
                graph=feasible_graph.graph,
                distances=feasible_graph.distances,
                query=query,
                members=[q],
                members_set={q},
                remaining=list(candidates),
                current_distance=0.0,
                record=record,
                best=best,
                stats=stats,
            )

        if best["members"] is None:
            return None
        return best["members"], float(best["distance"])  # type: ignore[arg-type]

    # ------------------------------------------------------------------
    # compiled kernel
    # ------------------------------------------------------------------
    def _expand_bitset(
        self,
        compiled: CompiledFeasibleGraph,
        query: SGQuery,
        members_mask: int,
        member_ids: List[int],
        strangers: List[int],
        remaining_mask: int,
        current_distance: float,
        record: RecordFn,
        best: Dict[str, object],
        stats: SearchStats,
    ) -> None:
        """Explore one node of the set-enumeration tree (bitset state).

        ``strangers[v]`` holds ``|VS - {v} - N_v|`` for every id in
        ``member_ids`` and is maintained incrementally around the include
        branch instead of being recomputed per candidate.
        """
        params = self.parameters
        p = query.group_size
        k = query.acquaintance
        adj = compiled.adj
        dist = compiled.dist
        stats.nodes_expanded += 1

        theta = params.theta if params.use_access_ordering else 0
        deferred_mask = 0
        members_count = len(member_ids)

        while True:
            if members_count == p:
                record(compiled.members_of(members_mask), current_distance)
                return
            if members_count + remaining_mask.bit_count() < p:
                return

            # --- node-level pruning -----------------------------------
            if params.use_distance_pruning and distance_pruning_bitset(
                incumbent_distance=best["distance"],  # type: ignore[arg-type]
                current_distance=current_distance,
                members_count=members_count,
                group_size=p,
                remaining_mask=remaining_mask,
                dist=dist,
            ):
                stats.distance_prunes += 1
                return
            if params.use_acquaintance_pruning and acquaintance_pruning_bitset(
                adj=adj,
                remaining_mask=remaining_mask,
                members_count=members_count,
                group_size=p,
                acquaintance=k,
            ):
                stats.acquaintance_prunes += 1
                return

            # --- candidate selection (access ordering) ----------------
            selected = -1
            while selected < 0:
                open_mask = remaining_mask & ~deferred_mask
                if not open_mask:
                    if theta > 0:
                        theta -= 1
                        deferred_mask = 0
                        continue
                    # θ exhausted and every remaining candidate deferred or
                    # removed: nothing left to branch on at this node.
                    return
                # Ids follow the access order, so the lowest set bit is the
                # unvisited candidate with the smallest social distance.
                candidate = (open_mask & -open_mask).bit_length() - 1
                stats.candidates_considered += 1

                new_size = members_count + 1
                cand_bit = 1 << candidate
                trial_remaining = remaining_mask & ~cand_bit
                unfam, expans = candidate_measures_bitset(
                    adj, member_ids, strangers, members_mask, trial_remaining, candidate, k
                )
                if not exterior_expansibility_condition(expans, new_size, p):
                    # Lemma 1: this candidate can never complete the group.
                    remaining_mask &= ~cand_bit
                    deferred_mask &= ~cand_bit
                    stats.expansibility_removals += 1
                    continue
                if not interior_unfamiliarity_condition(unfam, new_size, p, k, theta):
                    if theta == 0:
                        # The expanded set already violates the acquaintance
                        # constraint; adding more members can only make it worse.
                        remaining_mask &= ~cand_bit
                        deferred_mask &= ~cand_bit
                        stats.unfamiliarity_removals += 1
                    else:
                        deferred_mask |= cand_bit
                    continue
                selected = candidate

            # --- branch 1: include ``selected`` -----------------------
            sel_bit = 1 << selected
            sel_adj = adj[selected]
            strangers[selected] = (members_mask & ~sel_adj).bit_count()
            for v in member_ids:
                if not sel_adj >> v & 1:
                    strangers[v] += 1
            member_ids.append(selected)
            self._expand_bitset(
                compiled=compiled,
                query=query,
                members_mask=members_mask | sel_bit,
                member_ids=member_ids,
                strangers=strangers,
                remaining_mask=remaining_mask & ~sel_bit,
                current_distance=current_distance + dist[selected],
                record=record,
                best=best,
                stats=stats,
            )
            member_ids.pop()
            for v in member_ids:
                if not sel_adj >> v & 1:
                    strangers[v] -= 1

            # --- branch 2: exclude ``selected`` and continue ----------
            remaining_mask &= ~sel_bit
            deferred_mask &= ~sel_bit

    # ------------------------------------------------------------------
    # numpy kernel
    # ------------------------------------------------------------------
    def _expand_numpy(
        self,
        compiled: CompiledFeasibleGraph,
        packed: PackedAdjacency,
        query: SGQuery,
        members_mask: int,
        member_ids: List[int],
        strangers: List[int],
        remaining_mask: int,
        current_distance: float,
        record: RecordFn,
        best: Dict[str, object],
        stats: SearchStats,
        base_counts=None,
        pending_mask: int = 0,
    ) -> None:
        """Explore one node of the set-enumeration tree (vectorized measures).

        Shares the bitset kernel's state (int masks, incrementally
        maintained ``strangers`` counters, the ``record`` callback) and its
        branching logic exactly — the difference is *how* the measures are
        evaluated.  The vectorized work happens at pool granularity; the
        per-candidate checks are plain scalar arithmetic against it:

        * ``unfam`` / ``cand_strangers`` — per-id ``U(VS ∪ {u})`` and
          ``|VS - N_u|``, one vectorized evaluation per node (they depend
          only on ``VS``, fixed for the node's lifetime), materialised as
          Python lists so each considered candidate costs two list lookups
          instead of the compiled kernel's per-candidate member loop;
        * ``base_counts`` + ``pending_mask`` — per-id ``|VA ∩ N_i|`` in
          copy-on-write form: ``base_counts`` holds the counts for a base
          pool and is *shared* down the tree (children receive the same
          array), while ``pending_mask`` accumulates the ids removed since
          the base was taken.  A removal is then one int OR; a candidate's
          current count is ``base[u] - popcount(pending & N_u)`` (one int
          AND/popcount); only Lemma 3's rare inner computation rebases the
          array (a fresh one — ancestors never see the flush);
        * ``member_terms`` / ``member_min`` — the member side of
          ``A(VS ∪ {u})`` collapses to one small int list (see
          :func:`expansibility_member_terms`), updated with plain int
          adjacency bits on each removal;
        * the conditions' right-hand sides only depend on node-fixed values
          and θ, so they are precomputed and refreshed on relaxation
          (identical expressions to the ``*_condition`` helpers, hence
          identical float decisions);
        * high-frequency counters accumulate in locals and are folded into
          ``stats`` when the node finishes — the totals a caller can
          observe are identical;
        * **cascade batching** — a node whose remaining pool holds at most
          ``LAZY_MEASURE_THRESHOLD`` candidates is measured with the exact
          scalar bitset arithmetic and never materialises an array, so the
          forced-chain tail of a search (a handful of survivors per node)
          never pays numpy dispatch at all.
        """
        params = self.parameters
        p = query.group_size
        k = query.acquaintance
        adj = compiled.adj
        dist = compiled.dist
        stats.nodes_expanded += 1

        theta = params.theta if params.use_access_ordering else 0
        deferred_mask = 0
        members_count = len(member_ids)

        cand_strangers = None  # per-id |VS - N_u| list (whole-node validity)
        unfam = None  # per-id U(VS ∪ {u}) list (whole-node validity)
        member_terms = None  # member side of A(VS ∪ {u}); tracks removals
        member_min = 0
        considered = 0
        expans_removed = 0
        unfam_removed = 0

        new_size = members_count + 1
        expans_need = p - new_size
        unfam_rhs = k * (new_size / p) ** theta

        try:
            while True:
                if members_count == p:
                    record(compiled.members_of(members_mask), current_distance)
                    return
                remaining_count = remaining_mask.bit_count()
                if members_count + remaining_count < p:
                    return

                # --- node-level pruning -----------------------------------
                if params.use_distance_pruning and distance_pruning_bitset(
                    incumbent_distance=best["distance"],  # type: ignore[arg-type]
                    current_distance=current_distance,
                    members_count=members_count,
                    group_size=p,
                    remaining_mask=remaining_mask,
                    dist=dist,
                ):
                    stats.distance_prunes += 1
                    return
                if params.use_acquaintance_pruning:
                    # Same early-outs as the helper, checked first so the
                    # (frequent) can't-fire case costs no array work.
                    needed = p - members_count
                    if needed * (needed - 1 - k) > 0 and remaining_count >= needed:
                        if base_counts is None:
                            base_counts = packed.intersect_counts(packed.row(remaining_mask))
                            pending_mask = 0
                        elif pending_mask:
                            # Rebase into a fresh array: the stale base may be
                            # shared with ancestor nodes.
                            base_counts = base_counts - packed.intersect_counts(
                                packed.row(pending_mask)
                            )
                            pending_mask = 0
                        if acquaintance_pruning_packed(
                            remaining_counts=base_counts,
                            remaining_indicator=packed.indicator(remaining_mask),
                            remaining_count=remaining_count,
                            members_count=members_count,
                            group_size=p,
                            acquaintance=k,
                        ):
                            stats.acquaintance_prunes += 1
                            return

                # --- candidate selection (access ordering) ----------------
                selected = -1
                while selected < 0:
                    open_mask = remaining_mask & ~deferred_mask
                    if not open_mask:
                        if theta > 0:
                            theta -= 1
                            unfam_rhs = k * (new_size / p) ** theta
                            deferred_mask = 0
                            continue
                        # θ exhausted and every remaining candidate deferred or
                        # removed: nothing left to branch on at this node.
                        return
                    # Ids follow the access order, so the lowest set bit is the
                    # unvisited candidate with the smallest social distance.
                    cand_bit = open_mask & -open_mask
                    candidate = cand_bit.bit_length() - 1
                    considered += 1

                    if unfam is None and remaining_mask.bit_count() <= LAZY_MEASURE_THRESHOLD:
                        # Cascade-batching scalar lane: a nearly-empty pool
                        # (the forced-chain tail of the search) is measured
                        # with the exact bitset arithmetic, so those nodes
                        # never pay the whole-pool materialisation.  The
                        # ints are identical to the array path's (the
                        # adjacency bit in the member terms cancels either
                        # way), hence identical decisions, tree, counters.
                        u_val, e_val = candidate_measures_bitset(
                            adj,
                            member_ids,
                            strangers,
                            members_mask,
                            remaining_mask & ~cand_bit,
                            candidate,
                            k,
                        )
                        if e_val < expans_need:
                            expans_removed += 1
                        elif u_val > unfam_rhs:
                            if theta == 0:
                                unfam_removed += 1
                            else:
                                deferred_mask |= cand_bit
                                continue
                        else:
                            selected = candidate
                            continue
                        # Removal without arrays: ``member_terms`` is still
                        # None (it materialises together with ``unfam``), and
                        # pending bits are harmless while ``base_counts`` is
                        # None — every materialisation site resets them.
                        remaining_mask &= ~cand_bit
                        deferred_mask &= ~cand_bit
                        pending_mask |= cand_bit
                        continue

                    if unfam is None:
                        cs_arr, unfam_arr = unfamiliarity_measures_packed(
                            packed, member_ids, strangers, members_mask
                        )
                        cand_strangers = cs_arr.tolist()
                        unfam = unfam_arr.tolist()
                    if base_counts is None:
                        base_counts = packed.intersect_counts(packed.row(remaining_mask))
                        pending_mask = 0
                    if member_terms is None:
                        member_terms = expansibility_member_terms(
                            base_counts, member_ids, strangers, k, adj, pending_mask
                        )
                        member_min = min(member_terms)

                    cand_adj = adj[candidate]
                    expans = int(base_counts[candidate]) + k - cand_strangers[candidate]
                    if pending_mask:
                        expans -= (pending_mask & cand_adj).bit_count()
                    if member_min < expans:
                        expans = member_min
                    if expans < expans_need:
                        # Lemma 1: this candidate can never complete the group.
                        expans_removed += 1
                    elif unfam[candidate] > unfam_rhs:
                        if theta == 0:
                            # The expanded set already violates the acquaintance
                            # constraint; adding more members can only worsen it.
                            unfam_removed += 1
                        else:
                            deferred_mask |= cand_bit
                            continue
                    else:
                        selected = candidate
                        continue
                    # Drop ``candidate`` from the pool: one bit into the
                    # pending batch, plus the int updates that keep the
                    # member terms exact.
                    remaining_mask &= ~cand_bit
                    deferred_mask &= ~cand_bit
                    pending_mask |= cand_bit
                    for j, v in enumerate(member_ids):
                        member_terms[j] -= cand_adj >> v & 1
                    member_min = min(member_terms)

                # --- branch 1: include ``selected`` -----------------------
                sel_bit = 1 << selected
                sel_adj = adj[selected]
                strangers[selected] = (members_mask & ~sel_adj).bit_count()
                for v in member_ids:
                    if not sel_adj >> v & 1:
                        strangers[v] += 1
                member_ids.append(selected)
                self._expand_numpy(
                    compiled=compiled,
                    packed=packed,
                    query=query,
                    members_mask=members_mask | sel_bit,
                    member_ids=member_ids,
                    strangers=strangers,
                    remaining_mask=remaining_mask & ~sel_bit,
                    current_distance=current_distance + dist[selected],
                    record=record,
                    best=best,
                    stats=stats,
                    # Copy-on-write: the child shares this base array and
                    # extends the pending batch with ``selected`` (no
                    # self-loops, so the id's own count needs no fix-up).
                    base_counts=base_counts,
                    pending_mask=pending_mask | sel_bit,
                )
                member_ids.pop()
                for v in member_ids:
                    if not sel_adj >> v & 1:
                        strangers[v] -= 1

                # --- branch 2: exclude ``selected`` and continue ----------
                # ``member_terms`` may still be None when ``selected`` came
                # from the scalar cascade lane; it materialises (reflecting
                # every pending removal) the first time the array path runs.
                remaining_mask &= ~sel_bit
                deferred_mask &= ~sel_bit
                pending_mask |= sel_bit
                if member_terms is not None:
                    for j, v in enumerate(member_ids):
                        member_terms[j] -= sel_adj >> v & 1
                    member_min = min(member_terms)
        finally:
            stats.candidates_considered += considered
            stats.expansibility_removals += expans_removed
            stats.unfamiliarity_removals += unfam_removed

    # ------------------------------------------------------------------
    # reference kernel
    # ------------------------------------------------------------------
    def _expand(
        self,
        graph: SocialGraph,
        distances,
        query: SGQuery,
        members: List[Vertex],
        members_set: Set[Vertex],
        remaining: List[Vertex],
        current_distance: float,
        record: RecordFn,
        best: Dict[str, object],
        stats: SearchStats,
    ) -> None:
        """Explore one node of the set-enumeration tree (reference state)."""
        params = self.parameters
        p = query.group_size
        k = query.acquaintance
        stats.nodes_expanded += 1

        # ``remaining`` is owned by this node (each recursion copies it), so
        # in-place removal is safe and keeps the exclude branch cheap.
        theta = params.theta if params.use_access_ordering else 0
        deferred: Set[Vertex] = set()

        while True:
            if len(members_set) == p:
                record(members_set, current_distance)
                return
            if len(members_set) + len(remaining) < p:
                return

            # --- node-level pruning -----------------------------------
            if params.use_distance_pruning and distance_pruning(
                incumbent_distance=best["distance"],  # type: ignore[arg-type]
                current_distance=current_distance,
                members_count=len(members_set),
                group_size=p,
                remaining_distances=(distances[v] for v in remaining),
            ):
                stats.distance_prunes += 1
                return
            if params.use_acquaintance_pruning and acquaintance_pruning(
                graph=graph,
                remaining=remaining,
                members_count=len(members_set),
                group_size=p,
                acquaintance=k,
            ):
                stats.acquaintance_prunes += 1
                return

            # --- candidate selection (access ordering) ----------------
            selected = None
            while selected is None:
                candidate = self._next_unvisited(remaining, deferred, distances)
                if candidate is None:
                    if theta > 0:
                        theta -= 1
                        deferred.clear()
                        continue
                    # θ exhausted and every remaining candidate deferred or
                    # removed: nothing left to branch on at this node.
                    return
                stats.candidates_considered += 1

                new_size = len(members_set) + 1
                trial_remaining = [v for v in remaining if v != candidate]
                expans = exterior_expansibility(
                    graph, list(members_set) + [candidate], trial_remaining, k
                )
                if not exterior_expansibility_condition(expans, new_size, p):
                    # Lemma 1: this candidate can never complete the group.
                    remaining.remove(candidate)
                    deferred.discard(candidate)
                    stats.expansibility_removals += 1
                    continue

                unfam = interior_unfamiliarity(graph, list(members_set) + [candidate])
                if not interior_unfamiliarity_condition(unfam, new_size, p, k, theta):
                    if theta == 0:
                        # The expanded set already violates the acquaintance
                        # constraint; adding more members can only make it worse.
                        remaining.remove(candidate)
                        deferred.discard(candidate)
                        stats.unfamiliarity_removals += 1
                    else:
                        deferred.add(candidate)
                    continue
                selected = candidate

            # --- branch 1: include ``selected`` -----------------------
            child_remaining = [v for v in remaining if v != selected]
            members.append(selected)
            members_set.add(selected)
            self._expand(
                graph=graph,
                distances=distances,
                query=query,
                members=members,
                members_set=members_set,
                remaining=child_remaining,
                current_distance=current_distance + distances[selected],
                record=record,
                best=best,
                stats=stats,
            )
            members.pop()
            members_set.discard(selected)

            # --- branch 2: exclude ``selected`` and continue ----------
            remaining.remove(selected)
            deferred.discard(selected)

    @staticmethod
    def _next_unvisited(
        remaining: Sequence[Vertex], deferred: Set[Vertex], distances
    ) -> Optional[Vertex]:
        """Return the unvisited candidate with the smallest social distance."""
        best_v = None
        best_d = math.inf
        for v in remaining:
            if v in deferred:
                continue
            d = distances[v]
            if d < best_d:
                best_d = d
                best_v = v
        return best_v


def sg_select(
    graph: SocialGraph,
    initiator: Vertex,
    group_size: int,
    radius: int,
    acquaintance: int,
    parameters: Optional[SearchParameters] = None,
) -> GroupResult:
    """Convenience wrapper: build the query and run :class:`SGSelect` once."""
    query = SGQuery(
        initiator=initiator, group_size=group_size, radius=radius, acquaintance=acquaintance
    )
    return SGSelect(graph, parameters).solve(query)
