"""High-level IP solvers for SGQ and STGQ.

These wrap the model builders and MILP backends into the same result types
the combinatorial algorithms return, so the experiment harness and tests can
treat "IP" as just another solver (as the paper's Figures 1(a) and 1(d) do).
"""

from __future__ import annotations

import time
from typing import Dict, Optional

from ...exceptions import SolverError
from ...graph.social_graph import SocialGraph
from ...temporal.calendars import CalendarStore
from ...temporal.slots import SlotRange
from ...types import Vertex
from ..query import SGQuery, STGQuery
from ..result import GroupResult, STGroupResult, SearchStats
from .branch_bound import solve_with_branch_bound
from .model import MILPModel, build_sgq_model, build_stgq_model
from .scipy_backend import MILPSolution, solve_with_scipy

__all__ = ["IPSolver", "solve_sgq_ip", "solve_stgq_ip"]

_SELECTION_TOL = 0.5


class IPSolver:
    """Solve SGQ / STGQ through the Integer Programming formulation.

    Parameters
    ----------
    formulation:
        ``"compact"`` (default) or ``"full"`` — see
        :mod:`repro.core.ip.model`.
    backend:
        ``"scipy"`` (HiGHS MILP, default) or ``"branch-bound"`` (the pure
        Python fallback).
    time_limit:
        Optional time limit in seconds (scipy backend only).
    """

    def __init__(
        self,
        formulation: str = "compact",
        backend: str = "scipy",
        time_limit: Optional[float] = None,
    ) -> None:
        if backend not in ("scipy", "branch-bound"):
            raise SolverError(f"backend must be 'scipy' or 'branch-bound', got {backend!r}")
        self.formulation = formulation
        self.backend = backend
        self.time_limit = time_limit

    # ------------------------------------------------------------------
    def solve_sgq(self, graph: SocialGraph, query: SGQuery) -> GroupResult:
        """Answer an SGQ through the IP model."""
        start = time.perf_counter()
        model = build_sgq_model(graph, query, formulation=self.formulation)
        solution = self._dispatch(model)
        stats = SearchStats(elapsed_seconds=time.perf_counter() - start)
        solver_name = f"IP({self.formulation},{self.backend})"
        if not solution.optimal:
            return GroupResult.infeasible(solver=solver_name, stats=stats)
        members = self._selected_members(model, solution)
        return GroupResult(
            feasible=True,
            members=frozenset(members),
            total_distance=float(solution.objective),
            solver=solver_name,
            stats=stats,
        )

    def solve_stgq(
        self, graph: SocialGraph, calendars: CalendarStore, query: STGQuery
    ) -> STGroupResult:
        """Answer an STGQ through the IP model."""
        start = time.perf_counter()
        model = build_stgq_model(graph, calendars, query, formulation=self.formulation)
        solution = self._dispatch(model)
        stats = SearchStats(elapsed_seconds=time.perf_counter() - start)
        solver_name = f"IP({self.formulation},{self.backend})"
        if not solution.optimal:
            return STGroupResult.infeasible(solver=solver_name, stats=stats)
        members = self._selected_members(model, solution)
        period = self._selected_period(model, solution, query.activity_length)
        return STGroupResult(
            feasible=True,
            members=frozenset(members),
            total_distance=float(solution.objective),
            period=period,
            pivot=None,
            shared_slots=period,
            solver=solver_name,
            stats=stats,
        )

    # ------------------------------------------------------------------
    def _dispatch(self, model: MILPModel) -> MILPSolution:
        if self.backend == "scipy":
            return solve_with_scipy(model, time_limit=self.time_limit)
        return solve_with_branch_bound(model)

    @staticmethod
    def _selected_members(model: MILPModel, solution: MILPSolution):
        phi: Dict[Vertex, int] = model.metadata["phi"]  # type: ignore[assignment]
        return [u for u, idx in phi.items() if solution.value_of(idx) > _SELECTION_TOL]

    @staticmethod
    def _selected_period(
        model: MILPModel, solution: MILPSolution, activity_length: int
    ) -> Optional[SlotRange]:
        tau: Dict[int, int] = model.metadata.get("tau", {})  # type: ignore[assignment]
        for t, idx in tau.items():
            if solution.value_of(idx) > _SELECTION_TOL:
                return SlotRange(t, t + activity_length - 1)
        return None


def solve_sgq_ip(
    graph: SocialGraph,
    initiator: Vertex,
    group_size: int,
    radius: int,
    acquaintance: int,
    formulation: str = "compact",
    backend: str = "scipy",
) -> GroupResult:
    """Convenience wrapper: build the SGQ and solve it through the IP model."""
    query = SGQuery(
        initiator=initiator, group_size=group_size, radius=radius, acquaintance=acquaintance
    )
    return IPSolver(formulation=formulation, backend=backend).solve_sgq(graph, query)


def solve_stgq_ip(
    graph: SocialGraph,
    calendars: CalendarStore,
    initiator: Vertex,
    group_size: int,
    radius: int,
    acquaintance: int,
    activity_length: int,
    formulation: str = "compact",
    backend: str = "scipy",
) -> STGroupResult:
    """Convenience wrapper: build the STGQ and solve it through the IP model."""
    query = STGQuery(
        initiator=initiator,
        group_size=group_size,
        radius=radius,
        acquaintance=acquaintance,
        activity_length=activity_length,
    )
    return IPSolver(formulation=formulation, backend=backend).solve_stgq(graph, calendars, query)
