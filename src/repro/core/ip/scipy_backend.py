"""MILP backend built on ``scipy.optimize.milp`` (HiGHS).

The paper solved its Appendix-D model with CPLEX.  CPLEX is proprietary and
unavailable here, so the reproduction substitutes the open-source HiGHS
solver shipped with SciPy; the comparison role ("a general-purpose IP
optimizer solving the same model") is preserved.  See DESIGN.md §4.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional

try:  # numpy arrives with scipy; both are optional for the MILP comparison.
    import numpy as np
except ImportError:  # pragma: no cover - exercised by the no-numpy CI leg
    np = None

from ...exceptions import SolverError
from .model import MILPModel

__all__ = ["MILPSolution", "solve_with_scipy"]


@dataclass(frozen=True)
class MILPSolution:
    """Solution of a :class:`~repro.core.ip.model.MILPModel`.

    Attributes
    ----------
    status:
        ``"optimal"``, ``"infeasible"`` or ``"error"``.
    objective:
        Objective value (``math.inf`` when not optimal).
    values:
        Variable values indexed like the model's variables (empty when not
        optimal).
    message:
        Backend-specific status message.
    """

    status: str
    objective: float
    values: List[float]
    message: str = ""

    @property
    def optimal(self) -> bool:
        """``True`` when an optimal solution was found."""
        return self.status == "optimal"

    def value_of(self, index: int) -> float:
        """Value of variable ``index`` (0.0 when not optimal)."""
        if not self.optimal:
            return 0.0
        return self.values[index]


def solve_with_scipy(model: MILPModel, time_limit: Optional[float] = None) -> MILPSolution:
    """Solve ``model`` with ``scipy.optimize.milp``.

    Parameters
    ----------
    model:
        The MILP to solve.
    time_limit:
        Optional wall-clock limit in seconds passed to HiGHS.
    """
    try:
        from scipy.optimize import Bounds, LinearConstraint, milp
        from scipy.sparse import csr_matrix
    except ImportError as exc:  # pragma: no cover - scipy is a hard dependency
        raise SolverError("scipy is required for the MILP backend") from exc

    n = model.num_vars
    if n == 0:
        return MILPSolution(status="optimal", objective=0.0, values=[], message="empty model")

    c = np.asarray(model.objective, dtype=float)
    integrality = np.asarray(model.integrality, dtype=int)
    bounds = Bounds(np.asarray(model.lower_bounds, dtype=float), np.asarray(model.upper_bounds, dtype=float))

    rows: List[int] = []
    cols: List[int] = []
    data: List[float] = []
    lower: List[float] = []
    upper: List[float] = []
    for i, spec in enumerate(model.constraints):
        for j, coef in spec.coeffs.items():
            rows.append(i)
            cols.append(j)
            data.append(coef)
        lower.append(spec.lower)
        upper.append(spec.upper)

    constraints = None
    if model.constraints:
        matrix = csr_matrix((data, (rows, cols)), shape=(len(model.constraints), n))
        constraints = LinearConstraint(matrix, np.asarray(lower), np.asarray(upper))

    options: Dict[str, object] = {}
    if time_limit is not None:
        options["time_limit"] = float(time_limit)

    result = milp(
        c=c,
        constraints=constraints,
        integrality=integrality,
        bounds=bounds,
        options=options or None,
    )

    if result.status == 0 and result.x is not None:
        return MILPSolution(
            status="optimal",
            objective=float(result.fun),
            values=[float(x) for x in result.x],
            message=str(result.message),
        )
    if result.status == 2:
        return MILPSolution(status="infeasible", objective=math.inf, values=[], message=str(result.message))
    return MILPSolution(status="error", objective=math.inf, values=[], message=str(result.message))
