"""Integer Programming formulation of STGQ / SGQ (paper Appendix D).

The paper formulates STGQ as an Integer Program and solves it with CPLEX as
one of the comparison points in Figures 1(a) and 1(d).  This module builds
the same model over a generic MILP description (:class:`MILPModel`) that the
backends in :mod:`repro.core.ip.scipy_backend` and
:mod:`repro.core.ip.branch_bound` can solve.

Two formulations are provided:

* ``"full"`` — the verbatim Appendix-D model with per-attendee path (flow)
  variables ``pi_{u,i,j}`` and distance variables ``delta_u``; constraints
  (1)–(10) are reproduced one-to-one.  Its size grows as
  ``O(|V| * |E| + |V| * T)``, so it is practical only for small feasible
  graphs — exactly the regime in which the paper reports IP being slower
  than SGSelect.
* ``"compact"`` — an equivalent model that exploits the fact that the
  ``s``-edge-bounded distances ``d_{u,q}`` can be precomputed in polynomial
  time: binary selection variables only, objective ``sum_u d_u phi_u``,
  constraints (1), (2), (3), (9), (10).  Used when the caller just wants the
  optimal answer from a MILP solver quickly.

Both produce optimal solutions; the test-suite cross-checks them against
each other and against SGSelect / STGSelect.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Tuple

from ...exceptions import SolverError
from ...graph.extraction import FeasibleGraph, extract_feasible_graph
from ...graph.social_graph import SocialGraph
from ...temporal.calendars import CalendarStore
from ...types import Vertex
from ..query import SGQuery, STGQuery

__all__ = ["LinearConstraintSpec", "MILPModel", "build_sgq_model", "build_stgq_model"]


@dataclass(frozen=True)
class LinearConstraintSpec:
    """One linear constraint ``lb <= sum_j coeffs[j] * x_j <= ub``."""

    coeffs: Mapping[int, float]
    lower: float
    upper: float
    name: str = ""


@dataclass
class MILPModel:
    """A mixed-integer linear program in generic form.

    Variables are indexed ``0 .. num_vars - 1``; ``integrality[j]`` is 1 for
    integer (here: binary) variables and 0 for continuous ones.  The
    objective is always minimised.
    """

    objective: List[float] = field(default_factory=list)
    integrality: List[int] = field(default_factory=list)
    lower_bounds: List[float] = field(default_factory=list)
    upper_bounds: List[float] = field(default_factory=list)
    constraints: List[LinearConstraintSpec] = field(default_factory=list)
    variable_names: List[str] = field(default_factory=list)
    metadata: Dict[str, object] = field(default_factory=dict)

    @property
    def num_vars(self) -> int:
        """Number of decision variables."""
        return len(self.objective)

    @property
    def num_constraints(self) -> int:
        """Number of linear constraints."""
        return len(self.constraints)

    def add_variable(
        self,
        name: str,
        cost: float = 0.0,
        is_integer: bool = True,
        lower: float = 0.0,
        upper: float = 1.0,
    ) -> int:
        """Add a variable and return its index."""
        self.objective.append(float(cost))
        self.integrality.append(1 if is_integer else 0)
        self.lower_bounds.append(float(lower))
        self.upper_bounds.append(float(upper))
        self.variable_names.append(name)
        return len(self.objective) - 1

    def add_constraint(
        self,
        coeffs: Mapping[int, float],
        lower: float = -math.inf,
        upper: float = math.inf,
        name: str = "",
    ) -> None:
        """Add a linear constraint with the given bounds."""
        if lower == -math.inf and upper == math.inf:
            raise SolverError(f"constraint {name!r} has no finite bound")
        self.constraints.append(
            LinearConstraintSpec(coeffs=dict(coeffs), lower=lower, upper=upper, name=name)
        )

    def variable_index(self, name: str) -> int:
        """Look up a variable index by name (linear scan; intended for tests)."""
        try:
            return self.variable_names.index(name)
        except ValueError:
            raise SolverError(f"unknown variable {name!r}") from None


# ----------------------------------------------------------------------
# model builders
# ----------------------------------------------------------------------
def build_sgq_model(
    graph: SocialGraph,
    query: SGQuery,
    formulation: str = "compact",
) -> MILPModel:
    """Build the IP model for an SGQ (no temporal constraints).

    Equivalent to the STGQ model with constraints (9) and (10) discarded, as
    described in Appendix D.
    """
    return _build_model(graph, query, calendars=None, activity_length=None, formulation=formulation)


def build_stgq_model(
    graph: SocialGraph,
    calendars: CalendarStore,
    query: STGQuery,
    formulation: str = "compact",
) -> MILPModel:
    """Build the IP model for an STGQ including the availability constraints."""
    return _build_model(
        graph,
        query.social_part(),
        calendars=calendars,
        activity_length=query.activity_length,
        formulation=formulation,
    )


def _build_model(
    graph: SocialGraph,
    sg_query: SGQuery,
    calendars: Optional[CalendarStore],
    activity_length: Optional[int],
    formulation: str,
) -> MILPModel:
    if formulation not in ("compact", "full"):
        raise SolverError(f"formulation must be 'compact' or 'full', got {formulation!r}")

    feasible = extract_feasible_graph(graph, sg_query.initiator, sg_query.radius)
    model = MILPModel()
    model.metadata["formulation"] = formulation
    model.metadata["initiator"] = sg_query.initiator
    model.metadata["vertices"] = list(feasible.graph.vertices())

    phi = _add_selection_variables(model, feasible, formulation)
    _add_group_constraints(model, feasible, sg_query, phi)
    if formulation == "full":
        _add_path_constraints(model, feasible, sg_query, phi)
    if calendars is not None and activity_length is not None:
        _add_temporal_constraints(model, feasible, calendars, activity_length, phi)
    return model


def _add_selection_variables(
    model: MILPModel, feasible: FeasibleGraph, formulation: str
) -> Dict[Vertex, int]:
    """Create the binary selection variable ``phi_u`` for every feasible vertex.

    In the compact formulation the precomputed distance is the objective
    coefficient; in the full formulation the objective lives on the
    ``delta_u`` variables added later.
    """
    phi: Dict[Vertex, int] = {}
    for u in feasible.graph.vertices():
        cost = feasible.distances[u] if formulation == "compact" else 0.0
        phi[u] = model.add_variable(f"phi[{u!r}]", cost=cost, is_integer=True)
    model.metadata["phi"] = phi
    return phi


def _add_group_constraints(
    model: MILPModel, feasible: FeasibleGraph, query: SGQuery, phi: Dict[Vertex, int]
) -> None:
    """Constraints (1)-(3): group size, initiator membership, acquaintance."""
    q = query.initiator
    p = query.group_size
    k = query.acquaintance
    graph = feasible.graph

    # (1) exactly p attendees
    model.add_constraint({idx: 1.0 for idx in phi.values()}, lower=p, upper=p, name="group-size")
    # (2) the initiator attends
    model.add_constraint({phi[q]: 1.0}, lower=1.0, upper=1.0, name="initiator")
    # (3) acquaintance: sum_{v in N_u} phi_v >= (p - 1) phi_u - k for every u
    for u in graph.vertices():
        coeffs: Dict[int, float] = {}
        for v in graph.neighbors(u):
            coeffs[phi[v]] = coeffs.get(phi[v], 0.0) + 1.0
        coeffs[phi[u]] = coeffs.get(phi[u], 0.0) - (p - 1)
        model.add_constraint(coeffs, lower=-float(k), upper=math.inf, name=f"acquaintance[{u!r}]")


def _add_path_constraints(
    model: MILPModel, feasible: FeasibleGraph, query: SGQuery, phi: Dict[Vertex, int]
) -> None:
    """Constraints (4)-(8) of the full formulation: per-attendee shortest paths.

    For every candidate ``u != q`` a unit of flow is routed from ``q`` to
    ``u`` over directed copies of the feasible graph's edges whenever
    ``phi_u = 1``; the flow's total length defines ``delta_u`` and the
    objective minimises it, so the chosen path is a shortest path with at
    most ``s`` edges.
    """
    q = query.initiator
    s = query.radius
    graph = feasible.graph
    vertices = graph.vertices()
    undirected = graph.edges()
    directed: List[Tuple[Vertex, Vertex, float]] = []
    for a, b, c in undirected:
        directed.append((a, b, c))
        directed.append((b, a, c))

    for u in vertices:
        if u == q:
            continue
        # delta_u >= 0, continuous, coefficient 1 in the objective.
        delta_idx = model.add_variable(
            f"delta[{u!r}]", cost=1.0, is_integer=False, lower=0.0, upper=math.inf
        )
        pi: Dict[Tuple[Vertex, Vertex], int] = {}
        for i, j, _c in directed:
            pi[(i, j)] = model.add_variable(f"pi[{u!r}][{i!r}->{j!r}]", cost=0.0, is_integer=True)

        # (4) flow leaves q iff u is selected
        coeffs = {pi[(q, j)]: 1.0 for j in graph.neighbors(q)}
        coeffs[phi[u]] = coeffs.get(phi[u], 0.0) - 1.0
        model.add_constraint(coeffs, lower=0.0, upper=0.0, name=f"flow-out-q[{u!r}]")

        # (5) flow enters u iff u is selected
        coeffs = {pi[(i, u)]: 1.0 for i in graph.neighbors(u)}
        coeffs[phi[u]] = coeffs.get(phi[u], 0.0) - 1.0
        model.add_constraint(coeffs, lower=0.0, upper=0.0, name=f"flow-in-u[{u!r}]")

        # (6) conservation at every other vertex
        for j in vertices:
            if j in (q, u):
                continue
            coeffs = {}
            for i in graph.neighbors(j):
                coeffs[pi[(i, j)]] = coeffs.get(pi[(i, j)], 0.0) + 1.0
                coeffs[pi[(j, i)]] = coeffs.get(pi[(j, i)], 0.0) - 1.0
            if coeffs:
                model.add_constraint(coeffs, lower=0.0, upper=0.0, name=f"flow-cons[{u!r}][{j!r}]")

        # (7) delta_u equals the length of the selected path
        coeffs = {pi[(i, j)]: c for (i, j, c) in directed}
        coeffs[delta_idx] = -1.0
        model.add_constraint(coeffs, lower=0.0, upper=0.0, name=f"distance[{u!r}]")

        # (8) the path uses at most s edges
        coeffs = {idx: 1.0 for idx in pi.values()}
        model.add_constraint(coeffs, lower=-math.inf, upper=float(s), name=f"radius[{u!r}]")


def _add_temporal_constraints(
    model: MILPModel,
    feasible: FeasibleGraph,
    calendars: CalendarStore,
    activity_length: int,
    phi: Dict[Vertex, int],
) -> None:
    """Constraints (9)-(10): activity start slot and per-attendee availability."""
    horizon = calendars.horizon
    m = activity_length
    if m > horizon:
        raise SolverError(f"activity length {m} exceeds the planning horizon {horizon}")

    tau: Dict[int, int] = {}
    for t in range(1, horizon - m + 2):
        tau[t] = model.add_variable(f"tau[{t}]", cost=0.0, is_integer=True)
    model.metadata["tau"] = tau

    # (9) exactly one start slot
    model.add_constraint({idx: 1.0 for idx in tau.values()}, lower=1.0, upper=1.0, name="start-slot")

    # (10) phi_u <= 1 - tau_t + a_{u, t_hat} for every attendee, start slot and
    # slot of the activity period; only binding when a_{u, t_hat} = 0.
    for u, phi_idx in phi.items():
        schedule = calendars.get(u)
        for t, tau_idx in tau.items():
            for t_hat in range(t, t + m):
                if schedule.is_available(t_hat):
                    continue
                model.add_constraint(
                    {phi_idx: 1.0, tau_idx: 1.0},
                    lower=-math.inf,
                    upper=1.0,
                    name=f"availability[{u!r}][{t}][{t_hat}]",
                )
