"""Integer Programming formulation of SGQ/STGQ (paper Appendix D) and the
MILP backends that solve it."""

from .branch_bound import solve_with_branch_bound
from .model import LinearConstraintSpec, MILPModel, build_sgq_model, build_stgq_model
from .scipy_backend import MILPSolution, solve_with_scipy
from .solver import IPSolver, solve_sgq_ip, solve_stgq_ip

__all__ = [
    "MILPModel",
    "LinearConstraintSpec",
    "MILPSolution",
    "build_sgq_model",
    "build_stgq_model",
    "solve_with_scipy",
    "solve_with_branch_bound",
    "IPSolver",
    "solve_sgq_ip",
    "solve_stgq_ip",
]
