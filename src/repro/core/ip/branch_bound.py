"""Pure-Python branch-and-bound MILP solver (fallback backend).

This backend exists so the Integer-Programming comparison of Figure 1 does
not depend on any particular MILP engine: it solves the same
:class:`~repro.core.ip.model.MILPModel` by classic LP-relaxation
branch-and-bound, using ``scipy.optimize.linprog`` (HiGHS LP) only for the
continuous relaxations.  It is slower than the native HiGHS MILP backend,
which is itself the point the paper makes about general-purpose optimisers —
but it is exact, and the test-suite cross-checks it against both the scipy
backend and the combinatorial algorithms on small instances.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional, Tuple

try:  # numpy arrives with scipy; both are optional for the MILP comparison.
    import numpy as np
except ImportError:  # pragma: no cover - exercised by the no-numpy CI leg
    np = None

from ...exceptions import SolverError
from .model import MILPModel
from .scipy_backend import MILPSolution

__all__ = ["solve_with_branch_bound"]

_INTEGRALITY_TOL = 1e-6
_OBJECTIVE_TOL = 1e-9


@dataclass
class _LPData:
    """Pre-assembled matrices of the LP relaxation."""

    c: np.ndarray
    a_ub: Optional[np.ndarray]
    b_ub: Optional[np.ndarray]
    a_eq: Optional[np.ndarray]
    b_eq: Optional[np.ndarray]
    lower: np.ndarray
    upper: np.ndarray
    integer_indices: List[int]


def _assemble(model: MILPModel) -> _LPData:
    n = model.num_vars
    ub_rows: List[np.ndarray] = []
    ub_rhs: List[float] = []
    eq_rows: List[np.ndarray] = []
    eq_rhs: List[float] = []
    for spec in model.constraints:
        row = np.zeros(n)
        for j, coef in spec.coeffs.items():
            row[j] += coef
        if spec.lower == spec.upper:
            eq_rows.append(row)
            eq_rhs.append(spec.lower)
            continue
        if spec.upper != math.inf:
            ub_rows.append(row)
            ub_rhs.append(spec.upper)
        if spec.lower != -math.inf:
            ub_rows.append(-row)
            ub_rhs.append(-spec.lower)
    return _LPData(
        c=np.asarray(model.objective, dtype=float),
        a_ub=np.vstack(ub_rows) if ub_rows else None,
        b_ub=np.asarray(ub_rhs) if ub_rhs else None,
        a_eq=np.vstack(eq_rows) if eq_rows else None,
        b_eq=np.asarray(eq_rhs) if eq_rhs else None,
        lower=np.asarray(model.lower_bounds, dtype=float),
        upper=np.asarray(model.upper_bounds, dtype=float),
        integer_indices=[j for j, flag in enumerate(model.integrality) if flag],
    )


def _solve_relaxation(
    data: _LPData, lower: np.ndarray, upper: np.ndarray
) -> Optional[Tuple[float, np.ndarray]]:
    """Solve the LP relaxation with the given variable bounds.

    Returns ``(objective, x)`` or ``None`` when the relaxation is infeasible.
    """
    from scipy.optimize import linprog

    bounds = list(zip(lower.tolist(), [u if u != math.inf else None for u in upper.tolist()]))
    result = linprog(
        c=data.c,
        A_ub=data.a_ub,
        b_ub=data.b_ub,
        A_eq=data.a_eq,
        b_eq=data.b_eq,
        bounds=bounds,
        method="highs",
    )
    if not result.success:
        return None
    return float(result.fun), np.asarray(result.x)


def solve_with_branch_bound(
    model: MILPModel, max_nodes: int = 100_000
) -> MILPSolution:
    """Solve ``model`` by LP-based branch-and-bound.

    Parameters
    ----------
    model:
        The MILP to solve.
    max_nodes:
        Safety cap on explored nodes; exceeding it raises
        :class:`SolverError` rather than silently returning a possibly
        sub-optimal answer.
    """
    if np is None:
        raise SolverError("numpy (via scipy) is required for the branch-bound MILP backend")
    n = model.num_vars
    if n == 0:
        return MILPSolution(status="optimal", objective=0.0, values=[], message="empty model")

    data = _assemble(model)
    best_objective = math.inf
    best_x: Optional[np.ndarray] = None
    nodes = 0

    # Depth-first stack of (lower bounds, upper bounds) pairs.
    stack: List[Tuple[np.ndarray, np.ndarray]] = [(data.lower.copy(), data.upper.copy())]

    while stack:
        nodes += 1
        if nodes > max_nodes:
            raise SolverError(f"branch-and-bound exceeded the node cap of {max_nodes}")
        lower, upper = stack.pop()
        relaxed = _solve_relaxation(data, lower, upper)
        if relaxed is None:
            continue
        objective, x = relaxed
        if objective >= best_objective - _OBJECTIVE_TOL:
            continue

        fractional = None
        worst_gap = _INTEGRALITY_TOL
        for j in data.integer_indices:
            gap = abs(x[j] - round(x[j]))
            if gap > worst_gap:
                worst_gap = gap
                fractional = j
        if fractional is None:
            # Integral solution: update the incumbent.
            if objective < best_objective - _OBJECTIVE_TOL:
                best_objective = objective
                best_x = x.copy()
            continue

        value = x[fractional]
        floor_val = math.floor(value)
        ceil_val = math.ceil(value)

        up_lower = lower.copy()
        up_lower[fractional] = ceil_val
        down_upper = upper.copy()
        down_upper[fractional] = floor_val

        # Explore the branch whose bound direction follows the relaxation
        # value first (slightly better incumbent discovery in practice).
        if value - floor_val > 0.5:
            stack.append((lower, down_upper))
            stack.append((up_lower, upper))
        else:
            stack.append((up_lower, upper))
            stack.append((lower, down_upper))

    if best_x is None:
        return MILPSolution(status="infeasible", objective=math.inf, values=[], message="no integral solution")
    rounded = best_x.copy()
    for j in data.integer_indices:
        rounded[j] = round(rounded[j])
    return MILPSolution(
        status="optimal",
        objective=float(best_objective),
        values=[float(v) for v in rounded],
        message=f"branch-and-bound explored {nodes} nodes",
    )
