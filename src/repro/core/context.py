"""Execution-scoped accounting the solvers record into.

The solvers in this package are pure with respect to observability: every
``solve`` call builds a fresh :class:`~repro.core.result.SearchStats` and
attaches it to the returned result.  That is the right contract for a
single caller, but a serving layer answering many queries concurrently
needs *scoped aggregation* — "how much kernel work did THIS batch do?" —
without reaching for service-global mutable counters (which force batches
to serialize so before/after snapshots stay exact).

:class:`SearchContext` is that scope.  A caller creates one per unit of
work (the service layer creates one per batch), passes it to any number of
``solve`` calls — possibly from several threads — and reads the merged
kernel statistics afterwards.  The solvers themselves stay stateless: they
*record into* the context they are handed and never keep one.

The service layer's :class:`~repro.service.context.ExecutionContext`
extends this with service-level counters (query counts, cache hits,
feasibility split); the core only knows about kernel statistics, so the
dependency points service → core and never back.
"""

from __future__ import annotations

import threading
from typing import Optional

from .result import SearchStats

__all__ = ["SearchContext", "record_into"]


class SearchContext:
    """Thread-safe accumulator of kernel :class:`SearchStats` across solves.

    Attributes
    ----------
    solves:
        Number of solver calls recorded into this context.
    """

    def __init__(self) -> None:
        self._search_lock = threading.Lock()
        self._search_stats = SearchStats()
        self.solves = 0

    def merge_search(self, stats: SearchStats, solves: int = 1) -> None:
        """Fold one solve's — or several already-recorded solves' — kernel
        statistics into this context.

        The solvers call this once per solve (via :func:`record_into`); the
        sharded service backends use it to re-record worker-side solves into
        the parent batch context: every result carries the exact
        ``SearchStats`` its solve recorded, so merging result stats
        parent-side reproduces what the solvers recorded worker-side.
        """
        with self._search_lock:
            self._search_stats.merge(stats)
            self.solves += solves

    def search_stats(self) -> SearchStats:
        """Copy of the merged kernel statistics recorded so far."""
        with self._search_lock:
            snapshot = SearchStats()
            snapshot.merge(self._search_stats)
            return snapshot

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}(solves={self.solves})"


def record_into(context: Optional[SearchContext], stats: SearchStats) -> None:
    """Record ``stats`` into ``context`` when one was provided.

    The one-liner every solver tail-calls, so ``context=None`` (direct
    library use, no service in sight) stays zero-overhead.
    """
    if context is not None:
        context.merge_search(stats)
