"""ActivityPlanner — the high-level user-facing API.

The paper motivates SGQ/STGQ as a value-added activity-planning service for
social networking sites and calendar tools.  :class:`ActivityPlanner` is that
service in library form: construct it once from a social graph and a
calendar store, then issue queries with plain keyword arguments.  Every
solver implemented in the package is reachable through the ``algorithm``
parameter so applications can trade optimality guarantees for speed.
"""

from __future__ import annotations

from typing import Optional, Union

from ..exceptions import QueryError
from ..graph.social_graph import SocialGraph
from ..temporal.calendars import CalendarStore
from ..types import Vertex
from .baseline import BaselineSGQ, BaselineSTGQ
from .constraints import ConstraintReport, check_sg_solution, check_stg_solution
from .heuristics import GreedySGQ, GreedySTGQ
from .ip.solver import IPSolver
from .pcarrange import PCArrange
from .query import SGQuery, STGQuery, SearchParameters
from .result import GroupResult, STGroupResult
from .sgselect import SGSelect
from .stgselect import STGSelect

__all__ = ["ActivityPlanner"]

_SG_ALGORITHMS = ("sgselect", "baseline", "ip", "greedy")
_STG_ALGORITHMS = ("stgselect", "baseline", "ip", "pcarrange", "greedy")


class ActivityPlanner:
    """Plan activities over a social graph and (optionally) a calendar store.

    Parameters
    ----------
    graph:
        The social graph; edge weights are social distances.
    calendars:
        Availability schedules.  Required for temporal queries
        (:meth:`find_group_and_time`); purely social queries
        (:meth:`find_group`) work without it.
    parameters:
        Search tunables forwarded to SGSelect / STGSelect.

    Examples
    --------
    >>> from repro.datasets import load_toy_example
    >>> dataset = load_toy_example()
    >>> planner = ActivityPlanner(dataset.graph, dataset.calendars)
    >>> result = planner.find_group(initiator="v7", group_size=4, radius=1, acquaintance=1)
    >>> result.total_distance
    62.0
    """

    def __init__(
        self,
        graph: SocialGraph,
        calendars: Optional[CalendarStore] = None,
        parameters: Optional[SearchParameters] = None,
    ) -> None:
        self.graph = graph
        self.calendars = calendars
        self.parameters = parameters or SearchParameters()

    # ------------------------------------------------------------------
    # social group query
    # ------------------------------------------------------------------
    def find_group(
        self,
        initiator: Vertex,
        group_size: int,
        radius: int = 1,
        acquaintance: int = 0,
        algorithm: str = "sgselect",
    ) -> GroupResult:
        """Answer an SGQ: the optimal group of ``group_size`` attendees.

        ``algorithm`` is one of ``"sgselect"`` (default, exact branch and
        bound), ``"baseline"`` (exhaustive enumeration), ``"ip"`` (the
        Integer Programming model) or ``"greedy"`` (fast approximate answer
        for very large ego networks).
        """
        if algorithm not in _SG_ALGORITHMS:
            raise QueryError(f"unknown SGQ algorithm {algorithm!r}; choose from {_SG_ALGORITHMS}")
        query = SGQuery(
            initiator=initiator,
            group_size=group_size,
            radius=radius,
            acquaintance=acquaintance,
        )
        if algorithm == "sgselect":
            return SGSelect(self.graph, self.parameters).solve(query)
        if algorithm == "baseline":
            return BaselineSGQ(self.graph).solve(query)
        if algorithm == "greedy":
            return GreedySGQ(self.graph).solve(query)
        return IPSolver().solve_sgq(self.graph, query)

    # ------------------------------------------------------------------
    # social-temporal group query
    # ------------------------------------------------------------------
    def find_group_and_time(
        self,
        initiator: Vertex,
        group_size: int,
        activity_length: int,
        radius: int = 1,
        acquaintance: int = 0,
        algorithm: str = "stgselect",
    ) -> STGroupResult:
        """Answer an STGQ: the optimal group plus an activity period.

        ``algorithm`` is one of ``"stgselect"`` (default), ``"baseline"``
        (per-period enumeration), ``"ip"``, ``"pcarrange"`` (the manual
        coordination heuristic; ignores the acquaintance constraint) or
        ``"greedy"`` (fast approximate answer).
        """
        if self.calendars is None:
            raise QueryError("a CalendarStore is required for social-temporal queries")
        if algorithm not in _STG_ALGORITHMS:
            raise QueryError(
                f"unknown STGQ algorithm {algorithm!r}; choose from {_STG_ALGORITHMS}"
            )
        query = STGQuery(
            initiator=initiator,
            group_size=group_size,
            radius=radius,
            acquaintance=acquaintance,
            activity_length=activity_length,
        )
        if algorithm == "stgselect":
            return STGSelect(self.graph, self.calendars, self.parameters).solve(query)
        if algorithm == "baseline":
            return BaselineSTGQ(self.graph, self.calendars, parameters=self.parameters).solve(query)
        if algorithm == "pcarrange":
            return PCArrange(self.graph, self.calendars).solve(query)
        if algorithm == "greedy":
            return GreedySTGQ(self.graph, self.calendars).solve(query)
        return IPSolver().solve_stgq(self.graph, self.calendars, query)

    # ------------------------------------------------------------------
    # verification
    # ------------------------------------------------------------------
    def verify(
        self,
        query: Union[SGQuery, STGQuery],
        result: Union[GroupResult, STGroupResult],
    ) -> ConstraintReport:
        """Independently verify a result against the graph and calendars."""
        if isinstance(query, STGQuery):
            if self.calendars is None:
                raise QueryError("a CalendarStore is required to verify temporal results")
            period = result.period if isinstance(result, STGroupResult) else None
            return check_stg_solution(self.graph, self.calendars, query, result.members, period)
        return check_sg_solution(self.graph, query, result.members)
