"""Result objects returned by the SGQ/STGQ solvers.

Every solver (SGSelect, STGSelect, the brute-force baselines, the IP model,
PCArrange) returns a :class:`GroupResult` / :class:`STGroupResult` so results
can be compared uniformly in tests and experiments.  Search statistics are
attached so the benchmark harness can report pruning effectiveness next to
wall-clock numbers.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import FrozenSet, List, Optional

from ..temporal.slots import SlotRange
from ..types import Vertex

__all__ = ["SearchStats", "GroupResult", "STGroupResult"]


@dataclass
class SearchStats:
    """Counters describing how much work a solver performed.

    Attributes
    ----------
    nodes_expanded:
        Branch-and-bound nodes visited (or candidate groups enumerated for
        brute-force solvers).
    candidates_considered:
        Vertices examined across all nodes.
    distance_prunes / acquaintance_prunes / availability_prunes:
        Number of times each pruning rule cut a subtree.
    expansibility_removals / unfamiliarity_removals / temporal_removals:
        Vertices permanently removed from a node's candidate set by the
        corresponding access-ordering condition.
    solutions_found:
        Number of times the incumbent solution was improved.
    pivots_processed:
        Pivot time slots processed (STGQ only).
    elapsed_seconds:
        Wall-clock time spent inside the solver.
    """

    nodes_expanded: int = 0
    candidates_considered: int = 0
    distance_prunes: int = 0
    acquaintance_prunes: int = 0
    availability_prunes: int = 0
    expansibility_removals: int = 0
    unfamiliarity_removals: int = 0
    temporal_removals: int = 0
    solutions_found: int = 0
    pivots_processed: int = 0
    elapsed_seconds: float = 0.0

    def merge(self, other: "SearchStats") -> None:
        """Accumulate another stats object into this one (used per pivot)."""
        self.nodes_expanded += other.nodes_expanded
        self.candidates_considered += other.candidates_considered
        self.distance_prunes += other.distance_prunes
        self.acquaintance_prunes += other.acquaintance_prunes
        self.availability_prunes += other.availability_prunes
        self.expansibility_removals += other.expansibility_removals
        self.unfamiliarity_removals += other.unfamiliarity_removals
        self.temporal_removals += other.temporal_removals
        self.solutions_found += other.solutions_found
        self.pivots_processed += other.pivots_processed
        self.elapsed_seconds += other.elapsed_seconds

    def as_dict(self) -> dict:
        """Return the counters as a plain dict (for CSV reporting)."""
        return {
            "nodes_expanded": self.nodes_expanded,
            "candidates_considered": self.candidates_considered,
            "distance_prunes": self.distance_prunes,
            "acquaintance_prunes": self.acquaintance_prunes,
            "availability_prunes": self.availability_prunes,
            "expansibility_removals": self.expansibility_removals,
            "unfamiliarity_removals": self.unfamiliarity_removals,
            "temporal_removals": self.temporal_removals,
            "solutions_found": self.solutions_found,
            "pivots_processed": self.pivots_processed,
            "elapsed_seconds": self.elapsed_seconds,
        }


@dataclass(frozen=True)
class GroupResult:
    """Result of a Social Group Query.

    Attributes
    ----------
    feasible:
        ``True`` when a group satisfying all constraints was found.
    members:
        The selected attendees (including the initiator) as a frozenset;
        empty when infeasible.
    total_distance:
        Sum of social distances from the initiator to every attendee
        (``math.inf`` when infeasible).
    solver:
        Name of the algorithm that produced the result.
    stats:
        Search statistics (optional; heuristics may leave defaults).
    """

    feasible: bool
    members: FrozenSet[Vertex]
    total_distance: float
    solver: str = ""
    stats: SearchStats = field(default_factory=SearchStats)

    @classmethod
    def infeasible(cls, solver: str = "", stats: Optional[SearchStats] = None) -> "GroupResult":
        """Construct the canonical infeasible result."""
        return cls(
            feasible=False,
            members=frozenset(),
            total_distance=math.inf,
            solver=solver,
            stats=stats or SearchStats(),
        )

    @property
    def size(self) -> int:
        """Number of attendees in the group (0 when infeasible)."""
        return len(self.members)

    def sorted_members(self) -> List[Vertex]:
        """Members sorted by their repr (stable, type-agnostic ordering)."""
        return sorted(self.members, key=repr)

    def matches(self, other: "GroupResult", tol: float = 1e-9) -> bool:
        """Two results are equivalent when both are infeasible, or both are
        feasible with the same total distance (the optimal group need not be
        unique, so membership is not compared)."""
        if self.feasible != other.feasible:
            return False
        if not self.feasible:
            return True
        return math.isclose(self.total_distance, other.total_distance, rel_tol=0, abs_tol=tol)


@dataclass(frozen=True)
class STGroupResult:
    """Result of a Social-Temporal Group Query.

    In addition to the SGQ result fields, carries the selected activity
    period (``m`` consecutive slots), the pivot slot it was anchored at, and
    the full run of slots shared by all attendees around that period.
    """

    feasible: bool
    members: FrozenSet[Vertex]
    total_distance: float
    period: Optional[SlotRange] = None
    pivot: Optional[int] = None
    shared_slots: Optional[SlotRange] = None
    solver: str = ""
    stats: SearchStats = field(default_factory=SearchStats)

    @classmethod
    def infeasible(cls, solver: str = "", stats: Optional[SearchStats] = None) -> "STGroupResult":
        """Construct the canonical infeasible result."""
        return cls(
            feasible=False,
            members=frozenset(),
            total_distance=math.inf,
            solver=solver,
            stats=stats or SearchStats(),
        )

    @property
    def size(self) -> int:
        """Number of attendees in the group (0 when infeasible)."""
        return len(self.members)

    def sorted_members(self) -> List[Vertex]:
        """Members sorted by their repr (stable, type-agnostic ordering)."""
        return sorted(self.members, key=repr)

    def social_result(self) -> GroupResult:
        """Project onto a plain :class:`GroupResult` (drops temporal fields)."""
        return GroupResult(
            feasible=self.feasible,
            members=self.members,
            total_distance=self.total_distance,
            solver=self.solver,
            stats=self.stats,
        )

    def matches(self, other: "STGroupResult", tol: float = 1e-9) -> bool:
        """Equivalence on feasibility and total distance (see GroupResult.matches)."""
        if self.feasible != other.feasible:
            return False
        if not self.feasible:
            return True
        return math.isclose(self.total_distance, other.total_distance, rel_tol=0, abs_tol=tol)
