"""repro — reproduction of "On Social-Temporal Group Query with Acquaintance
Constraint" (Yang, Chen, Lee, Chen; PVLDB 4(6), 2011).

The package provides:

* :mod:`repro.graph` — the weighted social-graph substrate (bounded
  distances, radius extraction, generators, k-plex utilities),
* :mod:`repro.temporal` — the scheduling substrate (slots, schedules,
  calendar store, pivot time slots),
* :mod:`repro.core` — the paper's algorithms: SGSelect, STGSelect, the
  brute-force baselines, the Integer Programming model, and the
  PCArrange/STGArrange quality comparison, all behind the high-level
  :class:`~repro.core.planner.ActivityPlanner`,
* :mod:`repro.datasets` — the paper's worked examples and synthetic
  stand-ins for its datasets,
* :mod:`repro.experiments` — runners that regenerate every panel of the
  paper's Figure 1.

Quickstart::

    from repro import ActivityPlanner
    from repro.datasets import generate_real_dataset

    dataset = generate_real_dataset()
    planner = ActivityPlanner(dataset.graph, dataset.calendars)
    result = planner.find_group_and_time(
        initiator=0, group_size=5, activity_length=4, radius=2, acquaintance=1
    )
    print(result.sorted_members(), result.period)
"""

from .core import (
    ActivityPlanner,
    BaselineSGQ,
    BaselineSTGQ,
    GroupResult,
    IPSolver,
    PCArrange,
    SearchParameters,
    SGQuery,
    SGSelect,
    STGArrange,
    STGroupResult,
    STGQuery,
    STGSelect,
    sg_select,
    stg_select,
)
from .exceptions import (
    DatasetError,
    GraphError,
    InfeasibleQueryError,
    QueryError,
    ReproError,
    ScheduleError,
    SolverError,
)
from .graph import SocialGraph
from .service import QueryService, ServiceStats
from .temporal import CalendarStore, Schedule, SlotRange

__version__ = "1.0.0"

__all__ = [
    "__version__",
    "ActivityPlanner",
    "SocialGraph",
    "Schedule",
    "CalendarStore",
    "SlotRange",
    "SGQuery",
    "STGQuery",
    "SearchParameters",
    "GroupResult",
    "STGroupResult",
    "SGSelect",
    "STGSelect",
    "sg_select",
    "stg_select",
    "QueryService",
    "ServiceStats",
    "BaselineSGQ",
    "BaselineSTGQ",
    "IPSolver",
    "PCArrange",
    "STGArrange",
    "ReproError",
    "GraphError",
    "ScheduleError",
    "QueryError",
    "InfeasibleQueryError",
    "SolverError",
    "DatasetError",
]
