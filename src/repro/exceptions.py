"""Exception hierarchy for the STGQ reproduction library.

All library-specific errors derive from :class:`ReproError` so callers can
catch a single base class.  The hierarchy mirrors the main failure modes of
the paper's query model: malformed graphs or schedules, invalid query
parameters, and queries that admit no feasible group.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` package."""


class GraphError(ReproError):
    """Raised when a social graph is malformed or used inconsistently."""


class VertexNotFoundError(GraphError):
    """Raised when an operation references a vertex not present in the graph."""

    def __init__(self, vertex: object) -> None:
        super().__init__(f"vertex {vertex!r} is not in the graph")
        self.vertex = vertex

    def __reduce__(self):
        # Rebuild from the vertex, not the formatted message, so the error
        # survives the worker-process round trip without double-wrapping.
        return (VertexNotFoundError, (self.vertex,))


class EdgeNotFoundError(GraphError):
    """Raised when an operation references an edge not present in the graph."""

    def __init__(self, u: object, v: object) -> None:
        super().__init__(f"edge ({u!r}, {v!r}) is not in the graph")
        self.u = u
        self.v = v

    def __reduce__(self):
        # See VertexNotFoundError.__reduce__: pickle the operands, not the
        # formatted message.
        return (EdgeNotFoundError, (self.u, self.v))


class ScheduleError(ReproError):
    """Raised when a schedule or calendar is malformed."""


class QueryError(ReproError):
    """Raised when query parameters are invalid (e.g. non-positive group size)."""


class InfeasibleQueryError(QueryError):
    """Raised (optionally) when a query has no feasible group.

    The solvers return a result object whose ``feasible`` flag is ``False``
    by default; callers who prefer exceptions can request raising behaviour
    via ``on_infeasible="raise"``.
    """


class SolverError(ReproError):
    """Raised when an optimisation backend fails (e.g. MILP solver errors)."""


class ProtocolError(ReproError):
    """Raised when a network peer violates the stgq wire protocol.

    Covers malformed or oversized frames, unexpected frame types and
    protocol-version mismatches on the socket path
    (:mod:`repro.service.net.protocol`).
    """


class WorkerUnavailableError(ReproError):
    """Raised when a remote worker cannot be reached or answer in time.

    The :class:`~repro.service.net.RemoteBackend` catches this per shard and
    degrades the affected requests to error results instead of failing the
    whole batch; it is only visible to callers using the connection layer
    directly.
    """


class DatasetError(ReproError):
    """Raised when a dataset cannot be generated or loaded."""
