"""repro.service.net — the socket-level cluster subsystem.

This package scales the service layer past one box, the step the
:class:`~repro.service.ExecutorBackend` protocol was designed for:

* :mod:`~repro.service.net.protocol` — length-framed JSON frames, a
  versioned superset of the JSONL payloads (adds ``hello``/``ping``/
  ``stats`` control frames next to ``batch`` query frames).
* :mod:`~repro.service.net.worker` — an asyncio TCP server wrapping one
  local :class:`~repro.service.QueryService` (``stgq worker --listen``).
* :mod:`~repro.service.net.remote` — :class:`RemoteBackend`, the drop-in
  executor backend that shards initiators across persistent worker
  connections through the same CRC32 :class:`~repro.service.ShardMap` the
  process backend uses, and degrades dead workers to per-request error
  results instead of failed batches.
* :mod:`~repro.service.net.cluster` — a launcher for one-command local
  clusters (``stgq cluster --workers N``): worker subprocesses plus a
  gateway service connected to them.

See ``docs/service.md`` for the full architecture page and wire-protocol
specification.
"""

from .cluster import LocalWorkerCluster, start_local_workers
from .protocol import PROTOCOL_VERSION
from .remote import RemoteBackend, parse_addresses
from .worker import WorkerServer, run_worker

__all__ = [
    "PROTOCOL_VERSION",
    "LocalWorkerCluster",
    "RemoteBackend",
    "WorkerServer",
    "parse_addresses",
    "run_worker",
    "start_local_workers",
]
