"""Length-framed JSON frames: the gateway/worker wire format.

Framing
-------
Every frame is a 4-byte big-endian unsigned length ``N`` followed by ``N``
bytes of UTF-8 JSON encoding one object.  Frames larger than
:data:`MAX_FRAME_BYTES` are rejected before any payload is read, so a
corrupt length prefix cannot make a peer allocate gigabytes.

Frame types
-----------
All frames are JSON objects with a ``"type"`` key:

``{"type": "hello", "v": 1}``
    Connection handshake, sent by the client first.  The worker answers
    with its own ``hello`` carrying the protocol version it speaks plus
    deployment facts (backend name, worker width, graph size).  A worker
    serving a packed CSR substrate additionally reports ``graph_path`` and
    ``graph_version`` (the ``.stgq`` file and its content hash), letting a
    gateway spot shards that disagree about the graph.  A version
    mismatch is answered with an ``error`` frame and the connection closes.

``{"type": "ping", "id": ...}`` / ``{"type": "pong", "id": ...}``
    Liveness probe; ``id`` is echoed verbatim.

``{"type": "cache_clear", "id": ...}``
    Drop the worker's ego-network caches; answered with ``cache_cleared``.
    May optionally carry ``graph_path`` and ``graph_version``: the worker
    then re-opens that substrate file (memory-mapped, verifying the
    version hash) before clearing, turning the invalidation into a full
    graph refresh that ships a file *reference* instead of the graph.
    Optional keys added by newer gateways are ignored by older workers, so
    this rides on protocol v1 without a version bump.

``{"type": "delta", "id": ..., "batch": {...}}``
    Live-graph replication (see ``docs/live_graph.md``): one versioned
    mutation batch (``from_version``/``to_version``/``mutations`` per
    ``MutationBatch.as_wire``).  Answered with ``{"type": "delta_result",
    "id": ..., "status": "applied"|"noop"|"gap", "invalidated": N,
    "version": V}`` — the version handshake makes retries idempotent
    (``noop``) and turns out-of-order delivery into an explicit ``gap``
    the gateway bridges with a log replay or a ``snapshot``.

``{"type": "snapshot", "id": ..., "payload": {...}}``
    Catch-up fallback when deltas cannot bridge a version gap.  The
    payload carries ``version`` plus availability overrides and either
    inline topology (``vertices``/``edges``) or — when the frame also
    carries ``graph_path``/``graph_version`` — a reference to a ``.stgq``
    substrate file the worker re-opens instead (the same reload path
    ``cache_clear`` uses).  Answered with ``{"type": "snapshot_applied",
    "id": ..., "version": V, "invalidated": N}``.

    Both mutation frames ride on protocol v1: workers that predate them
    answer ``error`` with the connection kept open, which the gateway
    surfaces as an incomplete distribution.

``{"type": "placement_update", "id": ..., "map": {...}}``
    Load-aware routing distribution (see ``docs/placement.md``): one
    versioned placement map (``PlacementMap.as_wire`` — the exact body of
    a ``placement.json`` file).  The worker stores the map for gateways to
    discover and answers ``{"type": "placement_applied", "id": ...,
    "status": "applied"|"noop", "version": V}`` — ``noop`` when it already
    holds this or a newer version, the same idempotence rule as ``delta``.
    The worker's ``hello`` and every ``batch_result`` advertise its stored
    ``placement_version`` (0 = none), so a gateway routing with an older
    map notices and fetches the new one without a restart.

``{"type": "placement_get", "id": ...}``
    Fetch the worker's stored placement map; answered with ``{"type":
    "placement", "id": ..., "version": V, "map": {...}|null}``.  Both
    placement frames ride on protocol v1 exactly like the mutation frames:
    older workers answer ``error`` with the connection kept open.

``{"type": "stats"}``
    Snapshot of the worker's service counters and cache info (plus the
    worker's stored ``placement_version`` and, when its own service routes
    by shard, a rolling ``routing`` imbalance report).

``{"type": "batch", "id": ..., "requests": [...]}``
    A batch of query requests (payloads per :mod:`repro.service.codec`).
    Answered by ``{"type": "batch_result", "id": ..., "results": [...],
    "stats_delta": {...}, "cache_size": N}`` where each result is either a
    full-fidelity :func:`~repro.service.codec.encode_result` object or
    ``{"error": "..."}`` for that request alone.

``{"type": "error", "error": "..."}``
    Sent by the worker for protocol violations (unknown frame types keep
    the connection open; framing or handshake violations close it).

Both an asyncio flavour (:func:`read_frame`/:func:`write_frame`, used by
the worker server) and a blocking-socket flavour (:func:`recv_frame`/
:func:`send_frame`, used by the gateway's worker links) are provided so
neither side has to adapt its concurrency model to the other.
"""

from __future__ import annotations

import asyncio
import json
import socket
import struct
import time
from typing import Any, Dict, Optional

from ...exceptions import ProtocolError

__all__ = [
    "MAX_FRAME_BYTES",
    "PROTOCOL_VERSION",
    "client_handshake",
    "read_frame",
    "recv_frame",
    "send_frame",
    "write_frame",
    "encode_frame",
]

#: Version of the wire protocol; bumped on incompatible frame changes.
#: Both sides send it in ``hello`` and refuse mismatched peers.
PROTOCOL_VERSION = 1

#: Upper bound on one frame (a batch of ~10k requests is still < 2 MiB).
MAX_FRAME_BYTES = 16 * 1024 * 1024

_LENGTH = struct.Struct(">I")


def encode_frame(payload: Dict[str, Any]) -> bytes:
    """Serialise one frame (length prefix + UTF-8 JSON body)."""
    body = json.dumps(payload, separators=(",", ":"), allow_nan=False).encode("utf-8")
    if len(body) > MAX_FRAME_BYTES:
        raise ProtocolError(f"frame of {len(body)} bytes exceeds {MAX_FRAME_BYTES}")
    return _LENGTH.pack(len(body)) + body


def _decode_body(body: bytes) -> Dict[str, Any]:
    try:
        payload = json.loads(body.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ProtocolError(f"frame body is not valid JSON: {exc}") from exc
    if not isinstance(payload, dict):
        raise ProtocolError(f"frame must encode a JSON object, got {type(payload).__name__}")
    return payload


def _check_length(length: int) -> None:
    if length > MAX_FRAME_BYTES:
        raise ProtocolError(f"peer announced a {length}-byte frame (max {MAX_FRAME_BYTES})")


# ----------------------------------------------------------------------
# asyncio flavour (worker server side)
# ----------------------------------------------------------------------
async def read_frame(reader: asyncio.StreamReader) -> Dict[str, Any]:
    """Read one frame; raises ``IncompleteReadError`` at EOF."""
    header = await reader.readexactly(_LENGTH.size)
    (length,) = _LENGTH.unpack(header)
    _check_length(length)
    return _decode_body(await reader.readexactly(length))


async def write_frame(writer: asyncio.StreamWriter, payload: Dict[str, Any]) -> None:
    """Write one frame and drain the transport."""
    writer.write(encode_frame(payload))
    await writer.drain()


# ----------------------------------------------------------------------
# blocking-socket flavour (gateway worker-link side)
# ----------------------------------------------------------------------
def _recv_exactly(sock: socket.socket, n: int, deadline: Optional[float] = None) -> bytes:
    chunks = []
    remaining = n
    while remaining:
        if deadline is not None:
            # The socket timeout alone is per-recv and resets on every
            # chunk, so a peer dribbling bytes could stall forever; the
            # deadline bounds the whole frame.
            left = deadline - time.monotonic()
            if left <= 0:
                raise socket.timeout("frame read deadline exceeded")
            sock.settimeout(left)
        chunk = sock.recv(remaining)
        if not chunk:
            raise ProtocolError(f"connection closed mid-frame ({n - remaining}/{n} bytes read)")
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


def recv_frame(sock: socket.socket, deadline: Optional[float] = None) -> Dict[str, Any]:
    """Read one frame from a blocking socket.

    Honours the socket's timeout per ``recv``; pass ``deadline`` (a
    ``time.monotonic()`` instant) to additionally bound the *whole* frame,
    raising ``socket.timeout`` once it passes.
    """
    (length,) = _LENGTH.unpack(_recv_exactly(sock, _LENGTH.size, deadline))
    _check_length(length)
    return _decode_body(_recv_exactly(sock, length, deadline))


def send_frame(sock: socket.socket, payload: Dict[str, Any]) -> None:
    """Write one frame to a blocking socket."""
    sock.sendall(encode_frame(payload))


def client_handshake(
    sock: socket.socket, deadline: Optional[float] = None
) -> Dict[str, Any]:
    """Send a ``hello`` and validate the worker's reply; returns its hello.

    The one client-side handshake every blocking-socket caller (gateway
    connections, ``stgq cluster`` readiness pings, ``stgq stats``) shares,
    so the version check cannot silently diverge between entry points.
    Raises :class:`ProtocolError` on a refusal, a non-hello reply, or a
    protocol-version mismatch.
    """
    send_frame(sock, {"type": "hello", "v": PROTOCOL_VERSION})
    reply = recv_frame(sock, deadline=deadline)
    if reply.get("type") == "error":
        raise ProtocolError(f"worker rejected the handshake: {reply.get('error')}")
    if reply.get("type") != "hello" or reply.get("v") != PROTOCOL_VERSION:
        raise ProtocolError(
            f"unexpected handshake reply type={reply.get('type')!r} "
            f"v={reply.get('v')!r} (expected hello v{PROTOCOL_VERSION})"
        )
    return reply
