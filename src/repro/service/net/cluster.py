"""Local cluster launcher: worker subprocesses for one-command clusters.

``stgq cluster --workers N`` (and the remote leg of
``benchmarks/bench_service.py``) needs N worker processes serving the same
seeded dataset before a gateway can connect.  :func:`start_local_workers`
spawns them with ``python -m repro worker --listen 127.0.0.1:0 ...``, reads
each worker's ``STGQ-WORKER-READY host port`` announcement off its stdout
to learn the ephemeral ports, and confirms liveness with a ``ping`` control
frame.  The returned :class:`LocalWorkerCluster` terminates the
subprocesses on ``close()`` (SIGTERM first — the workers' signal handlers
drain their services — then SIGKILL for stragglers).

This is the local, laptop-scale deployment; the same worker command behind
a k8s Service is the multi-node shape the ROADMAP points at.
"""

from __future__ import annotations

import os
import queue
import socket
import subprocess
import sys
import threading
import time
from dataclasses import dataclass, field
from typing import List, Optional

from ...exceptions import ProtocolError, WorkerUnavailableError
from .protocol import client_handshake, recv_frame, send_frame
from .remote import parse_addresses
from .worker import READY_MARKER

__all__ = ["LocalWorkerCluster", "start_local_workers"]


@dataclass
class LocalWorkerCluster:
    """Handle on a set of locally spawned worker subprocesses."""

    processes: List[subprocess.Popen] = field(default_factory=list)
    addresses: List[str] = field(default_factory=list)

    def connect_spec(self) -> str:
        """The ``--connect`` string a gateway needs (``host:p1,host:p2``)."""
        return ",".join(self.addresses)

    def close(self, timeout: float = 10.0) -> None:
        """Terminate every worker (graceful SIGTERM, then SIGKILL)."""
        for process in self.processes:
            if process.poll() is None:
                process.terminate()
        deadline = time.monotonic() + timeout
        for process in self.processes:
            remaining = max(0.1, deadline - time.monotonic())
            try:
                process.wait(timeout=remaining)
            except subprocess.TimeoutExpired:
                process.kill()
                process.wait()
            if process.stdout is not None:
                process.stdout.close()
        self.processes = []
        self.addresses = []

    def __enter__(self) -> "LocalWorkerCluster":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()


def _repro_env() -> dict:
    """Subprocess environment with the live ``repro`` package importable."""
    import repro

    package_root = os.path.dirname(os.path.dirname(os.path.abspath(repro.__file__)))
    env = os.environ.copy()
    existing = env.get("PYTHONPATH")
    env["PYTHONPATH"] = package_root if not existing else package_root + os.pathsep + existing
    return env


def _await_ready(process: subprocess.Popen, startup_timeout: float) -> str:
    """Read a worker's stdout until its READY line; returns ``host:port``.

    A daemon reader thread performs the blocking ``readline`` calls and the
    launcher waits on a queue with the deadline — the same trick as
    jsonl's ``_RequestReader``, and for the same reasons: ``select`` on the
    text wrapper misses lines already pulled into its buffer and cannot
    poll pipes at all on some platforms, while a bare ``readline`` would
    ignore ``startup_timeout`` entirely for a worker that hangs silently.
    A timed-out reader thread stays parked on ``readline`` until the
    caller's cleanup terminates the process (EOF releases it).
    """
    outcome: "queue.Queue[Optional[str]]" = queue.Queue()

    def _pump() -> None:
        assert process.stdout is not None
        try:
            for line in iter(process.stdout.readline, ""):
                parts = line.split()
                if len(parts) == 3 and parts[0] == READY_MARKER:
                    outcome.put(f"{parts[1]}:{parts[2]}")
                    return
        except (OSError, ValueError):  # pipe closed under us during cleanup
            pass
        outcome.put(None)  # EOF without a READY line

    threading.Thread(target=_pump, name="stgq-cluster-ready", daemon=True).start()
    try:
        address = outcome.get(timeout=startup_timeout)
    except queue.Empty:
        raise WorkerUnavailableError(
            f"worker did not announce readiness within {startup_timeout}s"
        ) from None
    if address is None:
        raise WorkerUnavailableError(
            f"worker process exited (code {process.poll()}) before announcing readiness"
        )
    return address


def _ping(address: str, timeout: float = 5.0) -> None:
    """Handshake + ping one worker; raises ``WorkerUnavailableError``."""
    try:
        with socket.create_connection(parse_addresses(address)[0], timeout=timeout) as sock:
            sock.settimeout(timeout)
            client_handshake(sock)
            send_frame(sock, {"type": "ping", "id": 0})
            pong = recv_frame(sock)
            if pong.get("type") != "pong":
                raise WorkerUnavailableError(f"worker {address} did not answer a ping: {pong}")
    except ProtocolError as exc:
        raise WorkerUnavailableError(f"worker {address} failed the handshake: {exc}") from exc
    except OSError as exc:
        raise WorkerUnavailableError(f"cannot reach spawned worker {address}: {exc}") from exc


def start_local_workers(
    count: int,
    people: int = 194,
    days: int = 1,
    seed: int = 42,
    backend: str = "serial",
    workers: Optional[int] = None,
    cache_size: int = 128,
    kernel: str = "compiled",
    startup_timeout: float = 120.0,
    placement: Optional[str] = None,
) -> LocalWorkerCluster:
    """Spawn ``count`` worker subprocesses serving the same seeded dataset.

    Each worker binds an ephemeral 127.0.0.1 port (``--listen 127.0.0.1:0``)
    and is pinged before this returns, so the cluster is ready for a
    gateway's :class:`~repro.service.net.RemoteBackend` immediately.  On any
    startup failure the already-spawned workers are torn down.  ``placement``
    names a ``placement.json`` file every worker pre-loads (``--placement``),
    so the fleet boots already holding the load-aware map instead of waiting
    for a ``placement_update`` push.
    """
    if count < 1:
        raise WorkerUnavailableError(f"worker count must be >= 1, got {count}")
    cluster = LocalWorkerCluster()
    command = [
        sys.executable,
        "-m",
        "repro",
        "worker",
        "--listen",
        "127.0.0.1:0",
        "--people",
        str(people),
        "--days",
        str(days),
        "--seed",
        str(seed),
        "--backend",
        backend,
        "--cache-size",
        str(cache_size),
        "--kernel",
        kernel,
    ]
    if workers is not None:
        command += ["--workers", str(workers)]
    if placement is not None:
        command += ["--placement", str(placement)]
    env = _repro_env()
    try:
        for _ in range(count):
            cluster.processes.append(
                subprocess.Popen(
                    command,
                    stdout=subprocess.PIPE,
                    env=env,
                    text=True,
                    bufsize=1,  # line buffered: the READY line arrives promptly
                )
            )
        for process in cluster.processes:
            address = _await_ready(process, startup_timeout)
            _ping(address)
            cluster.addresses.append(address)
    except BaseException:
        cluster.close()
        raise
    return cluster
