"""Asyncio TCP worker: one :class:`~repro.service.QueryService` behind a socket.

``stgq worker --listen HOST:PORT`` builds a dataset-backed service and runs
:func:`run_worker`; a gateway's :class:`~repro.service.net.RemoteBackend`
connects, handshakes and streams ``batch`` frames at it (see
:mod:`repro.service.net.protocol` for the wire format).

Batch frames are answered with full-fidelity results *plus* the stats
*delta* that batch produced.  Each batch runs under its own
:class:`~repro.service.context.ExecutionContext`, so the delta is exact by
construction — no lock, no before/after snapshot of the service totals —
and the worker interleaves batch frames from any number of gateway
connections: while one connection's batch solves on the service's executor,
the event loop keeps reading other connections, solving *their* batches,
and answering control frames.  A batch frame may set ``"stats": true`` to
additionally receive the batch's merged kernel statistics
(``SearchStats``), straight from the solvers that recorded them.

Live-graph replication (``docs/live_graph.md``) rides on the same
connection: ``delta`` frames apply versioned mutation batches — idempotent
via the version handshake in :meth:`QueryService.apply_delta` — and
``snapshot`` frames are the catch-up fallback, inline or as a ``.stgq``
file reference.

Load-aware placement (``docs/placement.md``) rides alongside it with the
same idempotence pattern: ``placement_update`` frames store a versioned
:class:`~repro.service.placement.PlacementMap` on the worker (``noop`` when
it already holds that version or newer), ``placement_get`` hands it back,
and ``hello`` / every ``batch_result`` advertise the stored version so a
gateway routing with an older map notices and catches up without a restart.
The worker itself routes nothing by the stored map — it solves whatever a
gateway sends it (every worker holds the full graph) — it is a durable,
versioned distribution point for the fleet's routing decision.
"""

from __future__ import annotations

import asyncio
import signal
import sys
from typing import Any, Dict, List, Optional, Set, TextIO, Tuple

from ...exceptions import ProtocolError, QueryError, ReproError
from ...graph.mutations import MutationBatch
from ..codec import encode_result, query_from_request, wants_stats
from ..context import ExecutionContext
from ..placement import PlacementMap
from ..query_service import Query, QueryService
from .protocol import PROTOCOL_VERSION, read_frame, write_frame

__all__ = ["WorkerServer", "run_worker", "READY_MARKER"]

#: First token of the line a worker prints once it is accepting connections;
#: the cluster launcher parses ``READY_MARKER <host> <port>`` from stdout.
READY_MARKER = "STGQ-WORKER-READY"


class WorkerServer:
    """Serve one local :class:`QueryService` over the framed TCP protocol.

    The server binds lazily in :meth:`start` (``port=0`` picks an ephemeral
    port; the bound address is available afterwards via ``host``/``port``).
    It does not own the service's lifecycle — callers close both, typically
    via :func:`run_worker`.
    """

    def __init__(
        self,
        service: QueryService,
        host: str = "127.0.0.1",
        port: int = 0,
        placement: Optional[PlacementMap] = None,
    ) -> None:
        self.service = service
        self.host = host
        self.port = port
        # Stored placement map: the worker is the fleet's durable
        # distribution point for the routing decision (docs/placement.md).
        # Kept in wire form so placement_get replies are a straight echo;
        # the version is what hello/batch_result advertise (0 = none).
        self._placement_wire: Optional[Dict[str, Any]] = (
            placement.as_wire() if placement is not None else None
        )
        self._placement_version: int = placement.version if placement is not None else 0
        self._server: Optional[asyncio.AbstractServer] = None
        self._writers: Set[asyncio.StreamWriter] = set()
        # In-flight frame accounting for the SIGTERM drain: a frame counts
        # from the moment it is fully read until its reply is written, and
        # aclose() waits for the count to hit zero before closing sockets.
        self._inflight = 0
        self._idle = asyncio.Event()
        self._idle.set()
        self._draining = False

    @property
    def address(self) -> str:
        """The ``host:port`` string clients connect to (valid after start)."""
        return f"{self.host}:{self.port}"

    async def start(self) -> None:
        """Bind and start accepting connections."""
        self._server = await asyncio.start_server(self._handle_client, self.host, self.port)
        sockname = self._server.sockets[0].getsockname()
        self.host, self.port = sockname[0], sockname[1]

    async def serve_forever(self) -> None:
        """Block serving connections until cancelled or :meth:`aclose`."""
        assert self._server is not None, "call start() first"
        await self._server.serve_forever()

    async def aclose(self, drain_timeout: float = 30.0) -> None:
        """Stop accepting, drain in-flight frames, close connections.

        The drained-shutdown contract (shared with ``stgq serve --jsonl``
        and the HTTP gateway, see :mod:`repro.service.drain`): every frame
        that was fully read gets its reply written before the connection
        is torn down — a mid-batch SIGTERM no longer drops responses whose
        requests the worker already accepted.  ``drain_timeout`` bounds
        the wait; a batch still running when it expires is abandoned with
        the close (the orchestrator's SIGKILL escalation territory).
        Idempotent.
        """
        server, self._server = self._server, None
        if server is not None:
            server.close()
            await server.wait_closed()
        self._draining = True
        if self._inflight:
            try:
                await asyncio.wait_for(self._idle.wait(), drain_timeout)
            except asyncio.TimeoutError:  # pragma: no cover - pathological batch
                print(
                    f"worker drain timed out with {self._inflight} frames in flight",
                    file=sys.stderr,
                )
        for writer in list(self._writers):
            writer.close()
        self._writers.clear()

    # ------------------------------------------------------------------
    # connection handling
    # ------------------------------------------------------------------
    async def _handle_client(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        self._writers.add(writer)
        try:
            while True:
                try:
                    frame = await read_frame(reader)
                except (asyncio.IncompleteReadError, ConnectionError):
                    break  # client hung up
                except ProtocolError as exc:
                    # Framing is broken: answer once, then drop the peer —
                    # the byte stream can no longer be trusted.
                    await write_frame(writer, {"type": "error", "error": str(exc)})
                    break
                # From here the frame is "accepted": count it in-flight
                # (synchronously — no await between the read completing and
                # this increment, so aclose() can never observe the gap) so
                # a drain waits for its reply to be written.
                self._inflight += 1
                self._idle.clear()
                try:
                    reply, keep_open = await self._dispatch(frame)
                    await write_frame(writer, reply)
                finally:
                    self._inflight -= 1
                    if self._inflight == 0:
                        self._idle.set()
                if not keep_open or self._draining:
                    break
        except (ConnectionError, ProtocolError):  # peer died mid-write
            pass
        finally:
            self._writers.discard(writer)
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):  # pragma: no cover - teardown race
                pass

    async def _dispatch(self, frame: Dict[str, Any]) -> Tuple[Dict[str, Any], bool]:
        """Answer one frame; returns (reply, keep_connection_open)."""
        ftype = frame.get("type")
        if ftype == "hello":
            version = frame.get("v")
            if version != PROTOCOL_VERSION:
                reply = {
                    "type": "error",
                    "error": (
                        f"unsupported protocol version {version!r} "
                        f"(this worker speaks v{PROTOCOL_VERSION})"
                    ),
                }
                return reply, False
            reply = {
                "type": "hello",
                "v": PROTOCOL_VERSION,
                "server": "stgq-worker",
                "backend": self.service.backend_name,
                "workers": self.service.max_workers,
                "graph_size": self.service.graph.vertex_count,
            }
            # Substrate-backed workers advertise which ``.stgq`` file (and
            # which version of it) they serve from, so a gateway can detect
            # a fleet whose shards disagree about the graph.
            graph_path = getattr(self.service.graph, "path", None)
            if graph_path is not None:
                reply["graph_path"] = graph_path
                reply["graph_version"] = self.service.graph.version
            # Position in the mutation stream, so a gateway (or ``stgq
            # mutate``) can see on connect whether this worker needs a
            # catch-up before the fleet serves one consistent version.
            reply["live_version"] = self.service.live_version
            # Stored placement-map version (0 = none): lets a connecting
            # gateway see immediately whether a load-aware map is deployed
            # and whether its own copy is stale.
            reply["placement_version"] = self._placement_version
            return reply, True
        if ftype == "ping":
            return {"type": "pong", "id": frame.get("id")}, True
        if ftype == "cache_clear":
            # Gateway-initiated invalidation (QueryService.clear_cache on a
            # remote backend): drop every cached ego network, including any
            # held by this worker's own executor backend.  Runs off-loop —
            # a process-backend clear blocks on its pool workers, and the
            # event loop must keep serving other connections' frames
            # meanwhile.  A failed clear is answered in-band so the
            # gateway can report the incomplete invalidation.
            #
            # When the gateway's graph is substrate-backed, the frame also
            # carries ``graph_path``/``graph_version``: the worker re-opens
            # that ``.stgq`` file (mmap'd, version-checked) before clearing,
            # making the clear a true "the graph changed" invalidation —
            # the remote twin of ProcessBackend shipping its graph in
            # ``_worker_reload``.
            loop = asyncio.get_running_loop()
            graph_path = frame.get("graph_path")
            graph_version = frame.get("graph_version")
            try:
                if graph_path is not None:
                    await loop.run_in_executor(
                        None, self._reload_substrate, graph_path, graph_version
                    )
                await loop.run_in_executor(None, self.service.clear_cache)
            except Exception as exc:
                reply = {
                    "type": "error",
                    "error": f"cache clear failed: {exc}",
                    "id": frame.get("id"),
                }
                return reply, True
            return {"type": "cache_cleared", "id": frame.get("id")}, True
        if ftype == "delta":
            # Live-graph replication (docs/live_graph.md): one versioned
            # mutation batch.  apply_delta's version handshake makes the
            # frame idempotent (a retried delta is a "noop") and turns any
            # out-of-order delivery into an explicit "gap" the gateway
            # answers with a log replay or a snapshot.  Runs off-loop: the
            # service takes its mutation lock and may broadcast to its own
            # process pools, and other connections' batches must keep
            # flowing meanwhile.
            loop = asyncio.get_running_loop()
            try:
                batch = MutationBatch.from_wire(frame.get("batch"))
                status, invalidated = await loop.run_in_executor(
                    None, self.service.apply_delta, batch
                )
            except (ProtocolError, ReproError) as exc:
                reply = {
                    "type": "error",
                    "error": f"delta failed: {exc}",
                    "id": frame.get("id"),
                }
                return reply, True
            reply = {
                "type": "delta_result",
                "id": frame.get("id"),
                "status": status,
                "invalidated": invalidated,
                "version": self.service.live_version,
            }
            return reply, True
        if ftype == "snapshot":
            # Catch-up fallback when deltas cannot bridge the version gap.
            # Two forms: inline (payload carries vertices/edges) and
            # reference (``graph_path``/``graph_version`` name a ``.stgq``
            # substrate this worker re-opens — the PR 6 reload path — with
            # the payload carrying only version/availability).
            loop = asyncio.get_running_loop()
            payload = frame.get("payload")
            if not isinstance(payload, dict):
                reply = {
                    "type": "error",
                    "error": "snapshot frame must carry a 'payload' object",
                    "id": frame.get("id"),
                }
                return reply, True
            graph_path = frame.get("graph_path")
            try:
                dropped = await loop.run_in_executor(
                    None, self._apply_snapshot, payload, graph_path, frame.get("graph_version")
                )
            except (ProtocolError, ReproError) as exc:
                reply = {
                    "type": "error",
                    "error": f"snapshot failed: {exc}",
                    "id": frame.get("id"),
                }
                return reply, True
            reply = {
                "type": "snapshot_applied",
                "id": frame.get("id"),
                "version": self.service.live_version,
                "invalidated": dropped,
            }
            return reply, True
        if ftype == "placement_update":
            # Load-aware routing distribution (docs/placement.md): store the
            # versioned map with the same idempotence rule as ``delta`` —
            # strictly newer versions apply, anything else is a "noop" — so
            # retries and out-of-order pushes from multiple gateways are
            # harmless.  Junk maps are rejected in-band with the connection
            # kept open (PlacementMap.from_wire validates every field).
            try:
                placement = PlacementMap.from_wire(frame.get("map"))
            except (QueryError, ReproError) as exc:
                reply = {
                    "type": "error",
                    "error": f"placement rejected: {exc}",
                    "id": frame.get("id"),
                }
                return reply, True
            if placement.version > self._placement_version:
                self._placement_wire = placement.as_wire()
                self._placement_version = placement.version
                status = "applied"
            else:
                status = "noop"
            reply = {
                "type": "placement_applied",
                "id": frame.get("id"),
                "status": status,
                "version": self._placement_version,
            }
            return reply, True
        if ftype == "placement_get":
            reply = {
                "type": "placement",
                "id": frame.get("id"),
                "version": self._placement_version,
                "map": self._placement_wire,
            }
            return reply, True
        if ftype == "stats":
            info = self.service.cache_info()
            reply = {
                "type": "stats",
                "stats": self.service.stats().as_dict(),
                "cache": {
                    "hits": info.hits,
                    "misses": info.misses,
                    "size": info.size,
                    "max_size": info.max_size,
                },
                "placement_version": self._placement_version,
            }
            # When this worker's own service routes by shard (a process
            # backend), its rolling routing metrics ride along too.
            routing = self.service.route_report()
            if routing is not None:
                reply["routing"] = routing
            return reply, True
        if ftype == "batch":
            return await self._handle_batch(frame), True
        reply = {"type": "error", "error": f"unknown frame type {ftype!r}", "id": frame.get("id")}
        return reply, True

    def _reload_substrate(self, path: str, version: Optional[str]) -> None:
        """Swap the service's graph for the substrate at ``path`` (blocking).

        Runs on the executor, never on the event loop.  The version check
        catches a file that changed (or differs across nodes) underneath
        the fleet; the subsequent ``clear_cache`` then broadcasts the new
        graph to any pool workers this service itself runs.
        """
        from ...graph.csr import load_stgq

        graph = load_stgq(path, mmap=True)
        if version is not None and graph.version != version:
            raise ProtocolError(
                f"substrate {path} has version {graph.version}, gateway expects {version}"
            )
        self.service.graph = graph

    def _apply_snapshot(self, payload: Dict[str, Any], graph_path: Any, graph_version: Any) -> int:
        """Apply a snapshot frame's state swap (blocking; runs on the executor).

        The reference form re-opens the named ``.stgq`` substrate (mmap'd,
        version-checked) and hands it to :meth:`QueryService.apply_snapshot`
        in place of inline topology, so a full catch-up ships a file
        reference instead of the graph.
        """
        graph = None
        if graph_path is not None:
            from ...graph.csr import load_stgq

            graph = load_stgq(str(graph_path), mmap=True)
            if graph_version is not None and graph.version != graph_version:
                raise ProtocolError(
                    f"substrate {graph_path} has version {graph.version}, "
                    f"gateway expects {graph_version}"
                )
        return self.service.apply_snapshot(payload, graph=graph)

    def _parse_request(self, payload: Any) -> Query:
        query = query_from_request(payload)
        # One authoritative precondition check (initiator in graph,
        # calendars present for STGQ, ...): the service's own validation,
        # so worker-side rejections match the local backends exactly.
        self.service._validate(query)
        return query

    async def _handle_batch(self, frame: Dict[str, Any]) -> Dict[str, Any]:
        requests = frame.get("requests")
        if not isinstance(requests, list):
            return {
                "type": "error",
                "error": "batch frame must carry a 'requests' array",
                "id": frame.get("id"),
            }
        entries: List[Tuple[Optional[Query], Optional[str]]] = []
        queries: List[Query] = []
        for payload in requests:
            try:
                query = self._parse_request(payload)
            except ReproError as exc:
                entries.append((None, str(exc)))
            else:
                entries.append((query, None))
                queries.append(query)
        solve_error: Optional[str] = None
        results: List[Any] = []
        # Each batch gets a private ExecutionContext, so its stats delta is
        # exact whatever else the worker is doing: batches from any number
        # of gateway connections interleave freely on the service's
        # executor (the old per-worker solve lock — and with it the
        # one-gateway-per-fleet restriction — is gone).
        context = ExecutionContext()
        if queries:
            try:
                results = list(await self.service.solve_many_async(queries, context=context))
            except Exception as exc:  # e.g. a broken executor pool
                solve_error = str(exc) or type(exc).__name__
        if solve_error is not None:
            # Every request is being answered with an error: ship no delta,
            # so the gateway never counts queries whose callers only saw
            # ErrorResults (the failed batch's context was never merged
            # worker-side either, so both sides agree it never happened).
            delta: Dict[str, float] = {}
        else:
            delta = context.as_delta()
        cursor = iter(results)
        encoded: List[Dict[str, Any]] = []
        for query, error in entries:
            if error is not None:
                encoded.append({"error": error})
            elif solve_error is not None:
                encoded.append({"error": solve_error})
            else:
                encoded.append(encode_result(next(cursor)))
        reply = {
            "type": "batch_result",
            "id": frame.get("id"),
            "results": encoded,
            "stats_delta": delta,
            "cache_size": self.service.cache_info().size,
            # Every batch reply advertises the stored placement-map version,
            # so a gateway routing with an older map learns about a newer
            # deployment mid-stream and fetches it (placement_get) without
            # anyone restarting.
            "placement_version": self._placement_version,
        }
        if wants_stats(frame) and solve_error is None:
            # Opt-in observability: the batch's merged kernel statistics,
            # recorded into the context by the solvers themselves.  A
            # failed batch ships none — both sides treat it as never
            # having happened, partial kernel work included.
            reply["stats"] = context.search_stats().as_dict()
        return reply


def run_worker(
    service: QueryService,
    host: str = "127.0.0.1",
    port: int = 0,
    announce: Optional[TextIO] = None,
    placement: Optional[PlacementMap] = None,
) -> int:
    """Run a worker server until SIGINT/SIGTERM; returns an exit code.

    Once listening, writes ``STGQ-WORKER-READY <host> <port>`` to
    ``announce`` (the cluster launcher reads this off the subprocess's
    stdout to learn the ephemeral port).  Signals stop the loop cleanly
    *and drained*: ``aclose`` finishes every in-flight frame's reply
    before connections close (a mid-batch SIGTERM drops nothing), then
    the caller closes the service (``stgq worker`` holds it in a ``with``
    block), so no forkserver workers leak on Ctrl-C.  Exit code stays 0
    on a signalled, drained shutdown — the contract launchers assert.
    """

    async def _run() -> None:
        server = WorkerServer(service, host, port, placement=placement)
        await server.start()
        if announce is not None:
            announce.write(f"{READY_MARKER} {server.host} {server.port}\n")
            announce.flush()
        stop = asyncio.Event()
        loop = asyncio.get_running_loop()
        installed = []
        for signum in (signal.SIGINT, signal.SIGTERM):
            try:
                loop.add_signal_handler(signum, stop.set)
                installed.append(signum)
            except (NotImplementedError, RuntimeError):  # pragma: no cover - Windows
                pass
        try:
            await stop.wait()
        finally:
            for signum in installed:
                loop.remove_signal_handler(signum)
            await server.aclose()

    try:
        asyncio.run(_run())
    except KeyboardInterrupt:  # pragma: no cover - signal handler not installable
        print("worker interrupted; shutting down", file=sys.stderr)
        return 130
    return 0
