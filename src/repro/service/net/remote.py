"""RemoteBackend: the executor backend that runs batches on remote workers.

Drop-in implementation of the :class:`~repro.service.ExecutorBackend`
protocol — a :class:`~repro.service.QueryService` built with
``backend=RemoteBackend("host:a,host:b")`` behaves like one built with
``backend="process"``, except the shards live behind sockets instead of
``ProcessPoolExecutor``\\ s:

* **Routing** — each query's initiator maps to a worker through the same
  router duck type the process backend uses: the CRC32
  :class:`~repro.service.ShardMap` fallback by default, or a versioned
  :class:`~repro.service.placement.PlacementMap` for load-aware
  deployments — so a worker's ego-network cache stays hot for its share of
  users and a gateway restart lands every initiator on the same worker
  again.  A replicated hot ego fans out round-robin across its replica
  workers, and when its routed worker is down the sub-batch **fails over**
  to a surviving replica instead of degrading to errors.  Gateways also
  *adopt* newer maps mid-flight: every ``batch_result`` advertises the
  worker's stored placement version, and a gateway seeing a newer one
  fetches the map with a ``placement_get`` frame — so ``placement_update``
  pushed at any one point reaches the whole tier without restarts.
* **Pipelining** — one persistent connection per worker; a batch is split
  into per-shard sub-batches that are dispatched concurrently, so every
  worker solves its slice while the others solve theirs.
* **Stats invariance** — each ``batch_result`` carries the stats *delta*
  the sub-batch's :class:`~repro.service.context.ExecutionContext` produced
  inside the worker; deltas are merged into the gateway batch's own context
  only after every shard resolved (all-or-nothing, exactly like the process
  backend), so ``stats()``/``cache_info()`` report the same numbers
  whichever backend answered.
* **Failure containment** — a dead or timed-out worker degrades to
  :class:`~repro.service.codec.ErrorResult` entries for the requests routed
  to it; the rest of the batch succeeds.  Reconnection uses exponential
  backoff with a fail-fast window, so a flapping worker cannot stall every
  batch, and a restarted worker is picked up automatically on the next
  attempt after the window expires.
"""

from __future__ import annotations

import socket
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from typing import TYPE_CHECKING, Dict, Iterable, List, Optional, Sequence, Tuple, Union

from ...exceptions import ProtocolError, QueryError, WorkerUnavailableError
from ..codec import ErrorResult, decode_result, request_for
from ..context import ExecutionContext
from ..placement import PlacementMap
from ..sharding import ShardMap
from .protocol import client_handshake, encode_frame, recv_frame

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..query_service import Query, QueryService, Result

__all__ = ["RemoteBackend", "parse_addresses"]

Address = Tuple[str, int]


def parse_addresses(connect: Union[str, Iterable[Union[str, Address]]]) -> List[Address]:
    """Normalise a ``--connect`` spec to a list of ``(host, port)`` pairs.

    Accepts ``"host:port,host:port"`` strings (what the CLI passes) or any
    iterable of ``"host:port"`` strings / ready pairs.
    """
    if isinstance(connect, str):
        parts: List[Union[str, Address]] = [p for p in connect.split(",") if p.strip()]
    else:
        parts = list(connect)
    if not parts:
        raise QueryError("remote backend needs at least one worker address")
    addresses: List[Address] = []
    for part in parts:
        if isinstance(part, tuple):
            host, port = part
        else:
            host, _, port_text = part.strip().rpartition(":")
            if not host:
                raise QueryError(f"worker address {part!r} is not 'host:port'")
            try:
                port = int(port_text)
            except ValueError:
                raise QueryError(f"worker address {part!r} has a non-numeric port") from None
        if not 0 < int(port) < 65536:
            raise QueryError(f"worker address has out-of-range port {port}")
        addresses.append((str(host), int(port)))
    return addresses


class _WorkerLink:
    """One persistent, lazily-(re)connected framed connection to a worker.

    A lock serialises request/response pairs on the connection; concurrent
    batches to *different* workers proceed in parallel (the backend fans
    out over a thread pool).  Connection failures open a fail-fast window
    that grows exponentially (``backoff_base * 2**failures``, capped), so
    while a worker is down its shard's requests error out immediately
    instead of each paying a connect timeout.
    """

    def __init__(
        self,
        address: Address,
        timeout: float,
        connect_timeout: float,
        backoff_base: float,
        backoff_cap: float,
        max_batch_timeout: float,
    ) -> None:
        self.address = address
        self.timeout = timeout
        self.connect_timeout = connect_timeout
        self.backoff_base = backoff_base
        self.backoff_cap = backoff_cap
        self.max_batch_timeout = max_batch_timeout
        self._sock: Optional[socket.socket] = None
        self._lock = threading.Lock()
        self._failures = 0
        self._retry_at = 0.0

    @property
    def label(self) -> str:
        return f"{self.address[0]}:{self.address[1]}"

    def _register_failure(self) -> None:
        self._failures += 1
        delay = min(self.backoff_cap, self.backoff_base * (2 ** (self._failures - 1)))
        self._retry_at = time.monotonic() + delay

    def _drop_locked(self) -> None:
        sock, self._sock = self._sock, None
        if sock is not None:
            try:
                sock.close()
            except OSError:  # pragma: no cover - close never matters
                pass

    def _connect_locked(self) -> None:
        remaining = self._retry_at - time.monotonic()
        if remaining > 0:
            raise WorkerUnavailableError(
                f"worker {self.label} unavailable (reconnect backoff, {remaining:.2f}s left)"
            )
        try:
            sock = socket.create_connection(self.address, timeout=self.connect_timeout)
        except OSError as exc:
            self._register_failure()
            raise WorkerUnavailableError(f"cannot connect to worker {self.label}: {exc}") from exc
        sock.settimeout(self.timeout)
        try:
            client_handshake(sock, deadline=time.monotonic() + self.timeout)
        except (OSError, ProtocolError) as exc:
            sock.close()
            self._register_failure()
            raise WorkerUnavailableError(
                f"handshake with worker {self.label} failed: {exc}"
            ) from exc
        self._sock = sock
        self._failures = 0
        self._retry_at = 0.0

    def request(self, frame: Dict, budget: int = 1) -> Dict:
        """One request/response round trip; raises ``WorkerUnavailableError``.

        Any transport failure (refused connect, send/recv error, timeout,
        broken framing) drops the connection — the next request attempts a
        reconnect once its backoff window has passed.  The round trip is
        bounded by a deadline of ``timeout * budget`` seconds (``budget`` =
        number of requests in the frame), so the per-request budget holds
        for any sub-batch size while a dribbling worker still cannot stall
        a batch past its deadline.  A frame too large to encode raises
        :class:`ProtocolError` *before* touching the connection: a
        client-side mistake must not penalise a healthy worker with a
        dropped socket and backoff.
        """
        data = encode_frame(frame)
        # Scale with the sub-batch so large healthy batches are never
        # spuriously degraded, but cap the total: a wedged worker must not
        # stall a batch for timeout * N seconds (hours at defaults).
        cap = max(self.timeout, self.max_batch_timeout)
        budget_seconds = min(self.timeout * max(1, budget), cap)
        with self._lock:
            if self._sock is None:
                self._connect_locked()
            deadline = time.monotonic() + budget_seconds
            try:
                self._sock.settimeout(self.timeout)
                self._sock.sendall(data)
                reply = recv_frame(self._sock, deadline=deadline)
            except socket.timeout as exc:
                self._drop_locked()
                self._register_failure()
                raise WorkerUnavailableError(
                    f"worker {self.label} timed out after {budget_seconds}s"
                ) from exc
            except (OSError, ProtocolError) as exc:
                self._drop_locked()
                self._register_failure()
                raise WorkerUnavailableError(f"worker {self.label} failed: {exc}") from exc
            if reply.get("type") == "error":
                # In-protocol refusal (e.g. malformed batch): connection is
                # healthy, but this request cannot be served.
                raise WorkerUnavailableError(
                    f"worker {self.label} rejected the request: {reply.get('error')}"
                )
            return reply

    def reset_backoff(self) -> None:
        """Forget the fail-fast window so the next request truly attempts.

        Batch traffic wants the backoff (bounded latency while a worker is
        down); must-attempt operations like a cache invalidation do not — a
        worker that already recovered must not be skipped just because its
        last failure was recent.  A failing attempt re-opens the window.
        """
        with self._lock:
            self._retry_at = 0.0

    def close(self) -> None:
        with self._lock:
            self._drop_locked()


class RemoteBackend:
    """Shard initiators across remote workers over persistent connections.

    Parameters
    ----------
    connect:
        Worker addresses: ``"host:port,host:port"`` or an iterable of
        ``"host:port"`` strings / ``(host, port)`` pairs.  The number of
        addresses fixes the shard count; list the same workers in the same
        order on every gateway or the shard → worker mapping diverges.
    timeout:
        Per-request time budget in seconds: a sub-batch round trip to one
        worker is bounded by ``timeout * len(sub-batch)`` (control frames
        by ``timeout``), so large healthy batches are never spuriously
        degraded while a stalled worker is still cut off deterministically.
        On expiry the sub-batch yields error results and the connection is
        dropped (re-established on a later batch).
    max_batch_timeout:
        Absolute cap on one sub-batch round trip, whatever its size
        (default 300 s) — a wedged worker must not hold a huge batch
        hostage for ``timeout * N`` seconds.
    connect_timeout:
        TCP connect + handshake timeout.
    backoff_base / backoff_cap:
        Exponential reconnect backoff: after ``n`` consecutive failures a
        link fails fast for ``min(cap, base * 2**(n-1))`` seconds.
    placement:
        Optional :class:`~repro.service.placement.PlacementMap` replacing
        the CRC32 fallback; its ``n_shards`` must equal the address count.
        Gateways may also *adopt* a newer map advertised by the workers
        (see :meth:`update_placement`), so passing one here is the initial
        state, not a pin.

    Notes
    -----
    The workers must serve the *same* graph/calendars as the gateway
    service, or results will be inconsistent — the launcher and the docs
    make both sides load the same seeded dataset.  Vertex ids must survive
    a JSON round trip (ints or strings).
    """

    name = "remote"

    def __init__(
        self,
        connect: Union[str, Iterable[Union[str, Address]]],
        timeout: float = 30.0,
        connect_timeout: float = 5.0,
        backoff_base: float = 0.05,
        backoff_cap: float = 2.0,
        max_batch_timeout: float = 300.0,
        placement: Optional[PlacementMap] = None,
    ) -> None:
        if timeout <= 0 or connect_timeout <= 0 or max_batch_timeout <= 0:
            raise QueryError("timeouts must be positive")
        self.addresses = parse_addresses(connect)
        self.workers = len(self.addresses)
        if placement is not None and placement.n_shards != self.workers:
            raise QueryError(
                f"placement routes over {placement.n_shards} shards "
                f"but {self.workers} worker addresses were given"
            )
        self._router = placement if placement is not None else ShardMap(self.workers)
        self._route_lock = threading.Lock()
        self._failover_queries = 0
        self._failover_batches = 0
        self._links = [
            _WorkerLink(
                address, timeout, connect_timeout, backoff_base, backoff_cap, max_batch_timeout
            )
            for address in self.addresses
        ]
        self._pool: Optional[ThreadPoolExecutor] = None
        self._pool_lock = threading.Lock()
        self._cache_sizes: Dict[int, int] = {}

    def _ensure_pool(self) -> ThreadPoolExecutor:
        with self._pool_lock:
            if self._pool is None:
                self._pool = ThreadPoolExecutor(
                    max_workers=self.workers, thread_name_prefix="stgq-remote"
                )
            return self._pool

    def _request_shard(
        self, shard: int, queries: Sequence["Query"]
    ) -> Tuple[List["Result"], Dict[str, float], int, int]:
        """Round-trip one shard's sub-batch.

        Returns ``(results, delta, cache_size, advertised_placement_version)``
        — the last is the worker's stored placement-map version riding every
        ``batch_result``, which is how a gateway discovers a map pushed
        through some *other* gateway (see :meth:`_maybe_adopt`).
        """
        link = self._links[shard]
        frame = {
            "type": "batch",
            "id": shard,
            "requests": [request_for(query) for query in queries],
        }
        reply = link.request(frame, budget=len(queries))
        if reply.get("type") != "batch_result":
            raise WorkerUnavailableError(
                f"worker {link.label} answered a batch with {reply.get('type')!r}"
            )
        payloads = reply.get("results")
        if not isinstance(payloads, list) or len(payloads) != len(queries):
            count = len(payloads) if isinstance(payloads, list) else "no"
            raise WorkerUnavailableError(
                f"worker {link.label} returned {count} results "
                f"for a {len(queries)}-request batch"
            )
        results: List["Result"] = []
        for payload in payloads:
            if isinstance(payload, dict) and "error" in payload:
                results.append(ErrorResult(error=str(payload["error"]), solver="remote"))
            else:
                try:
                    results.append(decode_result(payload))
                except QueryError as exc:
                    raise WorkerUnavailableError(
                        f"worker {link.label} sent an undecodable result: {exc}"
                    ) from exc
        # Metadata is untrusted worker output too: malformed values must
        # degrade this shard, not escape the pool future and crash the
        # whole batch past the per-shard containment.
        delta = reply.get("stats_delta")
        if not isinstance(delta, dict):
            raise WorkerUnavailableError(
                f"worker {link.label} sent no stats delta with its results"
            )
        if not all(isinstance(value, (int, float)) for value in delta.values()):
            raise WorkerUnavailableError(f"worker {link.label} sent a non-numeric stats delta")
        try:
            cache_size = int(reply.get("cache_size", 0))
        except (TypeError, ValueError) as exc:
            raise WorkerUnavailableError(
                f"worker {link.label} sent an invalid cache size: {exc}"
            ) from exc
        advert = reply.get("placement_version")
        if not isinstance(advert, int):
            advert = 0
        return results, delta, cache_size, advert

    def solve_batch(
        self,
        service: "QueryService",
        queries: Sequence["Query"],
        context: ExecutionContext,
    ) -> List["Result"]:
        # Snapshot the router once: a placement_update landing mid-batch
        # applies from the *next* batch (any worker answers any initiator,
        # so the in-flight batch stays correct under the old map).
        router = self._router
        parts = router.partition(queries)
        pool = self._ensure_pool()
        futures = {
            shard: pool.submit(self._request_shard, shard, [query for _, query in entries])
            for shard, entries in parts.items()
        }
        # Collect every shard before merging any stats into the batch
        # context, so the aggregate view stays all-or-nothing per shard: a
        # sub-batch either lands fully (results + its delta) or degrades
        # fully to error results.
        outcomes: Dict[int, Tuple[List["Result"], Dict[str, float], int, int]] = {}
        failures: Dict[int, str] = {}
        for shard, future in futures.items():
            try:
                outcomes[shard] = future.result()
            except WorkerUnavailableError as exc:
                failures[shard] = str(exc)
            except ProtocolError as exc:
                # Client-side encoding failure (e.g. a sub-batch too large
                # for one frame): degrade this shard's requests without
                # having touched — or penalised — the worker connection.
                failures[shard] = f"sub-batch could not be encoded: {exc}"
        # Replica failover round: a failed shard's *replicated* initiators
        # have other workers that can answer them (every worker holds the
        # full graph), so re-dispatch those entries to a surviving replica
        # in one retry wave.  Non-replicated entries keep the old contract:
        # degrade to ErrorResult.  Each retry sub-batch merges its own
        # worker delta all-or-nothing, so every solved query is counted
        # exactly once — never by the failed primary.
        retry_parts: Dict[int, List[Tuple[int, "Query"]]] = {}
        unrecovered: Dict[int, str] = {}
        for shard in failures:
            for index, query in parts[shard]:
                survivors = [
                    replica
                    for replica in router.replicas_of(query.initiator)  # type: ignore[attr-defined]
                    if replica != shard and replica not in failures
                ]
                if survivors:
                    retry_parts.setdefault(survivors[0], []).append((index, query))
                else:
                    unrecovered[index] = failures[shard]
        retry_outcomes: Dict[int, Tuple[List["Result"], Dict[str, float], int, int]] = {}
        if retry_parts:
            retry_futures = {
                target: pool.submit(
                    self._request_shard, target, [query for _, query in entries]
                )
                for target, entries in retry_parts.items()
            }
            for target, future in retry_futures.items():
                try:
                    retry_outcomes[target] = future.result()
                except (WorkerUnavailableError, ProtocolError) as exc:
                    for index, _ in retry_parts[target]:
                        unrecovered[index] = f"failover to replica failed: {exc}"
        results: List[Optional["Result"]] = [None] * len(queries)
        cache_updates: Dict[int, int] = {}
        advertised = 0
        recovered = 0
        merge_plan = [
            (shard, entries, outcomes[shard])
            for shard, entries in parts.items()
            if shard not in failures
        ] + [
            (target, entries, retry_outcomes[target])
            for target, entries in retry_parts.items()
            if target in retry_outcomes
        ]
        for shard, entries, outcome in merge_plan:
            shard_results, delta, cache_size, advert = outcome
            for (index, _), result in zip(entries, shard_results):
                results[index] = result
                if not isinstance(result, ErrorResult):
                    # Solved results carry the exact SearchStats recorded
                    # inside the worker; merging them keeps the batch
                    # context's kernel view backend-invariant across the
                    # network hop.  Per-request errors were never solved.
                    context.merge_search(result.stats)
            context.merge_delta(delta)
            cache_updates[shard] = cache_size
            advertised = max(advertised, advert)
        for target, entries in retry_parts.items():
            if target in retry_outcomes:
                recovered += len(entries)
        for index, message in unrecovered.items():
            results[index] = ErrorResult(error=message, solver="remote")
        if cache_updates:
            # Replace wholesale (readers iterate their own snapshot, never
            # a resizing dict) and merge under the lock (two concurrent
            # batches must not lose each other's shard entries).
            with self._pool_lock:
                self._cache_sizes = {**self._cache_sizes, **cache_updates}
        if recovered:
            with self._route_lock:
                self._failover_queries += recovered
                self._failover_batches += 1
        if advertised > router.version:
            self._maybe_adopt(advertised, outcomes, retry_outcomes)
        return results  # type: ignore[return-value]

    def _maybe_adopt(
        self,
        advertised: int,
        outcomes: Dict[int, Tuple[List["Result"], Dict[str, float], int, int]],
        retry_outcomes: Dict[int, Tuple[List["Result"], Dict[str, float], int, int]],
    ) -> None:
        """Fetch and adopt a newer placement map advertised by a worker.

        Best-effort by design: adoption failing (worker died between the
        batch and the fetch, malformed map, shard-count mismatch) leaves
        the current router in place and the next batch will try again — a
        routing refresh must never fail a batch that already solved.
        """
        candidates = [
            shard
            for source in (outcomes, retry_outcomes)
            for shard, (_, _, _, advert) in source.items()
            if advert == advertised
        ]
        if not candidates:  # pragma: no cover - advertised came from outcomes
            return
        link = self._links[candidates[0]]
        try:
            reply = link.request({"type": "placement_get", "id": candidates[0]})
        except WorkerUnavailableError:
            return
        wire = reply.get("map") if reply.get("type") == "placement" else None
        if not isinstance(wire, dict):
            return
        try:
            placement = PlacementMap.from_wire(wire)
        except QueryError:
            return
        if placement.n_shards != self.workers:
            return
        with self._route_lock:
            if placement.version > self._router.version:
                self._router = placement

    def _clear_one(self, shard: int, extras: Optional[Dict] = None) -> Optional[str]:
        """Clear one worker's cache; return an error description or ``None``."""
        link = self._links[shard]
        # Invalidation must actually try every worker: a link parked in its
        # reconnect-backoff window may front a worker that is healthy again.
        link.reset_backoff()
        frame = {"type": "cache_clear", "id": shard}
        if extras:
            frame.update(extras)
        try:
            reply = link.request(frame)
        except WorkerUnavailableError as exc:
            return str(exc)
        if reply.get("type") != "cache_cleared":
            return f"worker {link.label} answered cache_clear with {reply.get('type')!r}"
        return None

    def clear_caches(self, service: "QueryService") -> None:
        """Send a ``cache_clear`` control frame to every worker, concurrently.

        Cache invalidation is a correctness operation — a worker that kept
        its ego-network cache would keep serving pre-change graphs — so
        unlike batch traffic this does *not* degrade silently: every worker
        is attempted, and if any could not be cleared a
        :class:`~repro.exceptions.WorkerUnavailableError` naming them is
        raised (the caller knows the invalidation is incomplete and can
        retry once the workers are back).  The frames fan out over the same
        thread pool batches use, so the wall clock is bounded by the
        slowest worker, not the sum over a partitioned fleet.

        When the gateway's graph is substrate-backed (it exposes a
        ``path``), the frames carry ``graph_path``/``graph_version`` so each
        worker re-opens that ``.stgq`` file before clearing — the clear
        ships a *reference* to the new graph, never the graph itself.
        """
        extras: Optional[Dict] = None
        graph_path = getattr(service.graph, "path", None)
        if graph_path is not None:
            extras = {"graph_path": graph_path, "graph_version": service.graph.version}
        pool = self._ensure_pool()
        futures = [pool.submit(self._clear_one, shard, extras) for shard in range(self.workers)]
        failures = [error for error in (future.result() for future in futures) if error]
        with self._pool_lock:
            self._cache_sizes = {}
        if failures:
            raise WorkerUnavailableError("cache clear incomplete: " + "; ".join(failures))

    # ------------------------------------------------------------------
    # live-graph mutation distribution (docs/live_graph.md)
    # ------------------------------------------------------------------
    def _delta_one(self, shard: int, batch_wire: Dict) -> Tuple[str, int, int]:
        """Ship one delta frame; returns (status, invalidated, worker_version)."""
        link = self._links[shard]
        # Like cache invalidation, mutation distribution is a correctness
        # operation: every worker must actually be attempted, backoff or not.
        link.reset_backoff()
        reply = link.request({"type": "delta", "id": shard, "batch": batch_wire})
        if reply.get("type") != "delta_result":
            raise WorkerUnavailableError(
                f"worker {link.label} answered a delta with {reply.get('type')!r}"
            )
        try:
            return (
                str(reply.get("status")),
                int(reply.get("invalidated", 0)),
                int(reply.get("version", -1)),
            )
        except (TypeError, ValueError) as exc:
            raise WorkerUnavailableError(
                f"worker {link.label} sent a malformed delta result: {exc}"
            ) from exc

    def _catch_up(self, shard: int, frames: List[Dict], target: int) -> int:
        """Replay pre-built catch-up frames to one worker; returns evictions.

        The frames are either a contiguous chain of delta frames (log
        replay) or a single snapshot frame; either way the worker must end
        at ``target`` or the distribution is incomplete.
        """
        link = self._links[shard]
        invalidated = 0
        version = -1
        for frame in frames:
            reply = link.request(frame)
            rtype = reply.get("type")
            if rtype == "delta_result":
                if reply.get("status") == "gap":
                    raise WorkerUnavailableError(
                        f"worker {link.label} reported a gap mid-replay "
                        f"(at version {reply.get('version')})"
                    )
            elif rtype != "snapshot_applied":
                raise WorkerUnavailableError(
                    f"worker {link.label} answered catch-up with {rtype!r}"
                )
            try:
                invalidated += int(reply.get("invalidated", 0))
                version = int(reply.get("version", -1))
            except (TypeError, ValueError) as exc:
                raise WorkerUnavailableError(
                    f"worker {link.label} sent a malformed catch-up result: {exc}"
                ) from exc
        if version < target:
            raise WorkerUnavailableError(
                f"worker {link.label} is at version {version} after catch-up "
                f"(target {target})"
            )
        return invalidated

    def _snapshot_frame(self, service: "QueryService") -> Dict:
        """Build the snapshot catch-up frame (reference form when possible).

        A substrate-backed gateway whose graph was never overlay-wrapped
        ships a ``graph_path`` reference (the worker re-opens the same
        ``.stgq`` file — the PR 6 reload path) plus version/availability;
        otherwise the full topology goes inline.
        """
        graph_path = getattr(service.graph, "path", None)
        if graph_path is not None:
            return {
                "type": "snapshot",
                "graph_path": graph_path,
                "graph_version": service.graph.version,
                "payload": service.snapshot_payload(inline_graph=False),
            }
        return {"type": "snapshot", "payload": service.snapshot_payload()}

    def apply_mutations(self, service: "QueryService", batch) -> int:
        """Distribute one mutation batch to every worker; returns evictions.

        Runs the catch-up ladder per worker: the versioned delta frame
        first (idempotent — a worker that already has it answers "noop"),
        then, for workers reporting a version gap, a mutation-log replay
        when the gateway's log still bridges the gap, else a snapshot.
        Like :meth:`clear_caches` this is all-or-error: every worker is
        attempted, and if any could not be brought to the batch's target
        version a :class:`~repro.exceptions.WorkerUnavailableError` naming
        them is raised — the fleet must not serve mixed graph versions.

        Called by :meth:`QueryService.apply_mutations` while it holds the
        service's mutation lock (an RLock owned by *this* thread), so the
        catch-up material — log chains, the snapshot payload — is built
        here on the calling thread; pool threads only ship pre-built
        frames and never touch the service.
        """
        pool = self._ensure_pool()
        wire = batch.as_wire()
        futures = {
            shard: pool.submit(self._delta_one, shard, wire) for shard in range(self.workers)
        }
        gaps: Dict[int, int] = {}
        failures: Dict[int, str] = {}
        total = 0
        for shard, future in futures.items():
            try:
                status, invalidated, version = future.result()
            except WorkerUnavailableError as exc:
                failures[shard] = str(exc)
                continue
            if status == "gap":
                gaps[shard] = version
            else:
                total += invalidated
        if gaps:
            plans: Dict[int, List[Dict]] = {}
            snapshot_frame: Optional[Dict] = None
            for shard, version in gaps.items():
                chain = service.mutation_log_since(version) if version >= 0 else None
                if chain:
                    plans[shard] = [
                        {"type": "delta", "id": shard, "batch": b.as_wire()} for b in chain
                    ]
                else:
                    if snapshot_frame is None:
                        snapshot_frame = self._snapshot_frame(service)
                    plans[shard] = [dict(snapshot_frame, id=shard)]
            catch_futures = {
                shard: pool.submit(self._catch_up, shard, frames, batch.to_version)
                for shard, frames in plans.items()
            }
            for shard, future in catch_futures.items():
                try:
                    total += future.result()
                except WorkerUnavailableError as exc:
                    failures[shard] = str(exc)
        if failures:
            raise WorkerUnavailableError(
                "mutation distribution incomplete: "
                + "; ".join(failures[shard] for shard in sorted(failures))
            )
        return total

    # ------------------------------------------------------------------
    # placement distribution (docs/placement.md)
    # ------------------------------------------------------------------
    def _placement_one(self, shard: int, wire: Dict) -> str:
        """Push one ``placement_update`` frame; returns the worker's status."""
        link = self._links[shard]
        # Like cache invalidation, placement distribution is a correctness
        # operation: every worker must actually be attempted, backoff or not.
        link.reset_backoff()
        reply = link.request({"type": "placement_update", "id": shard, "map": wire})
        if reply.get("type") != "placement_applied":
            raise WorkerUnavailableError(
                f"worker {link.label} answered placement_update with {reply.get('type')!r}"
            )
        return str(reply.get("status"))

    def update_placement(self, placement: PlacementMap) -> Dict[int, str]:
        """Ship ``placement`` to every worker, then adopt it locally.

        All-or-error like :meth:`clear_caches`: every worker is attempted
        concurrently, and if any could not store the map a
        :class:`~repro.exceptions.WorkerUnavailableError` naming them is
        raised — a fleet advertising mixed placement versions would keep
        re-triggering gateway adoption churn.  Returns the per-shard status
        (``"applied"`` or ``"noop"`` — the worker already held this or a
        newer version; same idempotence rule as the ``delta`` frames).

        The local router swaps only if the pushed map is newer than what
        this gateway holds; batches already in flight finish under the map
        they were partitioned with (correct on any worker).  Worker caches
        are never touched — an initiator whose shard did not move keeps its
        hot ego networks, which is the whole point of versioned maps over
        re-hashing.
        """
        if placement.n_shards != self.workers:
            raise QueryError(
                f"placement routes over {placement.n_shards} shards "
                f"but this backend connects {self.workers} workers"
            )
        pool = self._ensure_pool()
        wire = placement.as_wire()
        futures = {
            shard: pool.submit(self._placement_one, shard, wire)
            for shard in range(self.workers)
        }
        statuses: Dict[int, str] = {}
        failures: Dict[int, str] = {}
        for shard, future in futures.items():
            try:
                statuses[shard] = future.result()
            except WorkerUnavailableError as exc:
                failures[shard] = str(exc)
        if failures:
            raise WorkerUnavailableError(
                "placement distribution incomplete: "
                + "; ".join(failures[shard] for shard in sorted(failures))
            )
        with self._route_lock:
            if placement.version > self._router.version:
                self._router = placement
        return statuses

    @property
    def placement_version(self) -> int:
        """Version of the active routing map (0 = CRC32 fallback)."""
        return self._router.version

    def route_report(self) -> Dict[str, object]:
        """Active router metrics plus this backend's failover counters."""
        report = self._router.route_report()
        with self._route_lock:
            report["failover_queries"] = self._failover_queries
            report["failover_batches"] = self._failover_batches
        return report

    def worker_stats(self) -> List[Optional[Dict]]:
        """Per-worker ``stats`` control-frame snapshots (``None`` when down)."""
        snapshots: List[Optional[Dict]] = []
        for link in self._links:
            try:
                snapshots.append(link.request({"type": "stats"}))
            except WorkerUnavailableError:
                snapshots.append(None)
        return snapshots

    def cache_entries(self) -> Optional[int]:
        sizes = self._cache_sizes  # snapshot ref: solve_batch replaces, never mutates
        return sum(sizes.values())

    def close(self) -> None:
        """Close connections and the fan-out pool (workers keep running)."""
        with self._pool_lock:
            pool, self._pool = self._pool, None
        if pool is not None:
            pool.shutdown(wait=True)
        for link in self._links:
            link.close()
        self._cache_sizes = {}
