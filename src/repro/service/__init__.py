"""repro.service — batched query serving over one shared social graph.

Why a service layer
-------------------
The solvers in :mod:`repro.core` are single-query objects: every call to
``SGSelect.solve`` re-extracts the initiator's feasible graph and recompiles
it for the bitset kernel.  Real deployments look different — one large,
slowly-changing social graph, many concurrent users issuing queries whose
ego networks overlap heavily.  :class:`QueryService` is the piece that turns
the solvers into that shape:

* **Feasible-graph cache** — extracted (and compiled) ego networks are
  LRU-cached per ``(initiator, radius)``, so repeated queries from the same
  initiator — the common case for an activity-planning product — skip both
  the bounded-Bellman–Ford extraction and the bitmask compilation.
* **Batch fan-out** — ``solve_many`` runs independent queries across a
  thread pool and returns results in submission order.  All cached
  structures are immutable, so no per-query locking is needed on the read
  path.
* **Observability** — ``stats()`` and ``cache_info()`` expose query counts,
  feasibility ratios, solver time and cache hit rates, the numbers a
  capacity planner needs.

Quickstart::

    from repro.core import SGQuery
    from repro.datasets import generate_real_dataset
    from repro.service import QueryService

    dataset = generate_real_dataset(n_people=194, seed=42)
    service = QueryService(dataset.graph, dataset.calendars)

    queries = [
        SGQuery(initiator=person, group_size=5, radius=1, acquaintance=2)
        for person in dataset.people[:50]
    ]
    results = service.solve_many(queries)          # thread-pool fan-out
    print(service.stats().as_dict())
    print(service.cache_info())                    # hits/misses/size

From the command line the same path is exposed as ``stgq serve`` (see
``python -m repro serve --help``), and ``benchmarks/bench_service.py``
measures the compiled-kernel speedup and the batch throughput.

See ``examples/batch_service.py`` for a narrated end-to-end demo.
"""

from .query_service import CacheInfo, QueryService, ServiceStats

__all__ = ["QueryService", "ServiceStats", "CacheInfo"]
