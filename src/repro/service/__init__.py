"""repro.service — batched query serving over one shared social graph.

Why a service layer
-------------------
The solvers in :mod:`repro.core` are single-query objects: every call to
``SGSelect.solve`` re-extracts the initiator's feasible graph and recompiles
it for the bitset kernel.  Real deployments look different — one large,
slowly-changing social graph, many concurrent users issuing queries whose
ego networks overlap heavily.  :class:`QueryService` is the piece that turns
the solvers into that shape:

* **Feasible-graph cache** — extracted (and compiled) ego networks are
  LRU-cached per ``(initiator, radius)``, so repeated queries from the same
  initiator — the common case for an activity-planning product — skip both
  the bounded-Bellman–Ford extraction and the bitmask compilation.
* **Pluggable executor backends** — ``solve_many`` delegates to an
  :class:`ExecutorBackend`: ``serial`` (in-process loop), ``thread`` (pool
  sharing the service cache; best when traffic is cache-hot) or ``process``
  (initiators sharded across persistent worker processes, each with its own
  graph copy and ego-network cache — the backend that scales the GIL-bound
  compiled kernel across cores).  See :mod:`repro.service.backends` and
  :mod:`repro.service.sharding`.
* **Async front-end** — ``solve_many_async`` lets an asyncio caller pipeline
  batches; ``stgq serve --jsonl`` exposes the same thing as a line-oriented
  stdin/stdout protocol (:mod:`repro.service.jsonl`).
* **Network cluster** — :mod:`repro.service.net` takes the service past one
  box: ``stgq worker`` serves a local ``QueryService`` over a length-framed
  TCP protocol, :class:`~repro.service.net.RemoteBackend` is the drop-in
  executor backend that shards initiators across those workers (CRC32
  fallback or a load-aware :class:`PlacementMap` with hot-ego replication
  and replica failover — see ``docs/placement.md``), and ``stgq cluster``
  boots a local N-worker cluster plus gateway in one command.  See
  ``docs/service.md`` for the architecture page and wire-protocol spec.
* **HTTP gateway tier** — :mod:`repro.service.http` is the product front
  door: stateless HTTP/JSON gateways (``stgq http``) with request
  validation, cursor pagination, per-API-key rate limiting and bounded-
  queue admission control that sheds overload with 429 + ``Retry-After``
  instead of melting the fleet.  N gateways front one TCP worker fleet;
  see ``docs/http.md``.
* **Live-graph mutations** — ``apply_mutations`` applies
  add-edge/remove-edge/availability changes to the serving graph, evicts
  exactly the cached egos that contain a touched vertex (reverse vertex
  index), and fans the versioned delta out to every worker — process-pool
  broadcast locally, ``delta``/``snapshot`` frames over TCP, with a
  mutation-log replay and a substrate-reload fallback bridging version
  gaps.  See ``docs/live_graph.md`` and ``stgq mutate``.
* **Observability** — ``stats()`` and ``cache_info()`` expose query counts,
  feasibility ratios, solver time and cache hit rates, the numbers a
  capacity planner needs — aggregated across workers whichever backend runs.
  Accounting flows through per-batch :class:`ExecutionContext` objects
  (:mod:`repro.service.context`): pass your own to ``solve_many`` for exact
  per-batch deltas, opt into per-response solver stats with
  ``"stats": true`` on a request, or run ``stgq stats --connect`` for the
  fleet view.

Quickstart::

    from repro.core import SGQuery
    from repro.datasets import generate_real_dataset
    from repro.service import QueryService

    dataset = generate_real_dataset(n_people=194, seed=42)
    with QueryService(dataset.graph, dataset.calendars, backend="process") as service:
        queries = [
            SGQuery(initiator=person, group_size=5, radius=1, acquaintance=2)
            for person in dataset.people[:50]
        ]
        results = service.solve_many(queries)      # sharded process fan-out
        print(service.stats().as_dict())
        print(service.cache_info())                # hits/misses/size

From the command line the same path is exposed as ``stgq serve`` (see
``python -m repro serve --help``), and ``benchmarks/bench_service.py``
measures the compiled-kernel speedup and per-backend batch throughput.

See ``examples/batch_service.py`` for a narrated end-to-end demo.
"""

from .backends import (
    ALL_BACKEND_NAMES,
    BACKEND_NAMES,
    ExecutorBackend,
    ProcessBackend,
    SerialBackend,
    ThreadBackend,
    make_backend,
)
from .codec import ErrorResult, query_from_request, response_for, wants_stats
from .context import ExecutionContext, ServiceStats
from .drain import ShutdownSignal, wait_for_drain
from .http import (
    GatewayApp,
    GatewayConfig,
    HTTPGateway,
    LocalGatewayCluster,
    run_gateway,
    start_local_gateways,
)
from .jsonl import serve_jsonl
from .net import (
    LocalWorkerCluster,
    RemoteBackend,
    WorkerServer,
    run_worker,
    start_local_workers,
)
from .placement import PlacementMap, build_placement, load_placement, save_placement
from .query_service import MUTATION_LOG_CAPACITY, CacheInfo, MutationReport, QueryService
from .sharding import RouteMetrics, ShardMap, stable_shard

__all__ = [
    "ALL_BACKEND_NAMES",
    "BACKEND_NAMES",
    "CacheInfo",
    "ErrorResult",
    "ExecutionContext",
    "ExecutorBackend",
    "GatewayApp",
    "GatewayConfig",
    "HTTPGateway",
    "LocalGatewayCluster",
    "LocalWorkerCluster",
    "MUTATION_LOG_CAPACITY",
    "MutationReport",
    "PlacementMap",
    "ProcessBackend",
    "QueryService",
    "RemoteBackend",
    "RouteMetrics",
    "SerialBackend",
    "ServiceStats",
    "ShardMap",
    "ShutdownSignal",
    "ThreadBackend",
    "WorkerServer",
    "build_placement",
    "load_placement",
    "make_backend",
    "query_from_request",
    "response_for",
    "run_gateway",
    "run_worker",
    "save_placement",
    "serve_jsonl",
    "stable_shard",
    "start_local_gateways",
    "start_local_workers",
    "wait_for_drain",
    "wants_stats",
]
