"""Request/response codec shared by the stdin JSONL loop and the socket path.

One query, one JSON object — the same payload shape travels over both
transports (``stgq serve --jsonl`` newline-delimited frames and the
length-framed ``batch`` frames of :mod:`repro.service.net.protocol`):

Request::

    {"id": 7, "initiator": 12, "group_size": 5, "radius": 1,
     "acquaintance": 2, "activity_length": 4}

``id`` is optional and echoed back verbatim.  The paper's short parameter
names are accepted as aliases (``p`` = group_size, ``s`` = radius,
``k`` = acquaintance, ``m`` = activity_length); omitting
``activity_length``/``m`` makes the request a purely social SGQ.  A request
may also set ``"stats": true`` (see :func:`wants_stats`) to opt into a
``stats`` field on its response carrying the solver's
:class:`~repro.core.result.SearchStats` — the end-to-end observability
hook: the kernel records the stats, the per-batch execution context carries
them, and the wire returns them to the client that asked.

Response::

    {"id": 7, "feasible": true, "members": [3, 9, 12, 17, 20],
     "total_distance": 6.5, "period": [10, 13], "solver": "STGSelect"}

``total_distance`` is ``null`` for infeasible results (JSON has no
``Infinity``); :func:`decode_result` maps it back to ``math.inf``.

Two encodings exist because the two sides need different fidelity:

* :func:`response_for` — the *client-facing* response above, lossy on
  purpose (no search statistics, no pivot bookkeeping).
* :func:`encode_result` / :func:`decode_result` — the *worker-facing*
  encoding used between a gateway and its remote workers: a full
  :class:`~repro.core.result.GroupResult` / ``STGroupResult`` round-trip
  including :class:`~repro.core.result.SearchStats`, so backend equivalence
  (identical results *and* stats) survives the network hop.

Vertex ids must be JSON-safe values (ints or strings — what every dataset in
this package uses); richer vertex objects would need their own codec.

:class:`ErrorResult` is the in-band failure marker: a result-shaped object a
backend can put in a batch slot when that request (and only that request)
could not be answered — e.g. its remote worker is down.  ``response_for``
renders it as ``{"id": ..., "error": ...}``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any, Dict, FrozenSet, List, Union

from ..core.query import SGQuery, STGQuery
from ..core.result import GroupResult, SearchStats, STGroupResult
from ..exceptions import QueryError
from ..temporal.slots import SlotRange
from ..types import Vertex

__all__ = [
    "MAX_REQUEST_BYTES",
    "ErrorResult",
    "decode_result",
    "encode_result",
    "query_from_request",
    "request_for",
    "response_for",
    "wants_stats",
]

Query = Union[SGQuery, STGQuery]
Result = Union[GroupResult, STGroupResult]

#: Upper bound on one encoded request (a well-formed request is < 200 bytes;
#: anything near this limit is a malformed or hostile client).  Enforced per
#: line by the JSONL loop and per frame by the socket protocol.
MAX_REQUEST_BYTES = 1_000_000

#: Paper-style aliases accepted in requests.
_ALIASES = {"p": "group_size", "s": "radius", "k": "acquaintance", "m": "activity_length"}
_FIELDS = ("initiator", "group_size", "radius", "acquaintance", "activity_length")


@dataclass(frozen=True)
class ErrorResult:
    """Result-shaped placeholder for one request that could not be answered.

    Quacks like an infeasible :class:`~repro.core.result.GroupResult` (so
    generic result handling keeps working) but carries the failure text in
    ``error`` and is rendered as an error response by :func:`response_for`.
    Error results are *not* counted in service stats — the query was never
    solved.
    """

    error: str
    solver: str = "error"
    feasible: bool = False
    members: FrozenSet[Vertex] = frozenset()
    total_distance: float = math.inf
    stats: SearchStats = field(default_factory=SearchStats)

    def sorted_members(self) -> List[Vertex]:
        """Mirror the result API: no members on a failed request."""
        return []


def query_from_request(payload: Dict[str, Any]) -> Query:
    """Build an :class:`SGQuery`/:class:`STGQuery` from one decoded request.

    Raises :class:`~repro.exceptions.QueryError` on missing or invalid
    fields, which both serve loops turn into an error response.
    """
    if not isinstance(payload, dict):
        raise QueryError(f"request must be a JSON object, got {type(payload).__name__}")
    fields: Dict[str, Any] = {}
    for key, value in payload.items():
        name = _ALIASES.get(key, key)
        if name in _FIELDS:
            if name in fields:
                raise QueryError(f"duplicate field {name!r} (alias collision)")
            fields[name] = value
    if "initiator" not in fields:
        raise QueryError("request is missing 'initiator'")
    if "group_size" not in fields:
        raise QueryError("request is missing 'group_size' (alias 'p')")
    fields.setdefault("radius", 1)
    fields.setdefault("acquaintance", 1)
    activity_length = fields.pop("activity_length", None)
    try:
        if activity_length is None:
            return SGQuery(**fields)
        return STGQuery(activity_length=activity_length, **fields)
    except TypeError as exc:  # non-numeric parameters and the like
        raise QueryError(f"invalid request parameters: {exc}") from exc


def request_for(query: Query, request_id: Any = None) -> Dict[str, Any]:
    """Encode a query as a request object (inverse of :func:`query_from_request`)."""
    payload: Dict[str, Any] = {
        "initiator": query.initiator,
        "group_size": query.group_size,
        "radius": query.radius,
        "acquaintance": query.acquaintance,
    }
    if isinstance(query, STGQuery):
        payload["activity_length"] = query.activity_length
    if request_id is not None:
        payload["id"] = request_id
    return payload


def wants_stats(payload: Any) -> bool:
    """True when a request payload opted into per-response search stats."""
    return isinstance(payload, dict) and bool(payload.get("stats"))


def response_for(
    request_id: Any, result: Union[Result, ErrorResult], include_stats: bool = False
) -> Dict[str, Any]:
    """Encode one solver result as a JSON-safe client response object.

    ``include_stats`` (the per-request ``"stats": true`` opt-in) adds a
    ``stats`` field with the solve's kernel statistics; error responses
    never carry one (the query was not solved).
    """
    if isinstance(result, ErrorResult):
        return {"id": request_id, "error": result.error}
    response: Dict[str, Any] = {
        "id": request_id,
        "feasible": result.feasible,
        "members": result.sorted_members(),
        "total_distance": result.total_distance if result.feasible else None,
        "solver": result.solver,
    }
    if isinstance(result, STGroupResult):
        response["period"] = list(result.period.as_tuple()) if result.period else None
    if include_stats:
        response["stats"] = result.stats.as_dict()
    return response


def _encode_range(value) -> Any:
    return list(value.as_tuple()) if value is not None else None


def encode_result(result: Result) -> Dict[str, Any]:
    """Full-fidelity encoding of a result for the gateway/worker wire.

    Unlike :func:`response_for` this keeps the search statistics and the
    temporal bookkeeping, so :func:`decode_result` reconstructs an object the
    gateway can hand to callers exactly as if the query ran locally.
    """
    finite = math.isfinite(result.total_distance)
    payload: Dict[str, Any] = {
        "kind": "stg" if isinstance(result, STGroupResult) else "sg",
        "feasible": result.feasible,
        "members": result.sorted_members(),
        "total_distance": result.total_distance if finite else None,
        "solver": result.solver,
        "stats": result.stats.as_dict(),
    }
    if isinstance(result, STGroupResult):
        payload["period"] = _encode_range(result.period)
        payload["pivot"] = result.pivot
        payload["shared_slots"] = _encode_range(result.shared_slots)
    return payload


def _decode_range(value) -> Any:
    return SlotRange(int(value[0]), int(value[1])) if value is not None else None


def decode_result(payload: Dict[str, Any]) -> Result:
    """Rebuild a :class:`GroupResult`/:class:`STGroupResult` from the wire.

    Raises :class:`~repro.exceptions.QueryError` when the payload does not
    look like an :func:`encode_result` product (a protocol-level defence:
    the gateway never trusts worker output blindly).
    """
    if not isinstance(payload, dict):
        raise QueryError(f"result payload must be a JSON object, got {type(payload).__name__}")
    kind = payload.get("kind")
    if kind not in ("sg", "stg"):
        raise QueryError(f"result payload has unknown kind {kind!r}")
    try:
        distance = payload["total_distance"]
        common = dict(
            feasible=bool(payload["feasible"]),
            members=frozenset(payload["members"]),
            total_distance=math.inf if distance is None else float(distance),
            solver=str(payload.get("solver", "")),
            stats=SearchStats(**payload.get("stats", {})),
        )
        if kind == "sg":
            return GroupResult(**common)
        return STGroupResult(
            period=_decode_range(payload.get("period")),
            pivot=payload.get("pivot"),
            shared_slots=_decode_range(payload.get("shared_slots")),
            **common,
        )
    except (KeyError, TypeError, ValueError) as exc:
        raise QueryError(f"malformed result payload: {exc}") from exc
