"""Batched query service over one shared social graph.

See :mod:`repro.service` for the subsystem overview.  This module holds the
front-end: :class:`QueryService` (the server object) and :class:`CacheInfo`
(a point-in-time snapshot of the feasible-graph cache).  Per-batch
accounting lives in :mod:`repro.service.context` (:class:`ExecutionContext`
/ :class:`ServiceStats`, re-exported here); batch execution strategies live
in :mod:`repro.service.backends`; initiator-to-worker routing lives in
:mod:`repro.service.sharding`.
"""

from __future__ import annotations

import asyncio
import functools
import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple, Union

from ..core.query import SearchParameters, SGQuery, STGQuery
from ..core.result import GroupResult, STGroupResult
from ..core.sgselect import SGSelect
from ..core.stgselect import STGSelect
from ..exceptions import QueryError, VertexNotFoundError
from ..graph.compiled import CompiledFeasibleGraph, compile_feasible_graph
from ..graph.extraction import FeasibleGraph, extract_feasible_graph
from ..graph.packed import PackedAdjacency, pack_adjacency
from ..graph.social_graph import SocialGraph
from ..temporal.calendars import CalendarStore
from ..types import Vertex
from .backends import ExecutorBackend, ThreadBackend, make_backend
from .context import ExecutionContext, ServiceStats

__all__ = ["QueryService", "ServiceStats", "CacheInfo", "ExecutionContext"]

Query = Union[SGQuery, STGQuery]
Result = Union[GroupResult, STGroupResult]

#: Cache key: one entry per (initiator, radius) ego network.
CacheKey = Tuple[Vertex, int]
#: Cache value: the extracted feasible graph plus the derived forms the
#: configured kernel runs on (compiled bitset graph, packed uint64 matrix).
#: Caching the derived forms next to the extraction is what lets every
#: query of every batch over one ego network share a single compilation
#: and a single packing.
CacheEntry = Tuple[FeasibleGraph, Optional[CompiledFeasibleGraph], Optional[PackedAdjacency]]


@dataclass(frozen=True)
class CacheInfo:
    """Point-in-time snapshot of the feasible-graph cache."""

    hits: int
    misses: int
    size: int
    max_size: int

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from the cache (0.0 when none yet)."""
        total = self.hits + self.misses
        return self.hits / total if total else 0.0


class QueryService:
    """Serve many SGQ/STGQ queries over one shared :class:`SocialGraph`.

    Parameters
    ----------
    graph:
        The social graph all queries run against.
    calendars:
        Availability schedules; required only for :class:`STGQuery` traffic.
    parameters:
        Search tunables forwarded to SGSelect/STGSelect (the default uses
        the compiled bitset kernel).
    cache_size:
        Maximum number of ``(initiator, radius)`` ego networks to keep
        (feasible graph + its compiled form).  Least-recently-used entries
        are evicted beyond that.  The ``process`` backend splits this budget
        evenly across its workers (keys partition by initiator).
    max_workers:
        Executor width for :meth:`solve_many`: threads for the ``thread``
        backend, worker processes (= shards) for ``process``.  Defaults to
        ``min(32, os.cpu_count() + 4)`` threads / ``os.cpu_count()``
        processes.
    backend:
        Batch execution strategy — ``"serial"``, ``"thread"`` (default) or
        ``"process"``, or a ready :class:`~repro.service.ExecutorBackend`
        instance.  See :mod:`repro.service.backends` for the trade-offs:
        ``thread`` shares this service's ego-network cache and wins on
        cache-hot traffic; ``process`` shards initiators across worker
        processes, each holding its own graph copy and cache, and scales the
        GIL-bound compiled kernel across cores.

    Notes
    -----
    Accounting: every batch (and every standalone :meth:`solve`) runs under
    an :class:`~repro.service.context.ExecutionContext` — the per-batch
    scope the solvers, the cache and the backends record into.  The context
    is merged into the service's lifetime totals exactly once, atomically,
    when the batch completes; a batch that raises merges nothing, so
    ``stats()`` is all-or-nothing per batch on every backend.  Callers may
    pass their own (single-use) context to read the exact per-batch delta —
    this is how the TCP worker answers concurrent batch frames from several
    gateways with exact ``stats_delta``\\ s and no cross-batch serialization.

    Thread safety: the cache is guarded by one lock and the lifetime totals
    by another; per-batch counters live in the batch's own context, so
    concurrent batches never contend on stats state.  Concurrent cache
    misses on the same ``(initiator, radius)`` key are single-flighted: one
    caller builds, the others wait and count a hit, so hit/miss totals are
    interleaving-independent.  The cached :class:`FeasibleGraph` /
    :class:`CompiledFeasibleGraph` values are immutable after construction,
    so concurrent searches share them without synchronisation.  The
    underlying graph must not be mutated while the service is live (mutating
    a served graph is a deployment error; build a new service instead).

    The service is a context manager; ``close()`` (or leaving the ``with``
    block) releases backend pools and worker processes.
    """

    def __init__(
        self,
        graph: SocialGraph,
        calendars: Optional[CalendarStore] = None,
        parameters: Optional[SearchParameters] = None,
        cache_size: int = 128,
        max_workers: Optional[int] = None,
        backend: Union[str, ExecutorBackend] = "thread",
    ) -> None:
        if cache_size < 1:
            raise QueryError(f"cache_size must be >= 1, got {cache_size}")
        self.graph = graph
        self.calendars = calendars
        self.parameters = parameters or SearchParameters()
        self.cache_size = cache_size
        self._cache: "OrderedDict[CacheKey, CacheEntry]" = OrderedDict()
        self._cache_lock = threading.Lock()
        self._cache_generation = 0
        self._pending_builds: Dict[CacheKey, threading.Event] = {}
        self._stats_lock = threading.Lock()
        self._stats = ServiceStats()
        self._backend = make_backend(backend, max_workers)
        self.max_workers = self._backend.workers

    @property
    def backend(self) -> ExecutorBackend:
        """The executor backend answering this service's batches."""
        return self._backend

    @property
    def backend_name(self) -> str:
        """Name of the active backend (``serial`` / ``thread`` / ``process``)."""
        return self._backend.name

    # ------------------------------------------------------------------
    # feasible-graph cache
    # ------------------------------------------------------------------
    def _lookup(self, initiator: Vertex, radius: int, context: ExecutionContext) -> CacheEntry:
        """Return the (feasible, compiled, packed) entry for an ego network.

        The hit/miss is counted into ``context`` (the batch's scope, not the
        service globals).  Concurrent misses on the same key are
        single-flighted: the first caller builds while the others wait on an
        event and then count a hit — so the hit/miss totals are independent
        of how batches interleave, which is what keeps ``cache_info()``
        backend-invariant now that batches run concurrently.

        Builds are generation-stamped against :meth:`clear_cache`: a build
        that was in flight when the cache was cleared still returns its
        result to its own caller (computed from the graph at call time) but
        must not re-insert the now-stale entry, so insertion is skipped
        unless the generation still matches the one the build started
        under.
        """
        key = (initiator, radius)
        while True:
            wait_for: Optional[threading.Event] = None
            with self._cache_lock:
                entry = self._cache.get(key)
                if entry is not None:
                    self._cache.move_to_end(key)
                else:
                    generation = self._cache_generation
                    pending = self._pending_builds.get(key)
                    if pending is None:
                        event = self._pending_builds[key] = threading.Event()
                    else:
                        wait_for = pending
            if entry is not None:
                context.record_cache(hit=True)
                return entry
            if wait_for is None:
                break  # this caller owns the build
            wait_for.wait()
            # The builder finished (or failed): re-check the cache.  If the
            # build failed — or the entry was already evicted — the loop
            # promotes this caller to builder.
        context.record_cache(hit=False)
        try:
            # Build outside the locks: extraction can be expensive.
            kernel = self.parameters.kernel
            feasible = extract_feasible_graph(self.graph, initiator, radius)
            compiled = compile_feasible_graph(feasible) if kernel != "reference" else None
            packed = pack_adjacency(compiled) if kernel == "numpy" else None
            with self._cache_lock:
                if self._cache_generation == generation:
                    self._cache[key] = (feasible, compiled, packed)
                    self._cache.move_to_end(key)
                    while len(self._cache) > self.cache_size:
                        self._cache.popitem(last=False)
        finally:
            # Always release waiters, even when the build raised (they will
            # retry and surface their own error).  Only pop the event if it
            # is still ours — a concurrent clear/rebuild cycle may have
            # installed a successor builder's event under the same key.
            with self._cache_lock:
                if self._pending_builds.get(key) is event:
                    del self._pending_builds[key]
            event.set()
        return feasible, compiled, packed

    def cache_info(self) -> CacheInfo:
        """Snapshot of cache effectiveness (aggregated across process workers)."""
        with self._stats_lock:
            hits = self._stats.cache_hits
            misses = self._stats.cache_misses
        size = self._backend.cache_entries()
        if size is None:
            with self._cache_lock:
                size = len(self._cache)
        return CacheInfo(hits=hits, misses=misses, size=size, max_size=self.cache_size)

    def clear_cache(self) -> None:
        """Drop every cached ego network (e.g. after the graph changed).

        Reaches *every* cache the service's backend answers from, not just
        the front-end one: the ``process`` backend broadcasts the clear to
        its pool workers (re-shipping the current graph/calendars, so a
        mutated graph is actually reloaded), and the ``remote`` backend
        sends a ``cache_clear`` control frame to every TCP worker.  The
        generation bump invalidates builds still in flight: a build that
        started before the clear completes normally for its caller but no
        longer inserts its (pre-clear) entry.

        Raises
        ------
        WorkerUnavailableError
            On the ``remote`` backend, when a worker cannot be reached —
            the invalidation would be incomplete, which the caller must
            know about (a worker that kept its cache would keep serving
            pre-change ego networks).
        """
        with self._cache_lock:
            self._cache_generation += 1
            self._cache.clear()
        self._backend.clear_caches(self)

    # ------------------------------------------------------------------
    # solving
    # ------------------------------------------------------------------
    def _validate(self, query: Query) -> None:
        """Reject malformed traffic before it reaches an executor.

        Unknown initiators are rejected here rather than deep inside the
        extraction so every backend fails identically — the remote backend
        would otherwise degrade them to in-band error results while the
        local backends raise.
        """
        if isinstance(query, STGQuery):
            if self.calendars is None:
                raise QueryError("a CalendarStore is required for social-temporal queries")
        elif not isinstance(query, SGQuery):
            raise QueryError(f"unsupported query type {type(query).__name__}")
        if query.initiator not in self.graph:
            raise VertexNotFoundError(query.initiator)

    def _merge_context(self, context: ExecutionContext) -> None:
        """Fold one completed batch context into the lifetime totals.

        This is the *only* writer of the service-global counters — one
        atomic merge per completed batch, never touched mid-flight — which
        is what lets any number of batches run concurrently with exact
        per-batch deltas.
        """
        with self._stats_lock:
            self._stats.merge_dict(context.as_delta())

    def _solve_local(self, query: Query, context: ExecutionContext) -> Result:
        """Answer one query on the calling thread against the local cache.

        Only reachable through :meth:`solve` / :meth:`solve_many`, which
        validate the query first.  Cache lookups, kernel statistics and the
        result's service counters are all recorded into ``context``.
        """
        is_stg = isinstance(query, STGQuery)
        feasible, compiled, packed = self._lookup(query.initiator, query.radius, context)
        if is_stg:
            result: Result = STGSelect(self.graph, self.calendars, self.parameters).solve(
                query,
                feasible_graph=feasible,
                compiled_graph=compiled,
                packed_graph=packed,
                context=context,
            )
        else:
            result = SGSelect(self.graph, self.parameters).solve(
                query,
                feasible_graph=feasible,
                compiled_graph=compiled,
                packed_graph=packed,
                context=context,
            )
        context.record_result(result, is_stg)
        return result

    def solve(self, query: Query, context: Optional[ExecutionContext] = None) -> Result:
        """Answer one query (SGQ or STGQ) and update the service stats.

        Routed through the backend, so with ``backend="process"`` even a
        single query lands on the worker owning its initiator (keeping that
        worker's cache hot).  ``context`` (optional, single-use) receives
        the solve's exact accounting delta; one is created internally when
        omitted.  Either way the delta is merged into the service totals on
        completion.
        """
        self._validate(query)
        ctx = context if context is not None else ExecutionContext()
        result = self._backend.solve_batch(self, [query], ctx)[0]
        self._merge_context(ctx)
        return result

    def solve_many(
        self,
        queries: Iterable[Query],
        max_workers: Optional[int] = None,
        context: Optional[ExecutionContext] = None,
    ) -> List[Result]:
        """Answer a batch of independent queries concurrently.

        Results are returned in the order of ``queries`` regardless of
        completion order.  Execution is delegated to the configured backend;
        ``max_workers`` overrides the pool width for this call only on the
        ``thread`` backend (kept for backward compatibility — process pools
        are persistent and keep their shard count).

        ``context`` (optional) is the batch's accounting scope: pass a fresh
        :class:`~repro.service.context.ExecutionContext` to read this
        batch's exact stats delta afterwards (``context.as_delta()``); one
        is created internally when omitted.  The context is merged into the
        service totals exactly once when the batch completes — a batch that
        raises merges nothing — and must not be reused for another batch.
        """
        batch: Sequence[Query] = list(queries)
        if not batch:
            return []
        for query in batch:
            self._validate(query)
        ctx = context if context is not None else ExecutionContext()
        if max_workers is not None and self._backend.name == "thread":
            override = ThreadBackend(max_workers)
            try:
                results = override.solve_batch(self, batch, ctx)
            finally:
                override.close()
        else:
            results = self._backend.solve_batch(self, batch, ctx)
        self._merge_context(ctx)
        return results

    # ------------------------------------------------------------------
    # async front-end
    # ------------------------------------------------------------------
    async def solve_async(self, query: Query) -> Result:
        """Awaitable :meth:`solve`; runs on the event loop's default executor."""
        loop = asyncio.get_running_loop()
        return await loop.run_in_executor(None, self.solve, query)

    async def solve_many_async(
        self,
        queries: Iterable[Query],
        max_workers: Optional[int] = None,
        context: Optional[ExecutionContext] = None,
    ) -> List[Result]:
        """Awaitable :meth:`solve_many` for pipelining batches.

        The batch runs on the event loop's default executor, so an asyncio
        front-end (e.g. the ``stgq serve --jsonl`` loop or the TCP worker)
        can overlap reading and writing one batch with solving the next.
        With the ``process`` backend the heavy lifting happens outside the
        GIL entirely, so several in-flight batches genuinely run in
        parallel.  ``context`` is forwarded to :meth:`solve_many` — each
        in-flight batch gets its own, so their deltas never smear.
        """
        batch: Sequence[Query] = list(queries)
        loop = asyncio.get_running_loop()
        call = functools.partial(self.solve_many, batch, max_workers, context)
        return await loop.run_in_executor(None, call)

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def close(self) -> None:
        """Release backend pools and worker processes (idempotent)."""
        self._backend.close()

    def __enter__(self) -> "QueryService":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    # ------------------------------------------------------------------
    # observability
    # ------------------------------------------------------------------
    def stats(self) -> ServiceStats:
        """Copy of the aggregate service counters."""
        with self._stats_lock:
            return ServiceStats(**self._stats.as_dict())  # type: ignore[arg-type]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        info = self.cache_info()
        return (
            f"QueryService(backend={self._backend.name!r}, queries={self._stats.queries}, "
            f"cache={info.size}/{info.max_size}, hit_rate={info.hit_rate:.2f})"
        )
