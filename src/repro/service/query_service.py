"""Batched query service over one shared social graph.

See :mod:`repro.service` for the subsystem overview.  This module holds the
implementation: :class:`QueryService` (the server object),
:class:`ServiceStats` (its observable counters) and :class:`CacheInfo`
(a point-in-time snapshot of the feasible-graph cache).
"""

from __future__ import annotations

import os
import threading
import time
from collections import OrderedDict
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple, Union

from ..core.query import SearchParameters, SGQuery, STGQuery
from ..core.result import GroupResult, STGroupResult
from ..core.sgselect import SGSelect
from ..core.stgselect import STGSelect
from ..exceptions import QueryError
from ..graph.compiled import CompiledFeasibleGraph, compile_feasible_graph
from ..graph.extraction import FeasibleGraph, extract_feasible_graph
from ..graph.social_graph import SocialGraph
from ..temporal.calendars import CalendarStore
from ..types import Vertex

__all__ = ["QueryService", "ServiceStats", "CacheInfo"]

Query = Union[SGQuery, STGQuery]
Result = Union[GroupResult, STGroupResult]

#: Cache key: one entry per (initiator, radius) ego network.
CacheKey = Tuple[Vertex, int]


@dataclass(frozen=True)
class CacheInfo:
    """Point-in-time snapshot of the feasible-graph cache."""

    hits: int
    misses: int
    size: int
    max_size: int

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from the cache (0.0 when none yet)."""
        total = self.hits + self.misses
        return self.hits / total if total else 0.0


@dataclass
class ServiceStats:
    """Aggregate counters the service exposes for observability.

    ``solve_seconds`` sums the wall-clock time spent inside the solvers
    (not queueing), so ``queries / solve_seconds`` is the per-worker solve
    rate while the ``solve_many`` wall-clock gives end-to-end throughput.
    """

    queries: int = 0
    sg_queries: int = 0
    stg_queries: int = 0
    feasible: int = 0
    infeasible: int = 0
    cache_hits: int = 0
    cache_misses: int = 0
    solve_seconds: float = 0.0
    nodes_expanded: int = 0

    def as_dict(self) -> Dict[str, float]:
        """Return the counters as a plain dict (for CSV/JSON reporting)."""
        return {
            "queries": self.queries,
            "sg_queries": self.sg_queries,
            "stg_queries": self.stg_queries,
            "feasible": self.feasible,
            "infeasible": self.infeasible,
            "cache_hits": self.cache_hits,
            "cache_misses": self.cache_misses,
            "solve_seconds": self.solve_seconds,
            "nodes_expanded": self.nodes_expanded,
        }


class QueryService:
    """Serve many SGQ/STGQ queries over one shared :class:`SocialGraph`.

    Parameters
    ----------
    graph:
        The social graph all queries run against.
    calendars:
        Availability schedules; required only for :class:`STGQuery` traffic.
    parameters:
        Search tunables forwarded to SGSelect/STGSelect (the default uses
        the compiled bitset kernel).
    cache_size:
        Maximum number of ``(initiator, radius)`` ego networks to keep
        (feasible graph + its compiled form).  Least-recently-used entries
        are evicted beyond that.
    max_workers:
        Thread-pool width for :meth:`solve_many`.  Defaults to
        ``min(32, os.cpu_count() + 4)``.

    Notes
    -----
    Thread safety: the cache is guarded by a lock; the cached
    :class:`FeasibleGraph` / :class:`CompiledFeasibleGraph` values are
    immutable after construction, so concurrent searches share them without
    synchronisation.  The underlying graph must not be mutated while the
    service is live (mutating a served graph is a deployment error; build a
    new service instead).
    """

    def __init__(
        self,
        graph: SocialGraph,
        calendars: Optional[CalendarStore] = None,
        parameters: Optional[SearchParameters] = None,
        cache_size: int = 128,
        max_workers: Optional[int] = None,
    ) -> None:
        if cache_size < 1:
            raise QueryError(f"cache_size must be >= 1, got {cache_size}")
        self.graph = graph
        self.calendars = calendars
        self.parameters = parameters or SearchParameters()
        self._cache_size = cache_size
        self._cache: "OrderedDict[CacheKey, Tuple[FeasibleGraph, Optional[CompiledFeasibleGraph]]]" = (
            OrderedDict()
        )
        self._lock = threading.Lock()
        self._stats = ServiceStats()
        self.max_workers = max_workers or min(32, (os.cpu_count() or 1) + 4)

    # ------------------------------------------------------------------
    # feasible-graph cache
    # ------------------------------------------------------------------
    def _lookup(self, initiator: Vertex, radius: int) -> Tuple[FeasibleGraph, Optional[CompiledFeasibleGraph]]:
        """Return the (feasible, compiled) pair for an ego network, caching it."""
        key = (initiator, radius)
        with self._lock:
            entry = self._cache.get(key)
            if entry is not None:
                self._cache.move_to_end(key)
                self._stats.cache_hits += 1
                return entry
            self._stats.cache_misses += 1
        # Build outside the lock: extraction can be expensive and two threads
        # racing on the same key simply do redundant work once.
        feasible = extract_feasible_graph(self.graph, initiator, radius)
        compiled = (
            compile_feasible_graph(feasible) if self.parameters.kernel == "compiled" else None
        )
        with self._lock:
            self._cache[key] = (feasible, compiled)
            self._cache.move_to_end(key)
            while len(self._cache) > self._cache_size:
                self._cache.popitem(last=False)
        return feasible, compiled

    def cache_info(self) -> CacheInfo:
        """Snapshot of cache effectiveness."""
        with self._lock:
            return CacheInfo(
                hits=self._stats.cache_hits,
                misses=self._stats.cache_misses,
                size=len(self._cache),
                max_size=self._cache_size,
            )

    def clear_cache(self) -> None:
        """Drop every cached ego network (e.g. after the graph changed)."""
        with self._lock:
            self._cache.clear()

    # ------------------------------------------------------------------
    # solving
    # ------------------------------------------------------------------
    def solve(self, query: Query) -> Result:
        """Answer one query (SGQ or STGQ) and update the service stats."""
        if isinstance(query, STGQuery):
            if self.calendars is None:
                raise QueryError("a CalendarStore is required for social-temporal queries")
            feasible, compiled = self._lookup(query.initiator, query.radius)
            result: Result = STGSelect(self.graph, self.calendars, self.parameters).solve(
                query, feasible_graph=feasible, compiled_graph=compiled
            )
            is_stg = True
        elif isinstance(query, SGQuery):
            feasible, compiled = self._lookup(query.initiator, query.radius)
            result = SGSelect(self.graph, self.parameters).solve(
                query, feasible_graph=feasible, compiled_graph=compiled
            )
            is_stg = False
        else:
            raise QueryError(f"unsupported query type {type(query).__name__}")

        with self._lock:
            self._stats.queries += 1
            if is_stg:
                self._stats.stg_queries += 1
            else:
                self._stats.sg_queries += 1
            if result.feasible:
                self._stats.feasible += 1
            else:
                self._stats.infeasible += 1
            self._stats.solve_seconds += result.stats.elapsed_seconds
            self._stats.nodes_expanded += result.stats.nodes_expanded
        return result

    def solve_many(
        self,
        queries: Iterable[Query],
        max_workers: Optional[int] = None,
    ) -> List[Result]:
        """Answer a batch of independent queries concurrently.

        Results are returned in the order of ``queries`` regardless of
        completion order.  Queries are independent reads over the shared
        graph, so fan-out across a thread pool is safe; with the compiled
        kernel the per-query work is popcount-dominated, which keeps the
        GIL contention tolerable and lets cache-warm batches overlap
        extraction with search.
        """
        batch: Sequence[Query] = list(queries)
        if not batch:
            return []
        workers = max_workers or self.max_workers
        if workers <= 1 or len(batch) == 1:
            return [self.solve(q) for q in batch]
        with ThreadPoolExecutor(max_workers=workers) as pool:
            return list(pool.map(self.solve, batch))

    # ------------------------------------------------------------------
    # observability
    # ------------------------------------------------------------------
    def stats(self) -> ServiceStats:
        """Copy of the aggregate service counters."""
        with self._lock:
            return ServiceStats(**self._stats.as_dict())  # type: ignore[arg-type]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        info = self.cache_info()
        return (
            f"QueryService(queries={self._stats.queries}, "
            f"cache={info.size}/{info.max_size}, hit_rate={info.hit_rate:.2f})"
        )
