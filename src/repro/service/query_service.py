"""Batched query service over one shared social graph.

See :mod:`repro.service` for the subsystem overview.  This module holds the
front-end: :class:`QueryService` (the server object), :class:`ServiceStats`
(its observable counters) and :class:`CacheInfo` (a point-in-time snapshot of
the feasible-graph cache).  Batch execution strategies live in
:mod:`repro.service.backends`; initiator-to-worker routing lives in
:mod:`repro.service.sharding`.
"""

from __future__ import annotations

import asyncio
import functools
import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple, Union

from ..core.query import SearchParameters, SGQuery, STGQuery
from ..core.result import GroupResult, STGroupResult
from ..core.sgselect import SGSelect
from ..core.stgselect import STGSelect
from ..exceptions import QueryError, VertexNotFoundError
from ..graph.compiled import CompiledFeasibleGraph, compile_feasible_graph
from ..graph.extraction import FeasibleGraph, extract_feasible_graph
from ..graph.social_graph import SocialGraph
from ..temporal.calendars import CalendarStore
from ..types import Vertex
from .backends import ExecutorBackend, ThreadBackend, make_backend

__all__ = ["QueryService", "ServiceStats", "CacheInfo"]

Query = Union[SGQuery, STGQuery]
Result = Union[GroupResult, STGroupResult]

#: Cache key: one entry per (initiator, radius) ego network.
CacheKey = Tuple[Vertex, int]
#: Cache value: the extracted feasible graph and its compiled bitset form.
CacheEntry = Tuple[FeasibleGraph, Optional[CompiledFeasibleGraph]]


@dataclass(frozen=True)
class CacheInfo:
    """Point-in-time snapshot of the feasible-graph cache."""

    hits: int
    misses: int
    size: int
    max_size: int

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from the cache (0.0 when none yet)."""
        total = self.hits + self.misses
        return self.hits / total if total else 0.0


@dataclass
class ServiceStats:
    """Aggregate counters the service exposes for observability.

    ``solve_seconds`` sums the wall-clock time spent inside the solvers
    (not queueing), so ``queries / solve_seconds`` is the per-worker solve
    rate while the ``solve_many`` wall-clock gives end-to-end throughput.

    With the ``process`` backend the counters are accumulated inside each
    worker and merged into the parent on every batch, so the aggregate view
    is identical whichever backend answered the queries.
    """

    queries: int = 0
    sg_queries: int = 0
    stg_queries: int = 0
    feasible: int = 0
    infeasible: int = 0
    cache_hits: int = 0
    cache_misses: int = 0
    solve_seconds: float = 0.0
    nodes_expanded: int = 0

    def as_dict(self) -> Dict[str, float]:
        """Return the counters as a plain dict (for CSV/JSON reporting)."""
        return {
            "queries": self.queries,
            "sg_queries": self.sg_queries,
            "stg_queries": self.stg_queries,
            "feasible": self.feasible,
            "infeasible": self.infeasible,
            "cache_hits": self.cache_hits,
            "cache_misses": self.cache_misses,
            "solve_seconds": self.solve_seconds,
            "nodes_expanded": self.nodes_expanded,
        }

    def merge_dict(self, delta: Dict[str, float]) -> None:
        """Accumulate a counter delta (as produced by ``as_dict`` diffs)."""
        self.queries += int(delta.get("queries", 0))
        self.sg_queries += int(delta.get("sg_queries", 0))
        self.stg_queries += int(delta.get("stg_queries", 0))
        self.feasible += int(delta.get("feasible", 0))
        self.infeasible += int(delta.get("infeasible", 0))
        self.cache_hits += int(delta.get("cache_hits", 0))
        self.cache_misses += int(delta.get("cache_misses", 0))
        self.solve_seconds += float(delta.get("solve_seconds", 0.0))
        self.nodes_expanded += int(delta.get("nodes_expanded", 0))


class QueryService:
    """Serve many SGQ/STGQ queries over one shared :class:`SocialGraph`.

    Parameters
    ----------
    graph:
        The social graph all queries run against.
    calendars:
        Availability schedules; required only for :class:`STGQuery` traffic.
    parameters:
        Search tunables forwarded to SGSelect/STGSelect (the default uses
        the compiled bitset kernel).
    cache_size:
        Maximum number of ``(initiator, radius)`` ego networks to keep
        (feasible graph + its compiled form).  Least-recently-used entries
        are evicted beyond that.  The ``process`` backend splits this budget
        evenly across its workers (keys partition by initiator).
    max_workers:
        Executor width for :meth:`solve_many`: threads for the ``thread``
        backend, worker processes (= shards) for ``process``.  Defaults to
        ``min(32, os.cpu_count() + 4)`` threads / ``os.cpu_count()``
        processes.
    backend:
        Batch execution strategy — ``"serial"``, ``"thread"`` (default) or
        ``"process"``, or a ready :class:`~repro.service.ExecutorBackend`
        instance.  See :mod:`repro.service.backends` for the trade-offs:
        ``thread`` shares this service's ego-network cache and wins on
        cache-hot traffic; ``process`` shards initiators across worker
        processes, each holding its own graph copy and cache, and scales the
        GIL-bound compiled kernel across cores.

    Notes
    -----
    Thread safety: the cache is guarded by one lock and the stats counters
    by another (finer-grained, so pool threads recording results never
    contend with cache lookups).  The cached :class:`FeasibleGraph` /
    :class:`CompiledFeasibleGraph` values are immutable after construction,
    so concurrent searches share them without synchronisation.  The
    underlying graph must not be mutated while the service is live (mutating
    a served graph is a deployment error; build a new service instead).

    The service is a context manager; ``close()`` (or leaving the ``with``
    block) releases backend pools and worker processes.
    """

    def __init__(
        self,
        graph: SocialGraph,
        calendars: Optional[CalendarStore] = None,
        parameters: Optional[SearchParameters] = None,
        cache_size: int = 128,
        max_workers: Optional[int] = None,
        backend: Union[str, ExecutorBackend] = "thread",
    ) -> None:
        if cache_size < 1:
            raise QueryError(f"cache_size must be >= 1, got {cache_size}")
        self.graph = graph
        self.calendars = calendars
        self.parameters = parameters or SearchParameters()
        self.cache_size = cache_size
        self._cache: "OrderedDict[CacheKey, CacheEntry]" = OrderedDict()
        self._cache_lock = threading.Lock()
        self._stats_lock = threading.Lock()
        self._stats = ServiceStats()
        self._backend = make_backend(backend, max_workers)
        self.max_workers = self._backend.workers

    @property
    def backend(self) -> ExecutorBackend:
        """The executor backend answering this service's batches."""
        return self._backend

    @property
    def backend_name(self) -> str:
        """Name of the active backend (``serial`` / ``thread`` / ``process``)."""
        return self._backend.name

    # ------------------------------------------------------------------
    # feasible-graph cache
    # ------------------------------------------------------------------
    def _lookup(
        self, initiator: Vertex, radius: int
    ) -> Tuple[FeasibleGraph, Optional[CompiledFeasibleGraph]]:
        """Return the (feasible, compiled) pair for an ego network, caching it."""
        key = (initiator, radius)
        with self._cache_lock:
            entry = self._cache.get(key)
            if entry is not None:
                self._cache.move_to_end(key)
        if entry is not None:
            with self._stats_lock:
                self._stats.cache_hits += 1
            return entry
        with self._stats_lock:
            self._stats.cache_misses += 1
        # Build outside the locks: extraction can be expensive and two threads
        # racing on the same key simply do redundant work once.
        feasible = extract_feasible_graph(self.graph, initiator, radius)
        compiled = (
            compile_feasible_graph(feasible) if self.parameters.kernel == "compiled" else None
        )
        with self._cache_lock:
            self._cache[key] = (feasible, compiled)
            self._cache.move_to_end(key)
            while len(self._cache) > self.cache_size:
                self._cache.popitem(last=False)
        return feasible, compiled

    def cache_info(self) -> CacheInfo:
        """Snapshot of cache effectiveness (aggregated across process workers)."""
        with self._stats_lock:
            hits = self._stats.cache_hits
            misses = self._stats.cache_misses
        size = self._backend.cache_entries()
        if size is None:
            with self._cache_lock:
                size = len(self._cache)
        return CacheInfo(hits=hits, misses=misses, size=size, max_size=self.cache_size)

    def clear_cache(self) -> None:
        """Drop every cached ego network (e.g. after the graph changed)."""
        with self._cache_lock:
            self._cache.clear()

    # ------------------------------------------------------------------
    # solving
    # ------------------------------------------------------------------
    def _validate(self, query: Query) -> None:
        """Reject malformed traffic before it reaches an executor.

        Unknown initiators are rejected here rather than deep inside the
        extraction so every backend fails identically — the remote backend
        would otherwise degrade them to in-band error results while the
        local backends raise.
        """
        if isinstance(query, STGQuery):
            if self.calendars is None:
                raise QueryError("a CalendarStore is required for social-temporal queries")
        elif not isinstance(query, SGQuery):
            raise QueryError(f"unsupported query type {type(query).__name__}")
        if query.initiator not in self.graph:
            raise VertexNotFoundError(query.initiator)

    def _record(self, result: Result, is_stg: bool) -> None:
        """Fold one result into the service counters (race-free)."""
        with self._stats_lock:
            self._stats.queries += 1
            if is_stg:
                self._stats.stg_queries += 1
            else:
                self._stats.sg_queries += 1
            if result.feasible:
                self._stats.feasible += 1
            else:
                self._stats.infeasible += 1
            self._stats.solve_seconds += result.stats.elapsed_seconds
            self._stats.nodes_expanded += result.stats.nodes_expanded

    def _merge_stats_delta(self, delta: Dict[str, float]) -> None:
        """Merge a worker-produced counter delta (process backend)."""
        with self._stats_lock:
            self._stats.merge_dict(delta)

    def _solve_local(self, query: Query) -> Result:
        """Answer one query on the calling thread against the local cache.

        Only reachable through :meth:`solve` / :meth:`solve_many`, which
        validate the query first.
        """
        is_stg = isinstance(query, STGQuery)
        feasible, compiled = self._lookup(query.initiator, query.radius)
        if is_stg:
            result: Result = STGSelect(self.graph, self.calendars, self.parameters).solve(
                query, feasible_graph=feasible, compiled_graph=compiled
            )
        else:
            result = SGSelect(self.graph, self.parameters).solve(
                query, feasible_graph=feasible, compiled_graph=compiled
            )
        self._record(result, is_stg)
        return result

    def solve(self, query: Query) -> Result:
        """Answer one query (SGQ or STGQ) and update the service stats.

        Routed through the backend, so with ``backend="process"`` even a
        single query lands on the worker owning its initiator (keeping that
        worker's cache hot).
        """
        self._validate(query)
        return self._backend.solve_batch(self, [query])[0]

    def solve_many(
        self,
        queries: Iterable[Query],
        max_workers: Optional[int] = None,
    ) -> List[Result]:
        """Answer a batch of independent queries concurrently.

        Results are returned in the order of ``queries`` regardless of
        completion order.  Execution is delegated to the configured backend;
        ``max_workers`` overrides the pool width for this call only on the
        ``thread`` backend (kept for backward compatibility — process pools
        are persistent and keep their shard count).
        """
        batch: Sequence[Query] = list(queries)
        if not batch:
            return []
        for query in batch:
            self._validate(query)
        if max_workers is not None and self._backend.name == "thread":
            override = ThreadBackend(max_workers)
            try:
                return override.solve_batch(self, batch)
            finally:
                override.close()
        return self._backend.solve_batch(self, batch)

    # ------------------------------------------------------------------
    # async front-end
    # ------------------------------------------------------------------
    async def solve_async(self, query: Query) -> Result:
        """Awaitable :meth:`solve`; runs on the event loop's default executor."""
        loop = asyncio.get_running_loop()
        return await loop.run_in_executor(None, self.solve, query)

    async def solve_many_async(
        self,
        queries: Iterable[Query],
        max_workers: Optional[int] = None,
    ) -> List[Result]:
        """Awaitable :meth:`solve_many` for pipelining batches.

        The batch runs on the event loop's default executor, so an asyncio
        front-end (e.g. the ``stgq serve --jsonl`` loop) can overlap reading
        and writing one batch with solving the next.  With the ``process``
        backend the heavy lifting happens outside the GIL entirely, so
        several in-flight batches genuinely run in parallel.
        """
        batch: Sequence[Query] = list(queries)
        loop = asyncio.get_running_loop()
        call = functools.partial(self.solve_many, batch, max_workers)
        return await loop.run_in_executor(None, call)

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def close(self) -> None:
        """Release backend pools and worker processes (idempotent)."""
        self._backend.close()

    def __enter__(self) -> "QueryService":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    # ------------------------------------------------------------------
    # observability
    # ------------------------------------------------------------------
    def stats(self) -> ServiceStats:
        """Copy of the aggregate service counters."""
        with self._stats_lock:
            return ServiceStats(**self._stats.as_dict())  # type: ignore[arg-type]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        info = self.cache_info()
        return (
            f"QueryService(backend={self._backend.name!r}, queries={self._stats.queries}, "
            f"cache={info.size}/{info.max_size}, hit_rate={info.hit_rate:.2f})"
        )
