"""Batched query service over one shared social graph.

See :mod:`repro.service` for the subsystem overview.  This module holds the
front-end: :class:`QueryService` (the server object) and :class:`CacheInfo`
(a point-in-time snapshot of the feasible-graph cache).  Per-batch
accounting lives in :mod:`repro.service.context` (:class:`ExecutionContext`
/ :class:`ServiceStats`, re-exported here); batch execution strategies live
in :mod:`repro.service.backends`; initiator-to-worker routing lives in
:mod:`repro.service.sharding`.
"""

from __future__ import annotations

import asyncio
import functools
import threading
from collections import OrderedDict, deque
from dataclasses import dataclass
from typing import Deque, Dict, Iterable, List, Optional, Sequence, Set, Tuple, Union

from ..core.query import SearchParameters, SGQuery, STGQuery
from ..core.result import GroupResult, STGroupResult
from ..core.sgselect import SGSelect
from ..core.stgselect import STGSelect
from ..exceptions import ProtocolError, QueryError, ReproError, VertexNotFoundError
from ..graph.compiled import CompiledFeasibleGraph
from ..graph.extraction import FeasibleGraph, extract_query_forms
from ..graph.mutations import (
    Mutation,
    MutationBatch,
    apply_mutation,
    graph_from_snapshot,
    graph_to_snapshot,
)
from ..graph.overlay import GraphOverlay
from ..graph.packed import PackedAdjacency
from ..graph.social_graph import SocialGraph
from ..temporal.calendars import CalendarStore
from ..types import Vertex
from .backends import ExecutorBackend, ThreadBackend, make_backend
from .placement import PlacementMap
from .context import ExecutionContext, ServiceStats

__all__ = [
    "QueryService",
    "ServiceStats",
    "CacheInfo",
    "ExecutionContext",
    "MutationReport",
    "MUTATION_LOG_CAPACITY",
]

#: How many applied MutationBatches the service keeps for delta catch-up.
#: A replica whose version gap is no longer covered by the log falls back
#: to a full snapshot (see ``docs/live_graph.md``).
MUTATION_LOG_CAPACITY = 1024

Query = Union[SGQuery, STGQuery]
Result = Union[GroupResult, STGroupResult]

#: Cache key: one entry per (initiator, radius) ego network.
CacheKey = Tuple[Vertex, int]
#: Cache value: the extracted feasible graph plus the derived forms the
#: configured kernel runs on (compiled bitset graph, packed uint64 matrix).
#: Caching the derived forms next to the extraction is what lets every
#: query of every batch over one ego network share a single compilation
#: and a single packing.
CacheEntry = Tuple[FeasibleGraph, Optional[CompiledFeasibleGraph], Optional[PackedAdjacency]]


@dataclass(frozen=True)
class CacheInfo:
    """Point-in-time snapshot of the feasible-graph cache."""

    hits: int
    misses: int
    size: int
    max_size: int

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from the cache (0.0 when none yet)."""
        total = self.hits + self.misses
        return self.hits / total if total else 0.0


@dataclass(frozen=True)
class MutationReport:
    """What one :meth:`QueryService.apply_mutations` call did.

    ``invalidated`` counts front-end cache entries evicted by targeted
    invalidation; ``worker_invalidations`` sums the counts the backend's
    workers reported for the same batch (0 on serial/thread, whose cache
    *is* the front-end one).
    """

    mutations: int
    invalidated: int
    worker_invalidations: int
    from_version: int
    to_version: int

    @property
    def invalidations_per_mutation(self) -> float:
        """Front-end cache entries evicted per mutation (0.0 when none)."""
        return self.invalidated / self.mutations if self.mutations else 0.0


class QueryService:
    """Serve many SGQ/STGQ queries over one shared :class:`SocialGraph`.

    Parameters
    ----------
    graph:
        The social graph all queries run against.
    calendars:
        Availability schedules; required only for :class:`STGQuery` traffic.
    parameters:
        Search tunables forwarded to SGSelect/STGSelect (the default uses
        the compiled bitset kernel).
    cache_size:
        Maximum number of ``(initiator, radius)`` ego networks to keep
        (feasible graph + its compiled form).  Least-recently-used entries
        are evicted beyond that.  The ``process`` backend splits this budget
        evenly across its workers (keys partition by initiator).
    max_workers:
        Executor width for :meth:`solve_many`: threads for the ``thread``
        backend, worker processes (= shards) for ``process``.  Defaults to
        ``min(32, os.cpu_count() + 4)`` threads / ``os.cpu_count()``
        processes.
    backend:
        Batch execution strategy — ``"serial"``, ``"thread"`` (default) or
        ``"process"``, or a ready :class:`~repro.service.ExecutorBackend`
        instance.  See :mod:`repro.service.backends` for the trade-offs:
        ``thread`` shares this service's ego-network cache and wins on
        cache-hot traffic; ``process`` shards initiators across worker
        processes, each holding its own graph copy and cache, and scales the
        GIL-bound compiled kernel across cores.
    placement:
        Optional :class:`~repro.service.placement.PlacementMap` routing the
        ``process`` backend by observed load instead of the CRC32 fallback
        (see ``docs/placement.md``).  Rejected for backends that do not
        route by shard.

    Notes
    -----
    Accounting: every batch (and every standalone :meth:`solve`) runs under
    an :class:`~repro.service.context.ExecutionContext` — the per-batch
    scope the solvers, the cache and the backends record into.  The context
    is merged into the service's lifetime totals exactly once, atomically,
    when the batch completes; a batch that raises merges nothing, so
    ``stats()`` is all-or-nothing per batch on every backend.  Callers may
    pass their own (single-use) context to read the exact per-batch delta —
    this is how the TCP worker answers concurrent batch frames from several
    gateways with exact ``stats_delta``\\ s and no cross-batch serialization.

    Thread safety: the cache is guarded by one lock and the lifetime totals
    by another; per-batch counters live in the batch's own context, so
    concurrent batches never contend on stats state.  Concurrent cache
    misses on the same ``(initiator, radius)`` key are single-flighted: one
    caller builds, the others wait and count a hit, so hit/miss totals are
    interleaving-independent.  The cached :class:`FeasibleGraph` /
    :class:`CompiledFeasibleGraph` values are immutable after construction,
    so concurrent searches share them without synchronisation.  The
    underlying graph must not be mutated behind the service's back — route
    all live changes through :meth:`apply_mutations`, which serializes the
    mutation stream, evicts exactly the touched cached egos (reverse vertex
    index + vertex epochs) and replicates the change to every backend
    worker as a versioned delta (see ``docs/live_graph.md``).

    The service is a context manager; ``close()`` (or leaving the ``with``
    block) releases backend pools and worker processes.
    """

    def __init__(
        self,
        graph: SocialGraph,
        calendars: Optional[CalendarStore] = None,
        parameters: Optional[SearchParameters] = None,
        cache_size: int = 128,
        max_workers: Optional[int] = None,
        backend: Union[str, ExecutorBackend] = "thread",
        placement: Optional["PlacementMap"] = None,
    ) -> None:
        if cache_size < 1:
            raise QueryError(f"cache_size must be >= 1, got {cache_size}")
        self.graph = graph
        self.calendars = calendars
        self.parameters = parameters or SearchParameters()
        self.cache_size = cache_size
        self._cache: "OrderedDict[CacheKey, CacheEntry]" = OrderedDict()
        self._cache_lock = threading.Lock()
        self._cache_generation = 0
        self._pending_builds: Dict[CacheKey, threading.Event] = {}
        # Live-graph state (docs/live_graph.md).  _vertex_index is the
        # reverse index powering targeted invalidation: vertex -> cached
        # (initiator, radius) keys whose ego contains it (guarded by
        # _cache_lock, maintained on insert/evict).  _vertex_epochs records
        # the live version of the last mutation touching each vertex so an
        # in-flight build can detect, at insert time, that its ego went
        # stale mid-build.  _mutation_lock serializes the mutation stream;
        # _mutation_log keeps recent batches for replica catch-up.
        self._vertex_index: Dict[Vertex, Set[CacheKey]] = {}
        self._vertex_epochs: Dict[Vertex, int] = {}
        self._mutation_lock = threading.RLock()
        self._mutation_log: Deque[MutationBatch] = deque(maxlen=MUTATION_LOG_CAPACITY)
        self._live_version = 0
        self._availability_overrides: Dict[Vertex, Tuple[int, ...]] = {}
        self._stats_lock = threading.Lock()
        self._stats = ServiceStats()
        self._backend = make_backend(backend, max_workers, placement=placement)
        self.max_workers = self._backend.workers

    @property
    def backend(self) -> ExecutorBackend:
        """The executor backend answering this service's batches."""
        return self._backend

    @property
    def backend_name(self) -> str:
        """Name of the active backend (``serial`` / ``thread`` / ``process``)."""
        return self._backend.name

    # ------------------------------------------------------------------
    # feasible-graph cache
    # ------------------------------------------------------------------
    def _lookup(self, initiator: Vertex, radius: int, context: ExecutionContext) -> CacheEntry:
        """Return the (feasible, compiled, packed) entry for an ego network.

        The hit/miss is counted into ``context`` (the batch's scope, not the
        service globals).  Concurrent misses on the same key are
        single-flighted: the first caller builds while the others wait on an
        event and then count a hit — so the hit/miss totals are independent
        of how batches interleave, which is what keeps ``cache_info()``
        backend-invariant now that batches run concurrently.

        Builds are generation-stamped against :meth:`clear_cache`: a build
        that was in flight when the cache was cleared still returns its
        result to its own caller (computed from the graph at call time) but
        must not re-insert the now-stale entry, so insertion is skipped
        unless the generation still matches the one the build started
        under.  Mutations extend the same idea per vertex: the build also
        captures the live version it started at, and insertion is skipped
        when any vertex of the extracted ego was touched by a later
        mutation (``_vertex_epochs``) — a targeted invalidation cannot see
        a pending key, so without this check an in-flight build could
        resurrect a stale ego right after the mutation evicted it.
        """
        key = (initiator, radius)
        while True:
            wait_for: Optional[threading.Event] = None
            with self._cache_lock:
                entry = self._cache.get(key)
                if entry is not None:
                    self._cache.move_to_end(key)
                else:
                    generation = self._cache_generation
                    epoch = self._live_version
                    pending = self._pending_builds.get(key)
                    if pending is None:
                        event = self._pending_builds[key] = threading.Event()
                    else:
                        wait_for = pending
            if entry is not None:
                context.record_cache(hit=True)
                return entry
            if wait_for is None:
                break  # this caller owns the build
            wait_for.wait()
            # The builder finished (or failed): re-check the cache.  If the
            # build failed — or the entry was already evicted — the loop
            # promotes this caller to builder.
        context.record_cache(hit=False)
        try:
            # Build outside the locks: extraction can be expensive.  On a
            # CSR graph the single call derives feasible + compiled +
            # packed from one gather of the feasible rows.
            feasible, compiled, packed = extract_query_forms(
                self.graph, initiator, radius, self.parameters.kernel
            )
            with self._cache_lock:
                if self._cache_generation == generation and not self._stale_since(feasible, epoch):
                    self._cache[key] = (feasible, compiled, packed)
                    self._cache.move_to_end(key)
                    self._index_entry(key, feasible)
                    while len(self._cache) > self.cache_size:
                        evicted_key, evicted = self._cache.popitem(last=False)
                        self._unindex_entry(evicted_key, evicted[0])
        finally:
            # Always release waiters, even when the build raised (they will
            # retry and surface their own error).  Only pop the event if it
            # is still ours — a concurrent clear/rebuild cycle may have
            # installed a successor builder's event under the same key.
            with self._cache_lock:
                if self._pending_builds.get(key) is event:
                    del self._pending_builds[key]
            event.set()
        return feasible, compiled, packed

    # -- reverse index + staleness (all callers hold _cache_lock) --------
    def _index_entry(self, key: CacheKey, feasible: FeasibleGraph) -> None:
        for v in feasible.graph:
            self._vertex_index.setdefault(v, set()).add(key)

    def _unindex_entry(self, key: CacheKey, feasible: FeasibleGraph) -> None:
        for v in feasible.graph:
            keys = self._vertex_index.get(v)
            if keys is not None:
                keys.discard(key)
                if not keys:
                    del self._vertex_index[v]

    def _stale_since(self, feasible: FeasibleGraph, epoch: int) -> bool:
        return any(self._vertex_epochs.get(v, 0) > epoch for v in feasible.graph)

    def cache_info(self) -> CacheInfo:
        """Snapshot of cache effectiveness (aggregated across process workers)."""
        with self._stats_lock:
            hits = self._stats.cache_hits
            misses = self._stats.cache_misses
        size = self._backend.cache_entries()
        if size is None:
            with self._cache_lock:
                size = len(self._cache)
        return CacheInfo(hits=hits, misses=misses, size=size, max_size=self.cache_size)

    def clear_cache(self) -> None:
        """Drop every cached ego network (e.g. after the graph changed).

        Reaches *every* cache the service's backend answers from, not just
        the front-end one: the ``process`` backend broadcasts the clear to
        its pool workers (re-shipping the current graph/calendars, so a
        mutated graph is actually reloaded), and the ``remote`` backend
        sends a ``cache_clear`` control frame to every TCP worker.  The
        generation bump invalidates builds still in flight: a build that
        started before the clear completes normally for its caller but no
        longer inserts its (pre-clear) entry.

        Raises
        ------
        WorkerUnavailableError
            On the ``remote`` backend, when a worker cannot be reached —
            the invalidation would be incomplete, which the caller must
            know about (a worker that kept its cache would keep serving
            pre-change ego networks).
        """
        with self._cache_lock:
            self._cache_generation += 1
            self._cache.clear()
            self._vertex_index.clear()
        self._backend.clear_caches(self)

    # ------------------------------------------------------------------
    # live-graph mutations (docs/live_graph.md)
    # ------------------------------------------------------------------
    @property
    def live_version(self) -> int:
        """Position in the mutation stream: mutations applied since boot.

        Replicas built from the same seeded dataset (or the same ``.stgq``
        substrate) start at 0 and advance by exactly one per mutation, so
        two services at the same live version hold identical graph and
        availability state.  Distinct from the per-object
        ``graph.graph_version`` counter (which also counts direct mutating
        calls on the substrate) and from the CSR content-hash ``version``.
        """
        with self._mutation_lock:
            return self._live_version

    def apply_mutations(self, mutations: Sequence[Mutation]) -> MutationReport:
        """Apply a mutation run to the live graph and distribute it.

        The operator-facing entry point: applies each mutation to the
        service's graph/calendars (wrapping an immutable substrate in a
        :class:`GraphOverlay` on first edge mutation), advances the live
        version by one per mutation, evicts exactly the cached egos that
        contain a touched vertex (via the reverse vertex index), appends
        the batch to the catch-up log, and fans the versioned delta out
        through the backend (process-pool broadcast / TCP delta frames).

        Error semantics: mutations apply in order; if one fails (e.g.
        ``remove_edge`` on a missing edge raises
        :class:`~repro.exceptions.GraphError`), the *applied prefix* is
        still versioned, logged and distributed — keeping every replica
        consistent with this service — and the error is then re-raised.

        Raises
        ------
        GraphError
            From the failing mutation, after the applied prefix has been
            distributed.
        WorkerUnavailableError
            On the ``remote`` backend when a worker could not be brought to
            the target version (the fleet would be serving mixed versions).
        """
        run: List[Mutation] = list(mutations)
        for mutation in run:
            if not isinstance(mutation, Mutation):
                raise QueryError(f"expected a Mutation, got {type(mutation).__name__}")
        with self._mutation_lock:
            from_version = self._live_version
            if any(m.kind != "update_availability" for m in run):
                if not hasattr(self.graph, "add_edge"):
                    self.graph = GraphOverlay(self.graph)
            applied: List[Mutation] = []
            touched: List[Vertex] = []
            error: Optional[ReproError] = None
            for mutation in run:
                try:
                    touched.extend(apply_mutation(self.graph, self.calendars, mutation))
                except ReproError as exc:
                    error = exc
                    break
                applied.append(mutation)
                if mutation.kind == "update_availability":
                    self._availability_overrides[mutation.person] = mutation.slots or ()
            invalidated = 0
            worker_invalidations = 0
            to_version = from_version
            if applied:
                to_version = from_version + len(applied)
                self._live_version = to_version
                batch = MutationBatch(from_version, to_version, tuple(applied))
                self._mutation_log.append(batch)
                invalidated = self._invalidate_vertices(touched, to_version)
                with self._stats_lock:
                    self._stats.mutations += len(applied)
                    self._stats.invalidations += invalidated
                worker_invalidations = self._backend.apply_mutations(self, batch)
        if error is not None:
            raise error
        return MutationReport(
            mutations=len(applied),
            invalidated=invalidated,
            worker_invalidations=worker_invalidations,
            from_version=from_version,
            to_version=to_version,
        )

    def _invalidate_vertices(self, vertices: Iterable[Vertex], epoch: int) -> int:
        """Evict every cached ego containing a touched vertex; return count.

        Also stamps the touched vertices with ``epoch`` so in-flight builds
        of egos containing them skip their insert (see :meth:`_lookup`).
        """
        dropped = 0
        with self._cache_lock:
            for v in set(vertices):
                self._vertex_epochs[v] = epoch
                for key in tuple(self._vertex_index.get(v, ())):
                    entry = self._cache.pop(key, None)
                    if entry is not None:
                        dropped += 1
                        self._unindex_entry(key, entry[0])
        return dropped

    def apply_delta(self, batch: MutationBatch) -> Tuple[str, int]:
        """Apply a replicated :class:`MutationBatch`; return (status, evicted).

        The replica-facing counterpart of :meth:`apply_mutations`, with the
        version handshake that makes delta application idempotent:

        * ``batch.to_version <= live_version`` — already applied (e.g. a
          retried frame): ``("noop", 0)``, nothing touched.
        * ``batch.from_version == live_version`` — contiguous: applied,
          ``("applied", n_evicted)``.
        * anything else — a gap this batch cannot bridge: ``("gap", 0)``;
          the caller must catch up from the mutation log or fall back to a
          snapshot/substrate reload.
        """
        with self._mutation_lock:
            current = self._live_version
            if batch.to_version <= current:
                return ("noop", 0)
            if batch.from_version != current:
                return ("gap", 0)
            report = self.apply_mutations(batch.mutations)
            return ("applied", report.invalidated)

    def mutation_log_since(self, version: int) -> Optional[List[MutationBatch]]:
        """Contiguous logged batches taking ``version`` to the live version.

        Returns ``None`` when the log cannot bridge the gap (the replica is
        older than the log's tail, or ``version`` is not a batch boundary)
        — the caller must fall back to a snapshot.
        """
        with self._mutation_lock:
            if version > self._live_version:
                return None
            chain: List[MutationBatch] = []
            at = version
            for batch in self._mutation_log:
                if batch.to_version <= at:
                    continue
                if batch.from_version != at:
                    return None
                chain.append(batch)
                at = batch.to_version
            return chain if at == self._live_version else None

    def snapshot_payload(self, inline_graph: bool = True) -> Dict:
        """Full live state as a JSON-ready dict (the last-resort fallback).

        Carries the complete topology, the availability overrides applied
        since boot, and the live version to pin the receiving replica at.
        Pass ``inline_graph=False`` to omit the topology — the remote
        backend does this when the receiving worker can re-open the same
        ``.stgq`` substrate file instead (the snapshot then ships a file
        *reference* plus this payload's version/availability).
        """
        with self._mutation_lock:
            payload = graph_to_snapshot(self.graph) if inline_graph else {}
            payload["version"] = self._live_version
            if self._availability_overrides:
                payload["availability"] = [
                    [person, list(slots)]
                    for person, slots in self._availability_overrides.items()
                ]
            return payload

    def apply_snapshot(self, payload: Dict, graph: Optional[object] = None) -> int:
        """Replace the live state with a snapshot; return evicted entry count.

        ``graph`` overrides the payload's inline topology — the TCP worker
        passes the freshly re-opened ``.stgq`` substrate here when the
        snapshot arrived as a ``graph_path`` reference (the PR 6 reload
        path) instead of inline edges.  The cache is fully cleared (with a
        generation bump, so in-flight builds cannot resurrect pre-snapshot
        egos) and the live version is pinned to the snapshot's.
        """
        try:
            version = int(payload["version"])
        except (KeyError, TypeError, ValueError) as exc:
            raise ProtocolError(f"snapshot payload missing a usable version: {exc}") from exc
        with self._mutation_lock:
            new_graph = graph if graph is not None else graph_from_snapshot(payload)
            availability = payload.get("availability", [])
            if availability and self.calendars is None:
                raise ProtocolError("snapshot carries availability but service has no calendars")
            from ..temporal.schedule import Schedule

            self.graph = new_graph
            self._availability_overrides = {}
            for person, slots in availability:
                self.calendars.set(person, Schedule(self.calendars.horizon, slots))
                self._availability_overrides[person] = tuple(slots)
            self._live_version = version
            self._mutation_log.clear()
            with self._cache_lock:
                dropped = len(self._cache)
                self._cache_generation += 1
                self._cache.clear()
                self._vertex_index.clear()
                self._vertex_epochs.clear()
            self._backend.clear_caches(self)
        return dropped

    # ------------------------------------------------------------------
    # solving
    # ------------------------------------------------------------------
    def _validate(self, query: Query) -> None:
        """Reject malformed traffic before it reaches an executor.

        Unknown initiators are rejected here rather than deep inside the
        extraction so every backend fails identically — the remote backend
        would otherwise degrade them to in-band error results while the
        local backends raise.
        """
        if isinstance(query, STGQuery):
            if self.calendars is None:
                raise QueryError("a CalendarStore is required for social-temporal queries")
        elif not isinstance(query, SGQuery):
            raise QueryError(f"unsupported query type {type(query).__name__}")
        if query.initiator not in self.graph:
            raise VertexNotFoundError(query.initiator)

    def _merge_context(self, context: ExecutionContext) -> None:
        """Fold one completed batch context into the lifetime totals.

        This is the *only* writer of the service-global counters — one
        atomic merge per completed batch, never touched mid-flight — which
        is what lets any number of batches run concurrently with exact
        per-batch deltas.
        """
        with self._stats_lock:
            self._stats.merge_dict(context.as_delta())

    def _solve_local(self, query: Query, context: ExecutionContext) -> Result:
        """Answer one query on the calling thread against the local cache.

        Only reachable through :meth:`solve` / :meth:`solve_many`, which
        validate the query first.  Cache lookups, kernel statistics and the
        result's service counters are all recorded into ``context``.
        """
        is_stg = isinstance(query, STGQuery)
        feasible, compiled, packed = self._lookup(query.initiator, query.radius, context)
        if is_stg:
            result: Result = STGSelect(self.graph, self.calendars, self.parameters).solve(
                query,
                feasible_graph=feasible,
                compiled_graph=compiled,
                packed_graph=packed,
                context=context,
            )
        else:
            result = SGSelect(self.graph, self.parameters).solve(
                query,
                feasible_graph=feasible,
                compiled_graph=compiled,
                packed_graph=packed,
                context=context,
            )
        context.record_result(result, is_stg)
        return result

    def solve(self, query: Query, context: Optional[ExecutionContext] = None) -> Result:
        """Answer one query (SGQ or STGQ) and update the service stats.

        Routed through the backend, so with ``backend="process"`` even a
        single query lands on the worker owning its initiator (keeping that
        worker's cache hot).  ``context`` (optional, single-use) receives
        the solve's exact accounting delta; one is created internally when
        omitted.  Either way the delta is merged into the service totals on
        completion.
        """
        self._validate(query)
        ctx = context if context is not None else ExecutionContext()
        result = self._backend.solve_batch(self, [query], ctx)[0]
        self._merge_context(ctx)
        return result

    def solve_many(
        self,
        queries: Iterable[Query],
        max_workers: Optional[int] = None,
        context: Optional[ExecutionContext] = None,
    ) -> List[Result]:
        """Answer a batch of independent queries concurrently.

        Results are returned in the order of ``queries`` regardless of
        completion order.  Execution is delegated to the configured backend;
        ``max_workers`` overrides the pool width for this call only on the
        ``thread`` backend (kept for backward compatibility — process pools
        are persistent and keep their shard count).

        ``context`` (optional) is the batch's accounting scope: pass a fresh
        :class:`~repro.service.context.ExecutionContext` to read this
        batch's exact stats delta afterwards (``context.as_delta()``); one
        is created internally when omitted.  The context is merged into the
        service totals exactly once when the batch completes — a batch that
        raises merges nothing — and must not be reused for another batch.
        """
        batch: Sequence[Query] = list(queries)
        if not batch:
            return []
        for query in batch:
            self._validate(query)
        ctx = context if context is not None else ExecutionContext()
        if max_workers is not None and self._backend.name == "thread":
            override = ThreadBackend(max_workers)
            try:
                results = override.solve_batch(self, batch, ctx)
            finally:
                override.close()
        else:
            results = self._backend.solve_batch(self, batch, ctx)
        self._merge_context(ctx)
        return results

    # ------------------------------------------------------------------
    # async front-end
    # ------------------------------------------------------------------
    async def solve_async(self, query: Query) -> Result:
        """Awaitable :meth:`solve`; runs on the event loop's default executor."""
        loop = asyncio.get_running_loop()
        return await loop.run_in_executor(None, self.solve, query)

    async def solve_many_async(
        self,
        queries: Iterable[Query],
        max_workers: Optional[int] = None,
        context: Optional[ExecutionContext] = None,
    ) -> List[Result]:
        """Awaitable :meth:`solve_many` for pipelining batches.

        The batch runs on the event loop's default executor, so an asyncio
        front-end (e.g. the ``stgq serve --jsonl`` loop or the TCP worker)
        can overlap reading and writing one batch with solving the next.
        With the ``process`` backend the heavy lifting happens outside the
        GIL entirely, so several in-flight batches genuinely run in
        parallel.  ``context`` is forwarded to :meth:`solve_many` — each
        in-flight batch gets its own, so their deltas never smear.
        """
        batch: Sequence[Query] = list(queries)
        loop = asyncio.get_running_loop()
        call = functools.partial(self.solve_many, batch, max_workers, context)
        return await loop.run_in_executor(None, call)

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def close(self) -> None:
        """Release backend pools and worker processes (idempotent)."""
        self._backend.close()

    def __enter__(self) -> "QueryService":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    # ------------------------------------------------------------------
    # observability
    # ------------------------------------------------------------------
    def stats(self) -> ServiceStats:
        """Copy of the aggregate service counters."""
        with self._stats_lock:
            return ServiceStats(**self._stats.as_dict())  # type: ignore[arg-type]

    def route_report(self) -> Optional[Dict[str, object]]:
        """Rolling routing report from a sharded backend, ``None`` otherwise.

        Sharded backends (process, remote) route every batch through a
        :class:`~repro.service.sharding.ShardMap` or
        :class:`~repro.service.placement.PlacementMap`; this surfaces that
        router's identity (strategy, version) plus its rolling
        :class:`~repro.service.sharding.RouteMetrics` — the numbers behind
        ``stgq stats --json`` and HTTP ``/stats``.  Serial and thread
        backends do not route, hence ``None``.
        """
        reporter = getattr(self._backend, "route_report", None)
        if reporter is None:
            return None
        return reporter()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        info = self.cache_info()
        return (
            f"QueryService(backend={self._backend.name!r}, queries={self._stats.queries}, "
            f"cache={info.size}/{info.max_size}, hit_rate={info.hit_rate:.2f})"
        )
