"""Versioned, load-aware placement of initiators onto workers.

:mod:`repro.service.sharding` routes by CRC32 of the initiator's repr —
uniform over *initiators*, which a Zipfian workload defeats: one celebrity
initiator pins most of a batch to a single worker, and the hottest shard
bounds cluster throughput.  This module makes placement a function of
*measured load* instead of key bytes (cf. Tunable-LSH, which re-clusters
records by observed co-access to fit the workload):

- :class:`PlacementMap` — a **versioned** router with three layers, checked
  in order per initiator: an explicit ``replicas`` table (hot egos pinned to
  an ordered tuple of ≥ 2 shards, fanned out round-robin at partition
  time), an explicit ``assignments`` table (the offline placement pass's
  packing), and a **virtual-node consistent-hash ring** for everyone else —
  so changing the worker count or moving one initiator never re-shards the
  world the way ``CRC32 % n`` does.
- :func:`build_placement` — the offline placement pass: replay a saved
  workload trace (``save_workload``/``load_workload`` JSONL), count per-ego
  load, pack initiators onto workers greedily by descending load (LPT
  scheduling), and replicate any ego whose load alone reaches a worker's
  fair share.
- :func:`save_placement` / :func:`load_placement` — the ``placement.json``
  file format, byte-identical to the ``placement_update`` wire payload, so
  ``stgq place`` output feeds ``--placement FILE`` and the control frame
  alike.

Version semantics: ``0`` is reserved for "no placement" (the CRC32
:class:`~repro.service.sharding.ShardMap` fallback advertises it); real
maps are ``>= 1`` and strictly ordered — a worker or gateway adopts a
pushed map only when its version exceeds the one it holds, exactly the
idempotence rule the mutation ``delta`` frames established.

Correctness lever: every worker holds the **full graph**, so placement is
purely a cache-locality and load-spreading decision.  Any map — including
replicated egos, mid-batch map swaps, and failover to a surviving replica —
yields results byte-identical to the serial backend.  The one honest cost
of replication is cache accounting: each replica of a hot ego builds its
own copy of the ego network, so ``cache_misses`` may exceed serial by one
per extra replica actually used (hits + misses stays conserved; solver
counters are untouched because a cached entry never changes the search
tree).  The property tests in ``tests/service/test_placement.py`` pin this
contract.
"""

from __future__ import annotations

import bisect
import json
import zlib
from collections import Counter
from typing import Dict, Iterable, List, Optional, Sequence, Tuple, TypeVar

from ..exceptions import QueryError
from ..types import Vertex
from .sharding import RouteMetrics

__all__ = [
    "PlacementMap",
    "build_placement",
    "load_placement",
    "save_placement",
]

Q = TypeVar("Q")

#: Default number of virtual nodes per shard on the consistent-hash ring.
#: 64 vnodes bound a shard's expected share of un-assigned initiators to
#: roughly ``1/n ± 1/(n * sqrt(64))`` while the ring stays small enough to
#: rebuild on every map update.  The ring only routes the cold tail — hot
#: egos carry explicit assignments — so modest variance is acceptable.
DEFAULT_VNODES = 64


def _ring_point(seed: int, shard: int, vnode: int) -> int:
    """Deterministic 32-bit ring position of one virtual node."""
    return zlib.crc32(f"vnode:{seed}:{shard}:{vnode}".encode("utf-8"))


def _key_point(vertex: Vertex) -> int:
    """Deterministic 32-bit ring position of an initiator.

    Salted so ring placement decorrelates from the plain ``CRC32 % n``
    fallback — otherwise a ring with few shards would echo the modulo
    map's hot spots.  Like :func:`~repro.service.sharding.stable_shard`,
    this requires value-based vertex reprs (ints, strings, tuples).
    """
    return zlib.crc32(b"key:" + repr(vertex).encode("utf-8"))


class PlacementMap:
    """Versioned initiator→shard router: replicas, assignments, then ring.

    Parameters
    ----------
    n_shards:
        Worker count the map routes over (must match the fleet size).
    version:
        Monotonic map version, ``>= 1`` (``0`` means "no placement").
    vnodes / seed:
        Ring shape: ``vnodes`` virtual nodes per shard, positions derived
        from ``seed``.  Two maps with the same shape route unassigned
        initiators identically.
    assignments:
        Explicit ``{initiator: shard}`` packing from the placement pass.
    replicas:
        ``{initiator: (shard, shard, ...)}`` for hot egos; ordered, ≥ 2
        distinct shards.  Partitioning fans a replicated ego's queries
        round-robin across its tuple, and the remote backend fails over to
        a surviving replica when the routed shard is down.
    """

    __slots__ = (
        "n_shards",
        "version",
        "vnodes",
        "seed",
        "assignments",
        "replicas",
        "_ring_points",
        "_ring_shards",
        "_rr",
        "_metrics",
    )

    strategy = "vnode"

    def __init__(
        self,
        n_shards: int,
        *,
        version: int = 1,
        vnodes: int = DEFAULT_VNODES,
        seed: int = 0,
        assignments: Optional[Dict[Vertex, int]] = None,
        replicas: Optional[Dict[Vertex, Sequence[int]]] = None,
    ) -> None:
        if n_shards < 1:
            raise QueryError(f"n_shards must be >= 1, got {n_shards}")
        if not isinstance(version, int) or version < 1:
            raise QueryError(f"placement version must be an int >= 1, got {version!r}")
        if vnodes < 1:
            raise QueryError(f"vnodes must be >= 1, got {vnodes}")
        self.n_shards = n_shards
        self.version = version
        self.vnodes = vnodes
        self.seed = seed
        self.assignments: Dict[Vertex, int] = dict(assignments or {})
        for vertex, shard in self.assignments.items():
            if not isinstance(shard, int) or not 0 <= shard < n_shards:
                raise QueryError(
                    f"assignment for {vertex!r} names shard {shard!r}, "
                    f"valid range is [0, {n_shards})"
                )
        self.replicas: Dict[Vertex, Tuple[int, ...]] = {}
        for vertex, shards in (replicas or {}).items():
            group = tuple(shards)
            if len(group) < 1 or len(set(group)) != len(group):
                raise QueryError(
                    f"replica set for {vertex!r} must be distinct shards, got {group!r}"
                )
            for shard in group:
                if not isinstance(shard, int) or not 0 <= shard < n_shards:
                    raise QueryError(
                        f"replica set for {vertex!r} names shard {shard!r}, "
                        f"valid range is [0, {n_shards})"
                    )
            self.replicas[vertex] = group
        # The ring: sorted vnode positions with their owning shard.  Point
        # collisions (rare: 32-bit space) resolve to the lowest shard id so
        # the ring is deterministic regardless of build order.
        points: Dict[int, int] = {}
        for shard in range(n_shards):
            for vnode in range(vnodes):
                point = _ring_point(seed, shard, vnode)
                if point not in points or shard < points[point]:
                    points[point] = shard
        self._ring_points = sorted(points)
        self._ring_shards = [points[point] for point in self._ring_points]
        # Round-robin cursors for replicated egos (partition-time fan-out).
        self._rr: Dict[Vertex, int] = {}
        self._metrics = RouteMetrics(n_shards)

    # -- routing -----------------------------------------------------------

    def _ring_shard(self, initiator: Vertex) -> int:
        """Successor-vnode lookup on the ring (wraps past the top)."""
        if self.n_shards == 1:
            return 0
        index = bisect.bisect_right(self._ring_points, _key_point(initiator))
        if index == len(self._ring_points):
            index = 0
        return self._ring_shards[index]

    def replicas_of(self, initiator: Vertex) -> Tuple[int, ...]:
        """Ordered shard tuple that may answer ``initiator`` (≥ 1 entry)."""
        group = self.replicas.get(initiator)
        if group is not None:
            return group
        shard = self.assignments.get(initiator)
        if shard is not None:
            return (shard,)
        return (self._ring_shard(initiator),)

    def shard_of(self, initiator: Vertex) -> int:
        """Primary shard of ``initiator`` (first replica for hot egos)."""
        return self.replicas_of(initiator)[0]

    def partition(self, queries: Sequence[Q]) -> Dict[int, List[Tuple[int, Q]]]:
        """Group ``queries`` by routed shard, fanning replicated egos out.

        Same shape as :meth:`ShardMap.partition`: shard id →
        ``(original_index, query)`` pairs in submission order.  A replicated
        ego's queries alternate round-robin across its replica tuple (the
        cursor persists across batches so consecutive batches keep
        spreading), which is exactly how one celebrity initiator stops
        saturating a single worker.  Routed-batch imbalance feeds the
        rolling :class:`~repro.service.sharding.RouteMetrics`.
        """
        parts: Dict[int, List[Tuple[int, Q]]] = {}
        for index, query in enumerate(queries):
            initiator = query.initiator  # type: ignore[attr-defined]
            group = self.replicas_of(initiator)
            if len(group) == 1:
                shard = group[0]
            else:
                with self._metrics.lock:
                    cursor = self._rr.get(initiator, -1) + 1
                    self._rr[initiator] = cursor
                shard = group[cursor % len(group)]
            parts.setdefault(shard, []).append((index, query))
        self._metrics.note_batch(parts, len(queries))
        return parts

    # -- diagnostics -------------------------------------------------------

    def load_report(self, queries: Sequence[Q]) -> List[int]:
        """Per-shard query counts for ``queries`` (zeros for idle shards).

        Pure: replicated egos are fanned with a *local* round-robin cursor,
        so calling this never perturbs the live partition cursors.
        """
        counts = [0] * self.n_shards
        cursors: Dict[Vertex, int] = {}
        for query in queries:
            initiator = query.initiator  # type: ignore[attr-defined]
            group = self.replicas_of(initiator)
            if len(group) == 1:
                counts[group[0]] += 1
            else:
                cursor = cursors.get(initiator, -1) + 1
                cursors[initiator] = cursor
                counts[group[cursor % len(group)]] += 1
        return counts

    def imbalance(self, queries: Sequence[Q]) -> float:
        """Max/mean shard-load ratio (1.0 = perfectly balanced, 0.0 = empty)."""
        counts = self.load_report(queries)
        total = sum(counts)
        if not total:
            return 0.0
        return max(counts) / (total / self.n_shards)

    def route_report(self) -> Dict[str, object]:
        """Rolling routing metrics plus this map's identity.

        The placement half of the observability surface: flows through
        ``QueryService.route_report()`` to the worker ``stats`` frame,
        ``stgq stats --json`` and HTTP ``/stats``.
        """
        report = {
            "strategy": self.strategy,
            "version": self.version,
            "n_shards": self.n_shards,
            "assigned_egos": len(self.assignments),
            "replicated_egos": len(self.replicas),
        }
        report.update(self._metrics.report())
        return report

    # -- wire / file codec -------------------------------------------------

    def as_wire(self) -> Dict[str, object]:
        """JSON-safe encoding: the ``placement_update`` payload and the
        ``placement.json`` file body are this exact object."""
        return {
            "version": self.version,
            "n_shards": self.n_shards,
            "vnodes": self.vnodes,
            "seed": self.seed,
            "assignments": sorted(
                ([vertex, shard] for vertex, shard in self.assignments.items()),
                key=lambda item: repr(item[0]),
            ),
            "replicas": sorted(
                ([vertex, list(group)] for vertex, group in self.replicas.items()),
                key=lambda item: repr(item[0]),
            ),
        }

    @classmethod
    def from_wire(cls, payload: object) -> "PlacementMap":
        """Decode and validate a wire/file payload (:exc:`QueryError` on junk).

        Untrusted input: the payload may arrive over the TCP control plane,
        so every field is checked before it can route a query out of range.
        """
        if not isinstance(payload, dict):
            raise QueryError(f"placement payload must be an object, got {type(payload).__name__}")
        try:
            n_shards = payload["n_shards"]
            version = payload["version"]
        except KeyError as exc:
            raise QueryError(f"placement payload missing field {exc.args[0]!r}") from None
        if not isinstance(n_shards, int):
            raise QueryError(f"placement n_shards must be an int, got {n_shards!r}")
        vnodes = payload.get("vnodes", DEFAULT_VNODES)
        seed = payload.get("seed", 0)
        if not isinstance(vnodes, int) or not isinstance(seed, int):
            raise QueryError("placement vnodes/seed must be ints")
        raw_assignments = payload.get("assignments", [])
        raw_replicas = payload.get("replicas", [])
        if not isinstance(raw_assignments, list) or not isinstance(raw_replicas, list):
            raise QueryError("placement assignments/replicas must be lists of pairs")
        assignments: Dict[Vertex, int] = {}
        for item in raw_assignments:
            if not isinstance(item, (list, tuple)) or len(item) != 2:
                raise QueryError(f"malformed assignment entry {item!r}")
            assignments[_freeze(item[0])] = item[1]
        replicas: Dict[Vertex, Sequence[int]] = {}
        for item in raw_replicas:
            if (
                not isinstance(item, (list, tuple))
                or len(item) != 2
                or not isinstance(item[1], (list, tuple))
            ):
                raise QueryError(f"malformed replica entry {item!r}")
            replicas[_freeze(item[0])] = tuple(item[1])
        return cls(
            n_shards,
            version=version,
            vnodes=vnodes,
            seed=seed,
            assignments=assignments,
            replicas=replicas,
        )

    def with_replicas(self, replicas: int) -> "PlacementMap":
        """Re-widen (or collapse) every hot ego's replica set to ``replicas``.

        The ``--replicas N`` override for a loaded placement file: the hot
        *set* came from the trace, but the operator re-decides the fan-out
        width at deploy time.  Widening appends the least-loaded other
        shards in ring order; ``replicas=1`` collapses each hot ego to its
        primary assignment.  Version is preserved — the derived map is the
        same logical placement at a different width, and every gateway
        applies the same override.
        """
        replicas = max(1, min(replicas, self.n_shards))
        new_assignments = dict(self.assignments)
        new_replicas: Dict[Vertex, Sequence[int]] = {}
        for vertex, group in self.replicas.items():
            if replicas == 1:
                new_assignments[vertex] = group[0]
                continue
            widened = list(group[:replicas])
            for shard in range(self.n_shards):
                if len(widened) >= replicas:
                    break
                if shard not in widened:
                    widened.append(shard)
            new_replicas[vertex] = tuple(widened)
        return PlacementMap(
            self.n_shards,
            version=self.version,
            vnodes=self.vnodes,
            seed=self.seed,
            assignments=new_assignments,
            replicas=new_replicas,
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"PlacementMap(n_shards={self.n_shards}, version={self.version}, "
            f"assigned={len(self.assignments)}, replicated={len(self.replicas)})"
        )


def _freeze(vertex: object) -> Vertex:
    """JSON round-trips tuples as lists; restore hashability."""
    if isinstance(vertex, list):
        return tuple(_freeze(part) for part in vertex)
    return vertex  # type: ignore[return-value]


def build_placement(
    queries: Iterable[Q],
    n_shards: int,
    *,
    replicas: int = 2,
    vnodes: int = DEFAULT_VNODES,
    seed: int = 0,
    version: int = 1,
) -> PlacementMap:
    """The offline placement pass: pack observed per-ego load onto workers.

    ``queries`` is a replayed workload trace (what ``load_workload`` returns
    from a ``save_workload`` JSONL file).  The pass is classic LPT greedy
    scheduling over per-initiator load counts:

    1. Count queries per initiator; compute the fair share ``total / n``.
    2. Walk initiators by descending load (repr ties broken
       deterministically).  An ego whose load alone reaches the fair share
       is **replicated**: it gets the ``min(replicas, n_shards)``
       least-loaded shards and charges ``load / r`` to each — round-robin
       fan-out at partition time realises exactly that split.
    3. Everyone else is assigned to the least-loaded shard outright.

    Initiators absent from the trace fall through to the consistent-hash
    ring, so an incomplete trace degrades to hashing, never to an error.
    An empty trace yields a pure-ring map.
    """
    if replicas < 1:
        raise QueryError(f"replicas must be >= 1, got {replicas}")
    loads = Counter(query.initiator for query in queries)  # type: ignore[attr-defined]
    total = sum(loads.values())
    assignments: Dict[Vertex, int] = {}
    replica_sets: Dict[Vertex, Sequence[int]] = {}
    if total:
        fair_share = total / n_shards
        shard_loads = [0.0] * n_shards
        ordered = sorted(loads.items(), key=lambda item: (-item[1], repr(item[0])))
        width = min(replicas, n_shards)
        for vertex, load in ordered:
            if width > 1 and load >= fair_share:
                targets = sorted(range(n_shards), key=lambda s: (shard_loads[s], s))[:width]
                replica_sets[vertex] = tuple(targets)
                for shard in targets:
                    shard_loads[shard] += load / width
            else:
                shard = min(range(n_shards), key=lambda s: (shard_loads[s], s))
                assignments[vertex] = shard
                shard_loads[shard] += load
    return PlacementMap(
        n_shards,
        version=version,
        vnodes=vnodes,
        seed=seed,
        assignments=assignments,
        replicas=replica_sets,
    )


def save_placement(placement: PlacementMap, path: str) -> None:
    """Write ``placement`` as the canonical ``placement.json`` file."""
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(placement.as_wire(), handle, indent=2, sort_keys=True)
        handle.write("\n")


def load_placement(path: str) -> PlacementMap:
    """Load and validate a ``placement.json`` file (:exc:`QueryError` on junk)."""
    try:
        with open(path, "r", encoding="utf-8") as handle:
            payload = json.load(handle)
    except OSError as exc:
        raise QueryError(f"cannot read placement file {path!r}: {exc}") from exc
    except json.JSONDecodeError as exc:
        raise QueryError(f"placement file {path!r} is not valid JSON: {exc}") from exc
    return PlacementMap.from_wire(payload)
