"""Admission control: a bounded queue in front of the solver, shed the rest.

The gateway's capacity model follows the energy/capacity argument of Lang et
al. (*Towards Energy-Efficient Database Cluster Design*): a fleet sized for
its expected load must reject the excess **at the edge**, early and cheaply,
instead of queueing unboundedly and melting every tier behind it.  Concretely:

* at most ``max_concurrency`` requests solve at once (one per handler
  thread actively inside ``QueryService``);
* at most ``max_queue`` further requests wait for a solve slot;
* everything beyond that is **shed** immediately with HTTP 429 and a
  ``Retry-After`` hint — the client pays one round-trip, the fleet pays
  nothing.

The controller is transport-agnostic (plain threading primitives, no HTTP
imports) so tests drive it directly, and it doubles as the gateway's
in-flight ledger for the SIGTERM drain: :meth:`in_flight` counts admitted
work that has not released yet, which :func:`repro.service.drain.wait_for_drain`
polls to zero before the process exits.
"""

from __future__ import annotations

import threading
from typing import Dict, Optional

__all__ = ["AdmissionController", "AdmissionTicket"]


class AdmissionTicket:
    """Proof of admission; release it exactly once (context manager)."""

    __slots__ = ("_controller", "_released", "queued")

    def __init__(self, controller: "AdmissionController", queued: bool) -> None:
        self._controller = controller
        self._released = False
        #: True when the request waited in the bounded queue before running.
        self.queued = queued

    def release(self) -> None:
        if not self._released:
            self._released = True
            self._controller._release()

    def __enter__(self) -> "AdmissionTicket":
        return self

    def __exit__(self, exc_type: object, exc: object, tb: object) -> None:
        self.release()


class AdmissionController:
    """Bounded concurrency + bounded queue; immediate shed beyond both.

    ``try_admit`` returns an :class:`AdmissionTicket` when the request may
    run (possibly after waiting in the queue), or ``None`` when it must be
    shed (queue full) or refused (gateway draining).  Check
    :attr:`draining` to tell a 429 shed from a 503 drain refusal.
    """

    def __init__(
        self,
        max_concurrency: int = 8,
        max_queue: int = 16,
        retry_after: float = 1.0,
    ) -> None:
        if max_concurrency < 1:
            raise ValueError(f"max_concurrency must be >= 1, got {max_concurrency}")
        if max_queue < 0:
            raise ValueError(f"max_queue must be >= 0, got {max_queue}")
        self.max_concurrency = max_concurrency
        self.max_queue = max_queue
        #: Seconds clients are told to back off for in ``Retry-After``.
        self.retry_after = retry_after
        self._lock = threading.Lock()
        self._slot_free = threading.Condition(self._lock)
        self._active = 0
        self._queued = 0
        self._draining = False
        # Lifetime counters (monotonic; exposed on /stats).
        self._admitted = 0
        self._admitted_queued = 0
        self._shed = 0
        self._refused_draining = 0

    # ------------------------------------------------------------------
    # admission
    # ------------------------------------------------------------------
    def try_admit(self, timeout: Optional[float] = None) -> Optional[AdmissionTicket]:
        """Admit now, wait in the bounded queue, or shed (``None``).

        ``timeout`` bounds the queue wait (``None`` = wait until a slot
        frees or the gateway starts draining).  A timed-out wait counts as
        shed — the client gets the same 429 it would have gotten had the
        queue been full on arrival.
        """
        with self._lock:
            if self._draining:
                self._refused_draining += 1
                return None
            if self._active < self.max_concurrency:
                self._active += 1
                self._admitted += 1
                return AdmissionTicket(self, queued=False)
            if self._queued >= self.max_queue:
                self._shed += 1
                return None
            self._queued += 1
            try:
                admitted = self._slot_free.wait_for(
                    lambda: self._draining or self._active < self.max_concurrency,
                    timeout=timeout,
                )
            finally:
                self._queued -= 1
            if not admitted or self._draining:
                if self._draining:
                    self._refused_draining += 1
                else:
                    self._shed += 1
                return None
            self._active += 1
            self._admitted += 1
            self._admitted_queued += 1
            return AdmissionTicket(self, queued=True)

    def _release(self) -> None:
        with self._lock:
            self._active -= 1
            self._slot_free.notify()

    # ------------------------------------------------------------------
    # drain + observability
    # ------------------------------------------------------------------
    def begin_drain(self) -> None:
        """Refuse all new admissions; wake queued waiters so they bail out."""
        with self._lock:
            self._draining = True
            self._slot_free.notify_all()

    @property
    def draining(self) -> bool:
        with self._lock:
            return self._draining

    def in_flight(self) -> int:
        """Admitted-but-unreleased work (the SIGTERM drain polls this)."""
        with self._lock:
            return self._active

    def snapshot(self) -> Dict[str, int]:
        """Counters for ``/stats`` (point-in-time, self-consistent)."""
        with self._lock:
            return {
                "active": self._active,
                "queued": self._queued,
                "max_concurrency": self.max_concurrency,
                "max_queue": self.max_queue,
                "admitted": self._admitted,
                "admitted_after_queueing": self._admitted_queued,
                "shed": self._shed,
                "refused_draining": self._refused_draining,
            }
