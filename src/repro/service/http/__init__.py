"""HTTP gateway tier: the product front door over the query service.

The ROADMAP's topology in one line::

    clients → [HTTP gateways × G] → RemoteBackend/TCP → [stgq workers × W]

This package is the left tier: stateless HTTP/JSON gateways (stdlib
``ThreadingHTTPServer`` — no new runtime dependencies) that validate,
rate-limit, admission-control and paginate, then answer through the same
:class:`~repro.service.query_service.QueryService` every other surface
uses.  Results are encoded by :func:`repro.service.codec.response_for`,
so an HTTP answer is byte-identical to the serial service's.

Module map (the routes/app split):

* :mod:`.routes` — pure handlers (request in, ``RouteResponse`` out).
* :mod:`.app` — the pipeline + transport: ``GatewayApp``, ``HTTPGateway``,
  ``run_gateway`` (the ``stgq http`` entry), the READY announcement.
* :mod:`.admission` — bounded concurrency + bounded queue, 429 shedding.
* :mod:`.ratelimit` — per-API-key token buckets.
* :mod:`.pagination` — stateless cursors over batch results.
* :mod:`.accesslog` — structured JSONL access log.
* :mod:`.cluster` — local N-gateway launcher for benches and CI.

``docs/http.md`` is the operator-facing tour (routes, wire examples,
admission knobs, multi-gateway deployment).
"""

from .accesslog import AccessLog
from .admission import AdmissionController
from .app import GatewayApp, GatewayConfig, HTTPGateway, READY_MARKER, run_gateway
from .cluster import LocalGatewayCluster, start_local_gateways
from .pagination import DEFAULT_PAGE_SIZE, MAX_PAGE_SIZE, decode_cursor, encode_cursor, paginate
from .ratelimit import RateLimiter, parse_rate_spec
from .routes import RouteResponse

__all__ = [
    "AccessLog",
    "AdmissionController",
    "DEFAULT_PAGE_SIZE",
    "GatewayApp",
    "GatewayConfig",
    "HTTPGateway",
    "LocalGatewayCluster",
    "MAX_PAGE_SIZE",
    "RateLimiter",
    "READY_MARKER",
    "RouteResponse",
    "decode_cursor",
    "encode_cursor",
    "paginate",
    "parse_rate_spec",
    "run_gateway",
    "start_local_gateways",
]
