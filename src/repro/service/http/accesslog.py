"""Structured JSONL access log: one line per request, machine-greppable.

Every HTTP request — served, shed, rate-limited, or rejected — emits one
JSON object on its own line with the per-request latency and the admission
outcome, so capacity questions ("what fraction of yesterday's traffic did
gateway 2 shed?") are a ``jq`` one-liner instead of a log-regex project.

Fields::

    {"ts": 1754650000.123, "method": "POST", "path": "/v1/queries",
     "status": 200, "latency_ms": 12.4, "client": "10.0.0.7",
     "api_key": "team-a", "outcome": "ok", "queries": 64, "queued": false}

``outcome`` is one of ``ok`` (served), ``client_error`` (4xx validation),
``ratelimited`` (429 from the token bucket), ``shed`` (429 from admission),
``draining`` (503 during SIGTERM drain) or ``error`` (unexpected 5xx) —
the same vocabulary the CI shed-rate gate counts.

The writer is a plain line-buffered text stream (stderr by default so the
READY announcement on stdout stays machine-parseable; ``--access-log PATH``
redirects it).  One lock serialises whole lines across handler threads —
JSONL's only integrity requirement.
"""

from __future__ import annotations

import json
import sys
import threading
import time
from typing import Any, Dict, IO, Optional

__all__ = ["AccessLog"]


class AccessLog:
    """Thread-safe JSONL access-log writer (``None`` stream = disabled)."""

    def __init__(self, stream: Optional[IO[str]] = sys.stderr) -> None:
        self._stream = stream
        self._lock = threading.Lock()
        self.lines = 0

    def record(
        self,
        method: str,
        path: str,
        status: int,
        latency_ms: float,
        outcome: str,
        client: str = "",
        api_key: Optional[str] = None,
        **extra: Any,
    ) -> None:
        """Write one access-log line; never raises into the request path."""
        if self._stream is None:
            return
        entry: Dict[str, Any] = {
            "ts": round(time.time(), 3),
            "method": method,
            "path": path,
            "status": status,
            "latency_ms": round(latency_ms, 3),
            "client": client,
            "outcome": outcome,
        }
        if api_key is not None:
            entry["api_key"] = api_key
        entry.update(extra)
        line = json.dumps(entry, separators=(",", ":"))
        try:
            with self._lock:
                self._stream.write(line + "\n")
                self._stream.flush()
                self.lines += 1
        except (OSError, ValueError):  # closed/broken log stream: serve anyway
            pass
