"""Per-client token-bucket rate limiting keyed on the API key header.

Admission control (:mod:`.admission`) protects the *fleet* from aggregate
overload; this module protects it from one *client* — a single hot API key
cannot monopolise the admission slots of a shared gateway.  Classic token
bucket per key: a bucket holds up to ``burst`` tokens and refills at
``rate`` tokens/second; each request spends one token; an empty bucket
means 429 with a ``Retry-After`` telling the client exactly when the next
token lands.

Keys come from the ``X-API-Key`` request header, falling back to the
client's IP so anonymous traffic is still bounded per source.  The limiter
is disabled by default (``rate=None`` — the gateway trusts admission
control alone); ``stgq http --rate-limit RATE[:BURST]`` turns it on.

The clock is injectable (monotonic by default) so tests run instantly, and
the bucket map is pruned once it grows past ``max_keys``: buckets idle long
enough to have refilled completely carry no state worth keeping (a fresh
bucket starts full), so dropping them is behaviour-preserving.
"""

from __future__ import annotations

import threading
import time
from typing import Callable, Dict, Optional, Tuple

__all__ = ["RateLimiter", "parse_rate_spec"]


def parse_rate_spec(spec: str) -> Tuple[float, float]:
    """Parse ``RATE`` or ``RATE:BURST`` (e.g. ``10`` or ``10:25``)."""
    rate_text, sep, burst_text = spec.partition(":")
    try:
        rate = float(rate_text)
        burst = float(burst_text) if sep else max(1.0, rate)
    except ValueError:
        raise ValueError(f"invalid rate-limit spec {spec!r} (want RATE or RATE:BURST)") from None
    if rate <= 0 or burst < 1:
        raise ValueError(f"rate-limit needs rate > 0 and burst >= 1, got {spec!r}")
    return rate, burst


class RateLimiter:
    """Token bucket per client key; thread-safe; disabled when ``rate=None``."""

    def __init__(
        self,
        rate: Optional[float],
        burst: Optional[float] = None,
        max_keys: int = 4096,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        self.rate = rate
        self.burst = burst if burst is not None else (max(1.0, rate) if rate else None)
        self.max_keys = max_keys
        self._clock = clock
        self._lock = threading.Lock()
        # key -> (tokens, last_refill_timestamp)
        self._buckets: Dict[str, Tuple[float, float]] = {}
        self._allowed = 0
        self._limited = 0

    @property
    def enabled(self) -> bool:
        return self.rate is not None

    def allow(self, key: str) -> Tuple[bool, float]:
        """Spend one token for ``key``; ``(allowed, retry_after_seconds)``.

        ``retry_after`` is 0 when allowed, otherwise the time until the
        bucket holds a whole token again — what the 429 response carries.
        """
        if self.rate is None:
            return True, 0.0
        now = self._clock()
        with self._lock:
            tokens, stamp = self._buckets.get(key, (float(self.burst), now))
            tokens = min(float(self.burst), tokens + (now - stamp) * self.rate)
            if tokens >= 1.0:
                self._buckets[key] = (tokens - 1.0, now)
                self._allowed += 1
                self._maybe_prune(now)
                return True, 0.0
            self._buckets[key] = (tokens, now)
            self._limited += 1
            self._maybe_prune(now)
            return False, (1.0 - tokens) / self.rate

    def _maybe_prune(self, now: float) -> None:
        """Drop buckets that have refilled to full (lock held by caller)."""
        if len(self._buckets) <= self.max_keys:
            return
        full_after = float(self.burst) / float(self.rate)
        stale = [
            key for key, (_, stamp) in self._buckets.items() if now - stamp >= full_after
        ]
        for key in stale:
            del self._buckets[key]

    def snapshot(self) -> Dict[str, object]:
        """Counters for ``/stats``."""
        with self._lock:
            return {
                "enabled": self.enabled,
                "rate": self.rate,
                "burst": self.burst,
                "keys": len(self._buckets),
                "allowed": self._allowed,
                "limited": self._limited,
            }
