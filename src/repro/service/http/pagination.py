"""Cursor-based pagination of batch results, bounded page size.

A batch ``POST /v1/queries`` may carry thousands of queries; the gateway
answers them all but returns at most ``page_size`` results per response,
with an opaque ``next_cursor`` the client re-posts (same body, plus
``"cursor"``) to fetch the next page.  The cursor is **stateless** — a
base64url-encoded ``{"o": offset}`` — so any gateway replica behind a load
balancer can serve any page: re-solving the batch on the next gateway is
cheap (the solvers are deterministic and the feasible-graph cache is warm
after page one) and keeps the tier shared-nothing, which is the whole point
of the multi-gateway topology.

``page_size`` is clamped to ``MAX_PAGE_SIZE``: the bound is a protection
for the *response* path (one page must serialise in bounded memory), so a
client asking for more silently gets the maximum rather than an error —
the ``next_cursor``/``total`` fields tell it pagination happened.
"""

from __future__ import annotations

import base64
import binascii
import json
from typing import Any, List, Optional, Sequence, Tuple

from ...exceptions import QueryError

__all__ = [
    "DEFAULT_PAGE_SIZE",
    "MAX_PAGE_SIZE",
    "decode_cursor",
    "encode_cursor",
    "paginate",
]

#: Results per response when the client does not ask for a page size.
DEFAULT_PAGE_SIZE = 256
#: Hard ceiling on one page regardless of what the client asks for.
MAX_PAGE_SIZE = 1024


def encode_cursor(offset: int) -> str:
    """Opaque cursor for ``offset`` (base64url JSON, no padding)."""
    raw = json.dumps({"o": int(offset)}, separators=(",", ":")).encode("ascii")
    return base64.urlsafe_b64encode(raw).rstrip(b"=").decode("ascii")


def decode_cursor(cursor: str) -> int:
    """Offset encoded by :func:`encode_cursor`; :class:`QueryError` if bogus.

    Cursors are opaque but not trusted: a tampered or truncated one maps to
    a field-level 400 on ``cursor``, never to an exception escaping the
    handler.
    """
    if not isinstance(cursor, str) or not cursor:
        raise QueryError("cursor must be a non-empty string")
    padded = cursor + "=" * (-len(cursor) % 4)
    try:
        payload = json.loads(base64.urlsafe_b64decode(padded.encode("ascii")))
        offset = payload["o"]
    except (binascii.Error, ValueError, UnicodeEncodeError, KeyError, TypeError):
        raise QueryError(f"malformed cursor {cursor!r}") from None
    if not isinstance(offset, int) or isinstance(offset, bool) or offset < 0:
        raise QueryError(f"malformed cursor {cursor!r}")
    return offset


def clamp_page_size(page_size: Any) -> int:
    """Validate a requested page size; clamp to ``MAX_PAGE_SIZE``.

    Raises :class:`QueryError` (→ field-level 400) for non-integer or
    non-positive values; over-large values clamp silently (see module doc).
    """
    if page_size is None:
        return DEFAULT_PAGE_SIZE
    if not isinstance(page_size, int) or isinstance(page_size, bool) or page_size < 1:
        raise QueryError(f"page_size must be a positive integer, got {page_size!r}")
    return min(page_size, MAX_PAGE_SIZE)


def paginate(
    items: Sequence[Any],
    cursor: Optional[str],
    page_size: Any,
) -> Tuple[List[Any], Optional[str], int]:
    """Slice ``items`` at the cursor; ``(page, next_cursor, total)``.

    ``next_cursor`` is ``None`` on the last page.  An offset past the end
    (e.g. the batch shrank between pages) yields an empty final page rather
    than an error — the client's pagination loop terminates normally.
    """
    size = clamp_page_size(page_size)
    offset = decode_cursor(cursor) if cursor is not None else 0
    total = len(items)
    page = list(items[offset : offset + size])
    next_offset = offset + size
    next_cursor = encode_cursor(next_offset) if next_offset < total else None
    return page, next_cursor, total
