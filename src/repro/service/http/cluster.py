"""Local multi-gateway launcher: N ``stgq http`` subprocesses, one fleet.

The HTTP tier is stateless, so scaling it is "run more of them": this
module spawns ``count`` gateway subprocesses (``python -m repro http
--listen 127.0.0.1:0 ...``), reads each one's ``STGQ-HTTP-READY host
port`` announcement to learn the ephemeral ports, and confirms liveness
with a ``GET /health`` probe — the HTTP twin of
:func:`repro.service.net.cluster.start_local_workers`, and the launcher the
CI ``http-smoke`` job and ``benchmarks/bench_service.py --http-spawn`` use
to stand up the 2-gateways-over-2-workers topology.
"""

from __future__ import annotations

import json
import queue
import subprocess
import sys
import threading
import urllib.error
import urllib.request
from dataclasses import dataclass, field
from typing import List, Optional, Sequence

from ...exceptions import WorkerUnavailableError
from ..net.cluster import _repro_env
from .app import READY_MARKER

__all__ = ["LocalGatewayCluster", "start_local_gateways"]


@dataclass
class LocalGatewayCluster:
    """Handle on a set of locally spawned HTTP gateway subprocesses."""

    processes: List[subprocess.Popen] = field(default_factory=list)
    urls: List[str] = field(default_factory=list)

    def close(self, timeout: float = 30.0) -> None:
        """SIGTERM every gateway (they drain in-flight requests), then reap."""
        import time

        for process in self.processes:
            if process.poll() is None:
                process.terminate()
        deadline = time.monotonic() + timeout
        for process in self.processes:
            remaining = max(0.1, deadline - time.monotonic())
            try:
                process.wait(timeout=remaining)
            except subprocess.TimeoutExpired:
                process.kill()
                process.wait()
            if process.stdout is not None:
                process.stdout.close()
        self.processes = []
        self.urls = []

    def __enter__(self) -> "LocalGatewayCluster":
        return self

    def __exit__(self, exc_type: object, exc: object, tb: object) -> None:
        self.close()


def _await_http_ready(process: subprocess.Popen, startup_timeout: float) -> str:
    """Read stdout until the gateway's READY line; returns its base URL.

    Same daemon-reader-thread trick as the worker launcher (see
    ``net/cluster._await_ready`` for why ``select``/bare ``readline`` both
    fail here).
    """
    outcome: "queue.Queue[Optional[str]]" = queue.Queue()

    def _pump() -> None:
        assert process.stdout is not None
        try:
            for line in iter(process.stdout.readline, ""):
                parts = line.split()
                if len(parts) == 3 and parts[0] == READY_MARKER:
                    outcome.put(f"http://{parts[1]}:{parts[2]}")
                    return
        except (OSError, ValueError):  # pipe closed under us during cleanup
            pass
        outcome.put(None)

    threading.Thread(target=_pump, name="stgq-http-ready", daemon=True).start()
    try:
        url = outcome.get(timeout=startup_timeout)
    except queue.Empty:
        raise WorkerUnavailableError(
            f"gateway did not announce readiness within {startup_timeout}s"
        ) from None
    if url is None:
        raise WorkerUnavailableError(
            f"gateway process exited (code {process.poll()}) before announcing readiness"
        )
    return url


def _probe_health(url: str, timeout: float = 10.0) -> None:
    """GET /health; any well-formed JSON answer means the gateway is alive.

    A 503 at boot (e.g. a degraded fleet) is still a *live gateway* — the
    caller asked whether the process serves HTTP, not whether the fleet
    behind it is whole.
    """
    try:
        with urllib.request.urlopen(f"{url}/health", timeout=timeout) as reply:
            json.loads(reply.read())
    except urllib.error.HTTPError as exc:
        try:
            json.loads(exc.read())
        except ValueError:
            raise WorkerUnavailableError(
                f"gateway {url} answered /health with non-JSON (status {exc.code})"
            ) from exc
    except (urllib.error.URLError, OSError, ValueError) as exc:
        raise WorkerUnavailableError(f"cannot reach spawned gateway {url}: {exc}") from exc


def start_local_gateways(
    count: int,
    connect: Optional[str] = None,
    people: int = 194,
    days: int = 1,
    seed: int = 42,
    backend: str = "serial",
    max_concurrency: int = 8,
    max_queue: int = 16,
    cache_size: int = 128,
    kernel: str = "compiled",
    startup_timeout: float = 120.0,
    extra_args: Optional[Sequence[str]] = None,
) -> LocalGatewayCluster:
    """Spawn ``count`` HTTP gateway subprocesses over one shared topology.

    With ``connect`` the gateways run ``--backend remote`` against that
    worker fleet (the multi-gateway production shape); without it each
    gateway answers from its own local ``backend``.  Every gateway is
    health-probed before this returns; any startup failure tears down the
    ones already spawned.
    """
    if count < 1:
        raise WorkerUnavailableError(f"gateway count must be >= 1, got {count}")
    command = [
        sys.executable,
        "-m",
        "repro",
        "http",
        "--listen",
        "127.0.0.1:0",
        "--people",
        str(people),
        "--days",
        str(days),
        "--seed",
        str(seed),
        "--backend",
        "remote" if connect else backend,
        "--cache-size",
        str(cache_size),
        "--kernel",
        kernel,
        "--max-concurrency",
        str(max_concurrency),
        "--max-queue",
        str(max_queue),
    ]
    if connect:
        command += ["--connect", connect]
    if extra_args:
        command += list(extra_args)
    cluster = LocalGatewayCluster()
    env = _repro_env()
    try:
        for _ in range(count):
            cluster.processes.append(
                subprocess.Popen(
                    command,
                    stdout=subprocess.PIPE,
                    stderr=subprocess.DEVNULL,  # the JSONL access log
                    env=env,
                    text=True,
                    bufsize=1,  # line buffered: the READY line arrives promptly
                )
            )
        for process in cluster.processes:
            url = _await_http_ready(process, startup_timeout)
            _probe_health(url)
            cluster.urls.append(url)
    except BaseException:
        cluster.close()
        raise
    return cluster
