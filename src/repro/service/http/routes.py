"""Route handlers: parsed request in, status + JSON body out.

Transport-agnostic on purpose — every handler takes the
:class:`~repro.service.http.app.GatewayApp` plus plain Python values and
returns a :class:`RouteResponse`; :mod:`.app` owns the socket/HTTP
mechanics (body reading, header writing, admission, rate limiting,
logging).  Tests drive these functions directly without opening a port.

The one rule that matters for correctness: **results are encoded by
:func:`repro.service.codec.response_for` and nothing else.**  The HTTP
tier adds envelopes (pagination, error shapes) around the same response
objects the JSONL loop and the TCP wire produce, so a result served over
HTTP is byte-identical to the serial ``QueryService`` answer — the
property the test suite and the CI smoke assert.

Validation is two-phase, mirroring the service: *shape* errors (missing or
mistyped fields, bad cursor) are client mistakes → 400 with a field-level
``fields`` map (and ``index`` inside a batch); an initiator absent from the
graph is also caught up front (same 400) because ``solve_many`` is
all-or-nothing and one bad query must not fail its batchmates.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from ...exceptions import QueryError, ReproError, VertexNotFoundError, WorkerUnavailableError
from ..codec import query_from_request, response_for, wants_stats
from .pagination import paginate

__all__ = [
    "RouteResponse",
    "error_response",
    "handle_health",
    "handle_queries",
    "handle_stats",
]

#: Queries accepted in one batch request.  Large workloads paginate the
#: *results*; the request itself must still parse in bounded memory.
MAX_BATCH_QUERIES = 4096

#: Request keys (post-aliasing) with their validation rules, used to turn a
#: rejected request into a per-field error map.  ``activity_length`` is
#: optional (absent = SGQ); the others default server-side.
_FIELD_RULES: Dict[str, Tuple[bool, int, str]] = {
    # name -> (required, minimum, description)
    "initiator": (True, 0, "vertex id of the query initiator"),
    "group_size": (True, 1, "group size p (>= 1)"),
    "radius": (False, 1, "social radius s (>= 1)"),
    "acquaintance": (False, 0, "acquaintance constraint k (>= 0)"),
    "activity_length": (False, 1, "activity length m (>= 1; omit for SGQ)"),
}
_ALIASES = {"p": "group_size", "s": "radius", "k": "acquaintance", "m": "activity_length"}


@dataclass
class RouteResponse:
    """One handler outcome: HTTP status, JSON body, extra headers."""

    status: int
    body: Dict[str, Any]
    headers: Dict[str, str] = field(default_factory=dict)


def error_response(
    status: int,
    message: str,
    fields: Optional[Dict[str, str]] = None,
    index: Optional[int] = None,
    **headers: str,
) -> RouteResponse:
    """Uniform error envelope: ``{"error": ..., "fields": {...}, "index": i}``."""
    body: Dict[str, Any] = {"error": message}
    if fields:
        body["fields"] = fields
    if index is not None:
        body["index"] = index
    return RouteResponse(status, body, dict(headers))


# ----------------------------------------------------------------------
# POST /v1/queries
# ----------------------------------------------------------------------
def _field_errors(payload: Dict[str, Any]) -> Dict[str, str]:
    """Per-field problems in one request payload (empty dict = clean shape).

    Reports *every* broken field at once — a client fixing a request should
    not need one round-trip per mistake.  Keys are the canonical long
    names; a broken alias is reported under the alias the client sent.
    """
    errors: Dict[str, str] = {}
    seen: Dict[str, str] = {}
    for key, value in payload.items():
        name = _ALIASES.get(key, key)
        if name not in _FIELD_RULES:
            continue
        if name in seen:
            errors[key] = f"duplicates field {seen[name]!r} (alias collision)"
            continue
        seen[name] = key
        required, minimum, description = _FIELD_RULES[name]
        if name == "initiator":
            if not isinstance(value, (int, str)) or isinstance(value, bool):
                errors[key] = f"must be a vertex id (int or string): {description}"
        elif not isinstance(value, int) or isinstance(value, bool) or value < minimum:
            errors[key] = f"must be an integer >= {minimum}: {description}"
    for name, (required, _minimum, description) in _FIELD_RULES.items():
        if required and name not in seen:
            errors[name] = f"required: {description}"
    return errors


def _parse_queries(
    app: "Any", payloads: List[Any]
) -> Tuple[List[Any], List[bool], Optional[RouteResponse]]:
    """Validate every payload up front; first failure → field-level 400.

    Returns ``(queries, stats_flags, error)`` with ``error=None`` on
    success.  Initiator existence is checked here too (the service's own
    ``_validate`` would abort the whole batch at solve time with a 500-ish
    surprise; here it is the client's 400 with the offending index).
    """
    queries: List[Any] = []
    stats_flags: List[bool] = []
    for index, payload in enumerate(payloads):
        position = index if len(payloads) > 1 else None
        if not isinstance(payload, dict):
            return [], [], error_response(
                400,
                f"each query must be a JSON object, got {type(payload).__name__}",
                index=position,
            )
        fields = _field_errors(payload)
        if fields:
            return [], [], error_response(400, "invalid query", fields=fields, index=position)
        try:
            query = query_from_request(payload)
            app.service._validate(query)
        except VertexNotFoundError:
            return [], [], error_response(
                400,
                "invalid query",
                fields={"initiator": f"unknown vertex {payload_initiator(payload)!r}"},
                index=position,
            )
        except QueryError as exc:
            return [], [], error_response(400, str(exc), index=position)
        queries.append(query)
        stats_flags.append(wants_stats(payload))
    return queries, stats_flags, None


def payload_initiator(payload: Dict[str, Any]) -> Any:
    return payload.get("initiator", payload.get("i"))


def handle_queries(app: "Any", body: bytes) -> RouteResponse:
    """``POST /v1/queries``: one query object, or ``{"queries": [...]}``.

    Single-object requests return the bare :func:`response_for` object.
    Batch requests return a paginated envelope::

        {"results": [...], "total": N, "next_cursor": "..." | null}

    honouring optional ``page_size`` and ``cursor`` body fields.
    """
    try:
        document = json.loads(body.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        return error_response(400, f"request body is not valid JSON: {exc}")

    if isinstance(document, dict) and "queries" in document:
        payloads = document["queries"]
        if not isinstance(payloads, list):
            return error_response(
                400, "invalid batch", fields={"queries": "must be an array of query objects"}
            )
        if len(payloads) > MAX_BATCH_QUERIES:
            return error_response(
                400,
                "invalid batch",
                fields={"queries": f"at most {MAX_BATCH_QUERIES} queries per request"},
            )
        return _handle_batch(app, document, payloads)
    if isinstance(document, dict):
        return _handle_single(app, document)
    return error_response(
        400, f"request must be a JSON object, got {type(document).__name__}"
    )


def _handle_single(app: "Any", payload: Dict[str, Any]) -> RouteResponse:
    queries, stats_flags, error = _parse_queries(app, [payload])
    if error is not None:
        return error
    try:
        results = app.service.solve_many(queries)
    except ReproError as exc:
        return _solve_failure(exc)
    return RouteResponse(
        200, response_for(payload.get("id"), results[0], include_stats=stats_flags[0])
    )


def _handle_batch(
    app: "Any", document: Dict[str, Any], payloads: List[Any]
) -> RouteResponse:
    queries, stats_flags, error = _parse_queries(app, payloads)
    if error is not None:
        return error
    try:
        responses: List[Dict[str, Any]] = []
        if queries:
            results = app.service.solve_many(queries)
            responses = [
                response_for(payload.get("id"), result, include_stats=flag)
                for payload, result, flag in zip(payloads, results, stats_flags)
            ]
        page, next_cursor, total = paginate(
            responses, document.get("cursor"), document.get("page_size")
        )
    except QueryError as exc:  # bad cursor / page_size
        return error_response(400, str(exc))
    except ReproError as exc:
        return _solve_failure(exc)
    return RouteResponse(
        200, {"results": page, "total": total, "next_cursor": next_cursor}
    )


def _solve_failure(exc: ReproError) -> RouteResponse:
    """Backend failure mid-solve: the request was fine, the fleet was not."""
    if isinstance(exc, WorkerUnavailableError):
        return error_response(503, f"worker fleet unavailable: {exc}", **{"Retry-After": "1"})
    return error_response(500, f"query execution failed: {exc}")


# ----------------------------------------------------------------------
# GET /health
# ----------------------------------------------------------------------
def handle_health(app: "Any") -> RouteResponse:
    """Fleet health: 200 ``ok`` / 503 ``degraded`` (load balancers eject on 503).

    Bypasses admission control and rate limiting in :mod:`.app` — a health
    probe must answer exactly when the gateway is saturated, and an LB's
    probes must never be shed as if they were traffic.
    """
    service = app.service
    info = service.cache_info()
    body: Dict[str, Any] = {
        "status": "ok",
        "backend": service.backend_name,
        "live_version": service.live_version,
        "placement_version": getattr(service.backend, "placement_version", 0),
        "draining": app.admission.draining,
        "cache": {
            "hits": info.hits,
            "misses": info.misses,
            "size": info.size,
            "max_size": info.max_size,
            "hit_rate": round(info.hit_rate, 4),
        },
    }
    backend = service.backend
    worker_stats = getattr(backend, "worker_stats", None)
    if callable(worker_stats):
        addresses = list(getattr(backend, "addresses", []))
        stats = worker_stats()
        workers = []
        for position, per_worker in enumerate(stats):
            address = addresses[position] if position < len(addresses) else str(position)
            workers.append(
                {
                    "address": address,
                    "alive": per_worker is not None,
                    "stats": per_worker,
                }
            )
        body["workers"] = workers
        if any(not worker["alive"] for worker in workers):
            body["status"] = "degraded"
    if app.admission.draining:
        body["status"] = "draining"
    status = 200 if body["status"] == "ok" else 503
    return RouteResponse(status, body)


# ----------------------------------------------------------------------
# GET /stats
# ----------------------------------------------------------------------
def handle_stats(app: "Any") -> RouteResponse:
    """Gateway observability: service counters + admission/rate-limit state.

    ``routing`` is the sharded-backend routing report (strategy, placement
    version, rolling imbalance, cumulative per-worker routed counts — the
    per-worker load surface) and ``null`` for backends that do not route.
    """
    service = app.service
    info = service.cache_info()
    return RouteResponse(
        200,
        {
            "service": service.stats().as_dict(),
            "cache": {
                "hits": info.hits,
                "misses": info.misses,
                "size": info.size,
                "max_size": info.max_size,
                "hit_rate": round(info.hit_rate, 4),
            },
            "backend": service.backend_name,
            "live_version": service.live_version,
            "routing": service.route_report(),
            "admission": app.admission.snapshot(),
            "ratelimit": app.ratelimiter.snapshot(),
            "gateway": app.request_counters(),
        },
    )
