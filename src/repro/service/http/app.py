"""HTTP transport: ThreadingHTTPServer wiring around the route handlers.

Layering (the routes/app split the subsystem is built on):

* :mod:`.routes` — pure handlers: parsed request in, ``RouteResponse`` out.
* :class:`GatewayApp` (here) — the request *pipeline*: route dispatch, body
  bounds, token-bucket rate limiting, admission control, outcome
  classification, counters and the JSONL access log.  Still socket-free —
  tests call :meth:`GatewayApp.handle` directly.
* :class:`HTTPGateway` (here) — the socket tier: a stdlib
  ``ThreadingHTTPServer`` (one thread per connection, daemon threads)
  translating HTTP to ``GatewayApp.handle`` calls.  No third-party web
  framework: the gateway must run wherever the solver runs.
* :func:`run_gateway` — the blocking ``stgq http`` entry point: announce
  ``STGQ-HTTP-READY host port`` on stdout (the same contract the TCP
  worker's READY line follows, so launchers learn ephemeral ports), then
  serve until SIGTERM/SIGINT and **drain**: stop admitting, finish every
  in-flight request, then exit 0.

Gateways are stateless by design — all graph/cache state lives in the
``QueryService`` (and, with ``--backend remote``, in the worker fleet
behind it) — so any number of ``HTTPGateway`` replicas can front one fleet
behind a dumb load balancer.  ``docs/http.md`` shows the topology.
"""

from __future__ import annotations

import json
import math
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Dict, Mapping, Optional, Tuple, Type

from ..codec import MAX_REQUEST_BYTES
from ..drain import ShutdownSignal, wait_for_drain
from .accesslog import AccessLog
from .admission import AdmissionController
from .ratelimit import RateLimiter
from .routes import (
    RouteResponse,
    error_response,
    handle_health,
    handle_queries,
    handle_stats,
)

__all__ = [
    "GatewayApp",
    "GatewayConfig",
    "HTTPGateway",
    "READY_MARKER",
    "build_handler",
    "run_gateway",
]

#: Stdout announcement (``STGQ-HTTP-READY host port``) once the gateway is
#: accepting; launchers parse it to learn ephemeral ports, mirroring the
#: TCP worker's ``STGQ-WORKER-READY`` contract.
READY_MARKER = "STGQ-HTTP-READY"

#: API-key request header the rate limiter buckets on.
API_KEY_HEADER = "X-API-Key"


class GatewayConfig:
    """Admission, rate-limit and body-size knobs for one gateway.

    Defaults suit a laptop-scale gateway; ``stgq http`` exposes each knob.
    ``rate`` of ``None`` disables per-client rate limiting (admission
    control still bounds the aggregate).
    """

    def __init__(
        self,
        max_concurrency: int = 8,
        max_queue: int = 16,
        retry_after: float = 1.0,
        rate: Optional[float] = None,
        burst: Optional[float] = None,
        max_body_bytes: int = MAX_REQUEST_BYTES,
        admit_timeout: Optional[float] = 10.0,
        drain_timeout: float = 30.0,
    ) -> None:
        self.max_concurrency = max_concurrency
        self.max_queue = max_queue
        self.retry_after = retry_after
        self.rate = rate
        self.burst = burst
        self.max_body_bytes = max_body_bytes
        #: How long a queued request waits for a solve slot before it is
        #: shed anyway (bounds worst-case latency under sustained overload).
        self.admit_timeout = admit_timeout
        #: How long the SIGTERM drain waits for in-flight requests.
        self.drain_timeout = drain_timeout


def _header(headers: Mapping[str, str], name: str) -> Optional[str]:
    """Case-insensitive header lookup over a plain mapping."""
    lowered = name.lower()
    for key, value in headers.items():
        if key.lower() == lowered:
            return value
    return None


def _retry_after_header(seconds: float) -> str:
    """``Retry-After`` is integral seconds; always advise at least 1."""
    return str(max(1, math.ceil(seconds)))


class GatewayApp:
    """The request pipeline: everything between the socket and the routes."""

    def __init__(
        self,
        service: Any,
        config: Optional[GatewayConfig] = None,
        access_log: Optional[AccessLog] = None,
    ) -> None:
        self.service = service
        self.config = config or GatewayConfig()
        self.admission = AdmissionController(
            max_concurrency=self.config.max_concurrency,
            max_queue=self.config.max_queue,
            retry_after=self.config.retry_after,
        )
        self.ratelimiter = RateLimiter(self.config.rate, self.config.burst)
        self.access_log = access_log if access_log is not None else AccessLog(stream=None)
        self._lock = threading.Lock()
        self._active = 0
        self._requests = 0
        self._by_status: Dict[str, int] = {}

    # ------------------------------------------------------------------
    # pipeline
    # ------------------------------------------------------------------
    def handle(
        self,
        method: str,
        path: str,
        headers: Optional[Mapping[str, str]] = None,
        body: bytes = b"",
        client: str = "",
    ) -> RouteResponse:
        """Serve one request end to end (dispatch, shed, log, count)."""
        headers = headers or {}
        api_key = _header(headers, API_KEY_HEADER)
        started = time.perf_counter()
        with self._lock:
            self._active += 1
        try:
            try:
                response, outcome, extra = self._dispatch(method, path, headers, body, client)
            except Exception as exc:  # noqa: BLE001 - the pipeline must answer
                response = error_response(500, f"internal error: {type(exc).__name__}: {exc}")
                outcome, extra = "error", {}
        finally:
            with self._lock:
                self._active -= 1
        latency_ms = (time.perf_counter() - started) * 1000.0
        with self._lock:
            self._requests += 1
            bucket = f"{response.status // 100}xx"
            self._by_status[bucket] = self._by_status.get(bucket, 0) + 1
        self.access_log.record(
            method,
            path,
            response.status,
            latency_ms,
            outcome,
            client=client,
            api_key=api_key,
            **extra,
        )
        return response

    def _dispatch(
        self,
        method: str,
        path: str,
        headers: Mapping[str, str],
        body: bytes,
        client: str,
    ) -> Tuple[RouteResponse, str, Dict[str, Any]]:
        route = path.split("?", 1)[0].rstrip("/") or "/"
        if route == "/health":
            if method != "GET":
                return error_response(405, "method not allowed", Allow="GET"), "client_error", {}
            return handle_health(self), "ok", {}
        if route == "/stats":
            if method != "GET":
                return error_response(405, "method not allowed", Allow="GET"), "client_error", {}
            return handle_stats(self), "ok", {}
        if route != "/v1/queries":
            return error_response(404, f"no such route: {route}"), "client_error", {}
        if method != "POST":
            return error_response(405, "method not allowed", Allow="POST"), "client_error", {}
        return self._dispatch_queries(headers, body, client)

    def _dispatch_queries(
        self, headers: Mapping[str, str], body: bytes, client: str
    ) -> Tuple[RouteResponse, str, Dict[str, Any]]:
        if len(body) > self.config.max_body_bytes:
            return (
                error_response(
                    413,
                    f"request body of {len(body)} bytes exceeds the "
                    f"{self.config.max_body_bytes}-byte limit",
                ),
                "client_error",
                {"bytes": len(body)},
            )
        key = _header(headers, API_KEY_HEADER) or client or "anonymous"
        allowed, retry_after = self.ratelimiter.allow(key)
        if not allowed:
            response = error_response(
                429,
                "rate limit exceeded for this API key",
                **{"Retry-After": _retry_after_header(retry_after)},
            )
            response.body["retry_after"] = math.ceil(retry_after)
            return response, "ratelimited", {}
        ticket = self.admission.try_admit(timeout=self.config.admit_timeout)
        if ticket is None:
            if self.admission.draining:
                response = error_response(
                    503,
                    "gateway is draining for shutdown",
                    **{"Retry-After": _retry_after_header(self.admission.retry_after)},
                )
                return response, "draining", {}
            response = error_response(
                429,
                "server over capacity, request shed",
                **{"Retry-After": _retry_after_header(self.admission.retry_after)},
            )
            response.body["retry_after"] = math.ceil(self.admission.retry_after)
            return response, "shed", {}
        with ticket:
            response = handle_queries(self, body)
        outcome = "ok" if response.status < 400 else "client_error"
        extra: Dict[str, Any] = {"queued": ticket.queued}
        if response.status == 200:
            extra["queries"] = (
                response.body["total"] if "results" in response.body else 1
            )
        return response, outcome, extra

    # ------------------------------------------------------------------
    # drain + observability
    # ------------------------------------------------------------------
    def begin_drain(self) -> None:
        """Refuse new query admissions (health keeps answering, as 503)."""
        self.admission.begin_drain()

    def in_flight(self) -> int:
        """Requests currently inside :meth:`handle` (drain polls to zero)."""
        with self._lock:
            return self._active

    def request_counters(self) -> Dict[str, Any]:
        with self._lock:
            return {
                "requests": self._requests,
                "active": self._active,
                "by_status": dict(self._by_status),
                "access_log_lines": self.access_log.lines,
            }


def build_handler(app: GatewayApp) -> Type[BaseHTTPRequestHandler]:
    """Request-handler class bound to one :class:`GatewayApp`."""

    class GatewayHandler(BaseHTTPRequestHandler):
        protocol_version = "HTTP/1.1"
        server_version = "stgq-http/1"
        # A half-open client must not park a handler thread forever.
        timeout = 60.0

        def log_message(self, format: str, *args: Any) -> None:
            pass  # the structured access log replaces stderr chatter

        def do_GET(self) -> None:  # noqa: N802 - http.server naming
            self._serve(b"")

        def do_POST(self) -> None:  # noqa: N802 - http.server naming
            declared = self.headers.get("Content-Length")
            try:
                length = int(declared) if declared is not None else 0
            except ValueError:
                self._write(error_response(400, "invalid Content-Length header"), close=True)
                return
            if length > app.config.max_body_bytes:
                # Refuse without reading: draining an oversized body would be
                # the resource spend the limit exists to prevent.  The unread
                # body poisons the connection, so close it.
                response = error_response(
                    413,
                    f"declared body of {length} bytes exceeds the "
                    f"{app.config.max_body_bytes}-byte limit",
                )
                app.access_log.record(
                    self.command,
                    self.path,
                    413,
                    0.0,
                    "client_error",
                    client=self.client_address[0],
                    bytes=length,
                )
                self._write(response, close=True)
                return
            self._serve(self.rfile.read(length))

        def _serve(self, body: bytes) -> None:
            response = app.handle(
                self.command,
                self.path,
                dict(self.headers.items()),
                body,
                client=self.client_address[0],
            )
            self._write(response)

        def _write(self, response: RouteResponse, close: bool = False) -> None:
            payload = json.dumps(response.body, separators=(",", ":")).encode("utf-8")
            try:
                self.send_response(response.status)
                self.send_header("Content-Type", "application/json")
                self.send_header("Content-Length", str(len(payload)))
                for name, value in response.headers.items():
                    self.send_header(name, value)
                if close:
                    self.send_header("Connection", "close")
                    self.close_connection = True
                self.end_headers()
                self.wfile.write(payload)
            except (BrokenPipeError, ConnectionResetError):
                self.close_connection = True  # client went away mid-response

    return GatewayHandler


class HTTPGateway:
    """One listening gateway: ThreadingHTTPServer + GatewayApp + drain."""

    def __init__(
        self,
        service: Any,
        host: str = "127.0.0.1",
        port: int = 0,
        config: Optional[GatewayConfig] = None,
        access_log: Optional[AccessLog] = None,
    ) -> None:
        self.app = GatewayApp(service, config=config, access_log=access_log)
        self._server = ThreadingHTTPServer((host, port), build_handler(self.app))
        self.host, self.port = self._server.server_address[:2]
        self._thread: Optional[threading.Thread] = None

    @property
    def address(self) -> str:
        return f"{self.host}:{self.port}"

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    def start(self) -> "HTTPGateway":
        """Serve in a background thread (the caller's thread stays free)."""
        self._thread = threading.Thread(
            target=self._server.serve_forever,
            kwargs={"poll_interval": 0.05},
            name=f"stgq-http-{self.port}",
            daemon=True,
        )
        self._thread.start()
        return self

    def drain_and_stop(self, timeout: Optional[float] = None) -> bool:
        """Graceful stop: refuse new work, finish in-flight, then close.

        Returns True when every in-flight request completed within the
        drain timeout — the zero-dropped-requests guarantee the SIGTERM
        contract promises.  False means the timeout expired with work
        still running (logged by the caller; the exit code stays 0, the
        orchestrator's escalation to SIGKILL is the backstop).
        """
        self.app.begin_drain()
        drained = wait_for_drain(
            self.app.in_flight,
            timeout=timeout if timeout is not None else self.app.config.drain_timeout,
        )
        self._server.shutdown()
        self._server.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None
        return drained

    def __enter__(self) -> "HTTPGateway":
        return self.start()

    def __exit__(self, exc_type: object, exc: object, tb: object) -> None:
        self.drain_and_stop()


def run_gateway(
    service: Any,
    host: str = "127.0.0.1",
    port: int = 8080,
    config: Optional[GatewayConfig] = None,
    access_log: Optional[AccessLog] = None,
    announce: bool = False,
    stop: Optional[ShutdownSignal] = None,
) -> int:
    """Blocking ``stgq http`` entry: serve until SIGTERM/SIGINT, then drain.

    Installs the shared :class:`~repro.service.drain.ShutdownSignal` (unless
    the caller passes one, e.g. tests driving ``trigger()``), so TERM/INT
    stop admission, let in-flight requests finish, and exit 0 — the same
    drained-shutdown contract as ``stgq worker`` and ``stgq serve``.
    """
    gateway = HTTPGateway(service, host=host, port=port, config=config, access_log=access_log)
    own_signal = stop is None
    shutdown = stop if stop is not None else ShutdownSignal().install()
    try:
        gateway.start()
        if announce:
            print(READY_MARKER, gateway.host, gateway.port, flush=True)
        shutdown.wait()
        drained = gateway.drain_and_stop()
        if not drained:
            print(
                f"stgq http: drain timed out with {gateway.app.in_flight()} "
                "requests still in flight",
                flush=True,
            )
    finally:
        if own_signal:
            shutdown.uninstall()
        service.close()
    return shutdown.exit_code()
