"""Deferred signal handling + in-flight draining, shared by every server.

The serving commands (``stgq serve --jsonl``, ``stgq worker``, ``stgq
http``) all face the same shutdown problem: a SIGTERM that raises
``SystemExit`` on the spot tears the process down *through* an in-flight
batch, dropping responses whose requests were already accepted.  The
orchestrator-friendly contract is the opposite — **stop accepting, finish
what you accepted, then exit** — and this module is the one implementation
of it:

* :class:`ShutdownSignal` — installs SIGINT/SIGTERM handlers that *record*
  the signal (a ``threading.Event`` plus the signum) instead of raising.
  The serving loop polls :attr:`ShutdownSignal.triggered` at its batch
  boundaries, finishes the batch it is on, writes the responses, and only
  then unwinds.
* :func:`wait_for_drain` — block until an ``in_flight()`` probe reports
  zero (or a deadline passes), the generic "wait for the accepted work to
  finish" step used by the HTTP gateway's admission controller and by
  tests.

The asyncio worker (:mod:`repro.service.net.worker`) implements the same
contract natively — its event-loop signal handlers already only set an
event; PR 8 added the drain *between* that event and the connection
teardown — but shares the exit-code convention below.

Exit codes: a drained shutdown is a *successful* run — the launchers
(``LocalWorkerCluster``, k8s) treat exit 0 on SIGTERM as "worker obeyed",
and the pre-existing worker behaviour already returned 0.  Use
:meth:`ShutdownSignal.exit_code` for that convention (0 after a handled
signal, since the drain completed).
"""

from __future__ import annotations

import signal
import threading
import time
from types import FrameType
from typing import Callable, Optional

__all__ = ["ShutdownSignal", "wait_for_drain"]


class ShutdownSignal:
    """Deferred SIGINT/SIGTERM: record the signal, let the loop drain.

    Usage::

        stop = ShutdownSignal().install()
        try:
            while not stop.triggered:
                batch = accept_next()        # bounded waits, so the loop
                serve(batch)                 # notices `triggered` promptly
        finally:
            stop.uninstall()
        return stop.exit_code()

    ``install``/``uninstall`` must run on the main thread (CPython only
    delivers signals there); both are no-ops for signals whose handler
    could not be installed, so library callers on non-main threads degrade
    to "never triggered" instead of crashing.
    """

    def __init__(self) -> None:
        self._event = threading.Event()
        self._previous: dict = {}
        self.signum: Optional[int] = None

    def _handle(self, signum: int, frame: Optional[FrameType]) -> None:
        self.signum = signum
        self._event.set()

    def install(self, *signums: int) -> "ShutdownSignal":
        """Install handlers (default SIGINT + SIGTERM); returns ``self``."""
        for signum in signums or (signal.SIGINT, signal.SIGTERM):
            try:
                self._previous[signum] = signal.signal(signum, self._handle)
            except ValueError:  # pragma: no cover - not the main thread
                pass
        return self

    def uninstall(self) -> None:
        """Restore the previous handlers (idempotent)."""
        previous, self._previous = self._previous, {}
        for signum, handler in previous.items():
            signal.signal(signum, handler)

    def __enter__(self) -> "ShutdownSignal":
        return self.install()

    def __exit__(self, exc_type: object, exc: object, tb: object) -> None:
        self.uninstall()

    @property
    def triggered(self) -> bool:
        """True once a handled signal arrived."""
        return self._event.is_set()

    def trigger(self) -> None:
        """Trip the shutdown programmatically (tests, embedding servers)."""
        self._event.set()

    def wait(self, timeout: Optional[float] = None) -> bool:
        """Block until a signal arrives (or ``timeout``); True if triggered."""
        return self._event.wait(timeout)

    def exit_code(self) -> int:
        """Process exit code after a *drained* shutdown.

        0 whether or not a signal arrived: a shutdown that drained cleanly
        is a successful run (the convention ``stgq worker`` already had,
        which ``LocalWorkerCluster`` and orchestrators assert on).
        """
        return 0


def wait_for_drain(
    in_flight: Callable[[], int],
    timeout: float = 30.0,
    poll: float = 0.02,
) -> bool:
    """Wait until ``in_flight()`` reports zero; True when fully drained.

    The generic second half of a graceful shutdown: the caller has stopped
    accepting work, and this blocks (bounded by ``timeout``) until the
    already-accepted work count reaches zero.  Returns ``False`` on
    timeout — the caller should log the abandonment, not pretend the drain
    succeeded.
    """
    deadline = time.monotonic() + timeout
    while in_flight() > 0:
        if time.monotonic() >= deadline:
            return False
        time.sleep(poll)
    return True
