"""Executor backends for :class:`~repro.service.QueryService` batches.

The service's batch path is a strategy object implementing
:class:`ExecutorBackend`:

``serial``
    Solve queries one after another on the calling thread.  Zero overhead,
    fully deterministic scheduling; the baseline the others are compared to.

``thread``
    Fan out across a persistent :class:`~concurrent.futures.ThreadPoolExecutor`
    sharing the service's ego-network cache.  Cheap to start and ideal for
    cache-hot traffic, but the compiled kernel's popcount loops hold the GIL,
    so throughput stops scaling past roughly one core.

``process``
    Shard the workload by initiator across persistent single-worker process
    pools (one :class:`~concurrent.futures.ProcessPoolExecutor` per shard).
    Every worker holds its own copy of the social graph plus a private
    ego-network LRU cache, and a query routes to the worker owning its
    initiator — by CRC32 :class:`ShardMap` by default, or by a versioned
    load-aware :class:`~repro.service.placement.PlacementMap` when one is
    supplied — so caches stay hot without any cross-process invalidation.
    This is the backend that scales the GIL-bound kernel across cores on
    one box.

``remote``
    The multi-node shape of ``process``: the same router duck type
    (:class:`ShardMap` fallback or a :class:`PlacementMap` with replica
    fan-out and failover), but each shard is a TCP worker (``stgq worker``)
    behind a persistent framed connection instead of a local pool.  Lives in
    :mod:`repro.service.net.remote`; needs worker addresses, so build it as
    ``make_backend("remote", connect="host:p1,host:p2")`` or construct a
    :class:`~repro.service.net.RemoteBackend` directly.

Every ``solve_batch`` call receives the batch's
:class:`~repro.service.context.ExecutionContext` and records all accounting
into it: the in-process backends record per query as they solve, the
sharded backends merge each worker's returned context *delta* — so
``service.stats()`` and ``service.cache_info()`` aggregate identically
whichever backend ran the batch, and no backend ever snapshots or diffs
service-global state.
"""

from __future__ import annotations

import functools
import multiprocessing
import os
import threading
import weakref
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from typing import TYPE_CHECKING, Dict, List, Optional, Protocol, Sequence, Tuple, Union

from ..exceptions import QueryError
from ..graph.mutations import MutationBatch
from .context import ExecutionContext
from .placement import PlacementMap
from .sharding import ShardMap

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from .query_service import Query, QueryService, Result

__all__ = [
    "ALL_BACKEND_NAMES",
    "BACKEND_NAMES",
    "ExecutorBackend",
    "ProcessBackend",
    "SerialBackend",
    "ThreadBackend",
    "make_backend",
]

#: In-process backends constructible from a bare name; ``remote`` also
#: exists but needs worker addresses (see :func:`make_backend`).
BACKEND_NAMES = ("serial", "thread", "process")

#: Every backend name, for CLI choices and documentation.
ALL_BACKEND_NAMES = BACKEND_NAMES + ("remote",)


class ExecutorBackend(Protocol):
    """Strategy interface the service delegates batch execution to.

    Implementations may keep persistent executors; they are started lazily on
    the first batch and released by :meth:`close` (idempotent — a closed
    backend restarts on its next batch).
    """

    name: str
    workers: int

    def solve_batch(
        self,
        service: "QueryService",
        queries: Sequence["Query"],
        context: ExecutionContext,
    ) -> List["Result"]:
        """Answer ``queries`` in submission order, recording stats into ``context``.

        ``context`` is the batch's private accounting scope; the service
        merges it into its totals after this returns.  Implementations must
        not touch the service's global counters directly.
        """
        ...

    def cache_entries(self) -> Optional[int]:
        """Total cached ego networks held by workers, or ``None`` when the
        backend uses the service's own in-process cache."""
        ...

    def clear_caches(self, service: "QueryService") -> None:
        """Drop every ego-network cache this backend answers from.

        Called by :meth:`QueryService.clear_cache` *after* the service has
        cleared its own front-end cache.  Backends whose workers hold
        private caches (``process``, ``remote``) must reach them here —
        otherwise a post-change service keeps serving pre-change ego
        networks from exactly the backends production uses.  In-process
        backends, which answer from the service's own cache, have nothing
        further to clear.
        """
        ...

    def apply_mutations(self, service: "QueryService", batch: MutationBatch) -> int:
        """Replicate an applied mutation batch to every backend worker.

        Called by :meth:`QueryService.apply_mutations` *after* the service
        has applied the batch locally and evicted its own touched entries.
        Sharded backends forward the versioned delta to each worker (which
        applies it with targeted invalidation of its private cache); a
        worker that reports a version gap is resynced via the full-reload
        path.  Returns the total number of worker cache entries evicted.
        In-process backends answer from the service's own cache — already
        invalidated — and return 0.
        """
        ...

    def close(self) -> None:
        """Release pools and worker processes (no-op for stateless backends)."""
        ...


class SerialBackend:
    """Solve every query on the calling thread, in order."""

    name = "serial"

    def __init__(self, workers: Optional[int] = None) -> None:
        self.workers = 1

    def solve_batch(
        self,
        service: "QueryService",
        queries: Sequence["Query"],
        context: ExecutionContext,
    ) -> List["Result"]:
        return [service._solve_local(query, context) for query in queries]

    def cache_entries(self) -> Optional[int]:
        return None

    def clear_caches(self, service: "QueryService") -> None:
        pass  # answers from the service's own cache, already cleared

    def apply_mutations(self, service: "QueryService", batch: MutationBatch) -> int:
        return 0  # answers from the service's own cache, already invalidated

    def close(self) -> None:
        pass


class ThreadBackend:
    """Fan out over a persistent thread pool sharing the service's cache."""

    name = "thread"

    def __init__(self, workers: Optional[int] = None) -> None:
        self.workers = workers or min(32, (os.cpu_count() or 1) + 4)
        self._pool: Optional[ThreadPoolExecutor] = None
        self._finalizer: Optional[weakref.finalize] = None
        self._lock = threading.Lock()

    def _ensure_pool(self) -> ThreadPoolExecutor:
        with self._lock:
            if self._pool is None:
                self._pool = ThreadPoolExecutor(
                    max_workers=self.workers, thread_name_prefix="stgq-worker"
                )
                # Safety net for callers that never close(): release the
                # threads when the backend is garbage collected.
                self._finalizer = weakref.finalize(self, self._pool.shutdown, wait=False)
            return self._pool

    def solve_batch(
        self,
        service: "QueryService",
        queries: Sequence["Query"],
        context: ExecutionContext,
    ) -> List["Result"]:
        if self.workers <= 1 or len(queries) <= 1:
            return [service._solve_local(query, context) for query in queries]
        # The pool threads all record into the same batch context (it is
        # thread-safe); the service merges it once afterwards.
        solve = functools.partial(service._solve_local, context=context)
        return list(self._ensure_pool().map(solve, queries))

    def cache_entries(self) -> Optional[int]:
        return None

    def clear_caches(self, service: "QueryService") -> None:
        pass  # answers from the service's own cache, already cleared

    def apply_mutations(self, service: "QueryService", batch: MutationBatch) -> int:
        return 0  # answers from the service's own cache, already invalidated

    def close(self) -> None:
        with self._lock:
            pool, self._pool = self._pool, None
            finalizer, self._finalizer = self._finalizer, None
        if finalizer is not None:
            finalizer.detach()
        if pool is not None:
            pool.shutdown(wait=True)


# ----------------------------------------------------------------------
# process backend: worker side
# ----------------------------------------------------------------------
# One module-level service per worker process, created by the pool
# initializer.  Each shard's pool has exactly one worker, so the service
# (and its ego-network cache) persists across that shard's batches.
_WORKER_SERVICE: Optional["QueryService"] = None


def _init_worker(graph, calendars, parameters, cache_size: int, live_version: int = 0) -> None:
    """Pool initializer: build this worker's private serial service.

    ``live_version`` pins the worker at the parent's position in the
    mutation stream: pools that start lazily *after* mutations were applied
    receive the already-mutated graph, so the worker must not believe it is
    at version 0 (the next delta would look like a gap).
    """
    global _WORKER_SERVICE
    from .query_service import QueryService

    _WORKER_SERVICE = QueryService(
        graph,
        calendars,
        parameters=parameters,
        cache_size=cache_size,
        backend="serial",
    )
    _WORKER_SERVICE._live_version = int(live_version)


def _worker_reload(graph, calendars, live_version: int = 0) -> None:
    """Refresh this worker's graph snapshot and drop its ego-network cache.

    The broadcast target of :meth:`ProcessBackend.clear_caches` and the
    version-gap fallback of :meth:`ProcessBackend.apply_mutations`: each
    worker process holds a *copy* of the graph shipped at pool start, so
    merely clearing its LRU would re-extract the same pre-change topology.
    The parent ships its current graph/calendars along with the clear —
    making ``QueryService.clear_cache()`` a true "the graph changed"
    invalidation on the process backend — and pins the worker at the
    parent's live version so subsequent deltas apply contiguously.
    """
    service = _WORKER_SERVICE
    if service is None:  # pragma: no cover - initializer always ran
        raise RuntimeError("process-pool worker used before initialisation")
    with service._mutation_lock:
        service.graph = graph
        service.calendars = calendars
        service._live_version = int(live_version)
        service._mutation_log.clear()
        service._availability_overrides = {}
        service._vertex_epochs.clear()
        service.clear_cache()


def _worker_apply_delta(batch_wire: Dict) -> Tuple[str, int, int]:
    """Apply one replicated mutation batch inside the worker process.

    Returns ``(status, entries_evicted, live_version)`` where ``status`` is
    the :meth:`QueryService.apply_delta` verdict (``applied`` / ``noop`` /
    ``gap``).  On a gap the parent falls back to :func:`_worker_reload`.
    """
    service = _WORKER_SERVICE
    if service is None:  # pragma: no cover - initializer always ran
        raise RuntimeError("process-pool worker used before initialisation")
    batch = MutationBatch.from_wire(batch_wire)
    status, invalidated = service.apply_delta(batch)
    return status, invalidated, service.live_version


def _worker_rss() -> int:
    """Resident set size of the calling process, in bytes.

    Submitted to pool workers by :meth:`ProcessBackend.worker_rss` — the
    observable that shows mmap-backed substrates working: N workers over one
    ``.stgq`` file each stay far below the size of a pickled graph copy.
    Must be module-level so forkserver workers can unpickle it by name.
    """
    try:
        with open("/proc/self/status", encoding="ascii") as fh:
            for line in fh:
                if line.startswith("VmRSS:"):
                    return int(line.split()[1]) * 1024
    except OSError:  # pragma: no cover - non-procfs platforms
        pass
    import resource  # pragma: no cover - non-procfs platforms

    return resource.getrusage(resource.RUSAGE_SELF).ru_maxrss * 1024  # pragma: no cover


def _worker_solve_batch(
    queries: Sequence["Query"],
) -> Tuple[List["Result"], Dict[str, float], int]:
    """Solve one shard's slice of a batch inside the worker process.

    The slice runs under its own :class:`ExecutionContext`, whose delta is
    returned for the parent to merge — no before/after snapshot of the
    worker's totals, so nothing in the worker ever needs to serialize
    around this call.  Also returns the worker's current cache size.
    """
    service = _WORKER_SERVICE
    if service is None:  # pragma: no cover - initializer always ran
        raise RuntimeError("process-pool worker used before initialisation")
    context = ExecutionContext()
    results = service.solve_many(queries, context=context)
    return results, context.as_delta(), service.cache_info().size


def _shutdown_pools(pools: List[ProcessPoolExecutor], wait: bool = False) -> None:
    """Shut down a list of pools (module-level so finalizers can hold it)."""
    for pool in pools:
        pool.shutdown(wait=wait)


def _default_mp_context():
    """Prefer ``forkserver``: safe to start lazily from a threaded process."""
    try:
        return multiprocessing.get_context("forkserver")
    except ValueError:  # pragma: no cover - e.g. Windows
        return multiprocessing.get_context()


class ProcessBackend:
    """Shard initiators across persistent single-worker process pools.

    Parameters
    ----------
    workers:
        Number of shards / worker processes (default: ``os.cpu_count()``,
        or the placement map's shard count when one is given).
    mp_context:
        Optional :mod:`multiprocessing` context.  Defaults to ``forkserver``
        where available (pools may be started lazily from an executor thread
        — e.g. the asyncio front-end — and forking a multi-threaded process
        is deadlock-prone and deprecated on Python 3.12+), else the platform
        default (``spawn`` on Windows).
    placement:
        Optional :class:`~repro.service.placement.PlacementMap` replacing
        the CRC32 :class:`ShardMap` fallback.  Its ``n_shards`` must match
        ``workers``.  Because every pool worker holds the full graph,
        routing is purely a cache-locality decision: any placement —
        including replicated hot egos — returns results byte-identical to
        serial (replicas may each build their own copy of a hot ego, so
        cache misses can exceed serial by one per extra replica used).

    Notes
    -----
    Worker pools start lazily on the first batch and are bound to that
    service (its graph, calendars and search parameters are shipped to every
    worker once, via the pool initializer).  The service-level ``cache_size``
    is split evenly across workers — keys partition by initiator, so the
    total capacity is comparable to the single-cache backends.

    :meth:`update_placement` swaps the router *without* touching worker
    caches: pool workers are keyed by shard id, so an initiator whose shard
    did not change between map versions keeps its hot ego network.
    """

    name = "process"

    def __init__(
        self,
        workers: Optional[int] = None,
        mp_context=None,
        placement: Optional[PlacementMap] = None,
    ) -> None:
        if placement is not None and workers is not None and placement.n_shards != workers:
            raise QueryError(
                f"placement routes over {placement.n_shards} shards "
                f"but the backend was asked for {workers} workers"
            )
        if placement is not None:
            workers = placement.n_shards
        self.workers = workers or os.cpu_count() or 1
        self._mp_context = mp_context
        self._router = placement if placement is not None else ShardMap(self.workers)
        self._pools: Optional[List[ProcessPoolExecutor]] = None
        self._finalizer: Optional[weakref.finalize] = None
        self._bound_service: Optional["QueryService"] = None
        self._cache_sizes: Dict[int, int] = {}
        self._lock = threading.Lock()

    def _ensure_started(self, service: "QueryService") -> List[ProcessPoolExecutor]:
        with self._lock:
            if self._pools is not None:
                if self._bound_service is not service:
                    raise QueryError(
                        "a ProcessBackend instance cannot be shared between services; "
                        "close() it first or give each service its own backend"
                    )
                return self._pools
            context = self._mp_context or _default_mp_context()
            per_worker_cache = max(1, -(-service.cache_size // self.workers))
            initargs = (
                service.graph,
                service.calendars,
                service.parameters,
                per_worker_cache,
                service.live_version,
            )
            self._pools = [
                ProcessPoolExecutor(
                    max_workers=1,
                    mp_context=context,
                    initializer=_init_worker,
                    initargs=initargs,
                )
                for _ in range(self.workers)
            ]
            # Safety net for callers that never close(): release the worker
            # processes when the backend is garbage collected.
            self._finalizer = weakref.finalize(self, _shutdown_pools, self._pools)
            self._bound_service = service
            self._cache_sizes = {}
            return self._pools

    def solve_batch(
        self,
        service: "QueryService",
        queries: Sequence["Query"],
        context: ExecutionContext,
    ) -> List["Result"]:
        pools = self._ensure_started(service)
        parts = self._router.partition(queries)
        futures = {
            shard: pools[shard].submit(_worker_solve_batch, [query for _, query in entries])
            for shard, entries in parts.items()
        }
        # Wait for every shard before merging anything into the batch
        # context, so a failing shard leaves the stats all-or-nothing: a
        # raised batch is never partially counted (worker-side cache state
        # may still have advanced; only the parent's aggregate view is
        # transactional).
        outcomes = {}
        error: Optional[BaseException] = None
        for shard, future in futures.items():
            try:
                outcomes[shard] = future.result()
            except BaseException as exc:
                if error is None:
                    error = exc
        if error is not None:
            raise error
        results: List[Optional["Result"]] = [None] * len(queries)
        for shard, entries in parts.items():
            shard_results, delta, cache_size = outcomes[shard]
            for (index, _), result in zip(entries, shard_results):
                results[index] = result
                # Re-record worker-side kernel stats into the parent batch
                # context: each result carries the exact SearchStats its
                # solve recorded inside the worker, so the context's merged
                # kernel view stays backend-invariant.
                context.merge_search(result.stats)
            context.merge_delta(delta)
            self._cache_sizes[shard] = cache_size
        return results  # type: ignore[return-value]

    def cache_entries(self) -> Optional[int]:
        return sum(self._cache_sizes.values())

    @property
    def placement_version(self) -> int:
        """Version of the active routing map (0 = CRC32 fallback)."""
        return self._router.version

    def route_report(self) -> Dict[str, object]:
        """The active router's rolling metrics (see ``RouteMetrics``)."""
        return self._router.route_report()

    def update_placement(self, placement: PlacementMap) -> bool:
        """Adopt ``placement`` for subsequent batches; caches stay hot.

        Returns ``True`` when adopted, ``False`` when the map is not newer
        than the active one (same idempotence rule as the wire's
        ``placement_update`` frame).  Worker pools are untouched: every
        worker already holds the full graph, so a map swap only changes
        which pool a future batch routes an initiator to — initiators whose
        shard is unchanged between versions keep their hot cache entries.
        Batches already partitioned keep their old routing; they remain
        correct because any worker can answer any initiator.
        """
        if placement.n_shards != self.workers:
            raise QueryError(
                f"placement routes over {placement.n_shards} shards "
                f"but this backend runs {self.workers} workers"
            )
        with self._lock:
            if placement.version <= self._router.version:
                return False
            self._router = placement
            return True

    def worker_rss(self) -> Dict[int, int]:
        """Resident set size (bytes) per started worker process.

        Returns ``{}`` before the pools have started.  Used by the substrate
        benchmarks to verify that workers booted from an mmap'd ``.stgq``
        file grow by page-cache *references*, not by a private graph copy.
        """
        with self._lock:
            pools = self._pools
        if pools is None:
            return {}
        futures = {shard: pool.submit(_worker_rss) for shard, pool in enumerate(pools)}
        return {shard: future.result() for shard, future in futures.items()}

    def clear_caches(self, service: "QueryService") -> None:
        """Broadcast a cache clear + graph refresh to every pool worker.

        Ships the service's *current* graph and calendars with the clear
        (each worker owns a stale copy from pool start) and waits for every
        worker to acknowledge before returning, so a subsequent batch can
        never race a half-cleared fleet.  A backend whose pools have not
        started yet has no worker caches to clear.
        """
        with self._lock:
            pools = self._pools
            if pools is None:
                return
            self._cache_sizes = {}
        graph, calendars = service.graph, service.calendars
        live = service.live_version
        futures = [pool.submit(_worker_reload, graph, calendars, live) for pool in pools]
        for future in futures:
            future.result()

    def apply_mutations(self, service: "QueryService", batch: MutationBatch) -> int:
        """Broadcast a versioned delta to every pool worker.

        Pools that have not started yet have no worker state to update —
        they will boot from the already-mutated graph at the current live
        version.  Every mutation can touch egos on any shard (the reverse
        index keys by *contained* vertex, not initiator), so the delta goes
        to all workers; a worker reporting a version gap is resynced with a
        full :func:`_worker_reload`.  Returns total worker entries evicted.
        """
        with self._lock:
            pools = self._pools
        if pools is None:
            return 0
        wire = batch.as_wire()
        futures = [pool.submit(_worker_apply_delta, wire) for pool in pools]
        total = 0
        stale: List[int] = []
        for shard, future in enumerate(futures):
            status, invalidated, _version = future.result()
            if status == "applied":
                total += invalidated
            elif status == "gap":
                stale.append(shard)
        if stale:
            graph, calendars = service.graph, service.calendars
            live = service.live_version
            reloads = [pools[shard].submit(_worker_reload, graph, calendars, live) for shard in stale]
            for future in reloads:
                future.result()
        return total

    def close(self) -> None:
        with self._lock:
            pools, self._pools = self._pools, None
            finalizer, self._finalizer = self._finalizer, None
            self._bound_service = None
            self._cache_sizes = {}
        if finalizer is not None:
            finalizer.detach()
        if pools is not None:
            _shutdown_pools(pools, wait=True)


def make_backend(
    backend: Union[str, "ExecutorBackend"],
    workers: Optional[int] = None,
    connect: Optional[str] = None,
    timeout: Optional[float] = None,
    placement: Optional[PlacementMap] = None,
) -> "ExecutorBackend":
    """Resolve a backend spec (name or ready instance) to an instance.

    ``workers`` only applies when ``backend`` is a name; a ready instance
    keeps its own configuration.  ``connect`` (worker addresses,
    ``"host:port,host:port"``) and ``timeout`` only apply to
    ``backend="remote"``, whose shard count comes from the address list.
    ``placement`` (a loaded :class:`~repro.service.placement.PlacementMap`)
    applies to the sharded backends only — ``serial`` and ``thread`` have
    no routing to place.
    """
    if not isinstance(backend, str):
        return backend
    if placement is not None and backend not in ("process", "remote"):
        raise QueryError(
            f"backend {backend!r} does not route by initiator; "
            "a placement map applies to 'process' or 'remote' only"
        )
    if backend == "serial":
        return SerialBackend()
    if backend == "thread":
        return ThreadBackend(workers)
    if backend == "process":
        return ProcessBackend(workers, placement=placement)
    if backend == "remote":
        if connect is None:
            raise QueryError(
                "backend 'remote' needs worker addresses: "
                "make_backend('remote', connect='host:port,host:port')"
            )
        # Deferred import: a top-level one would be circular (importing
        # .net runs net.worker, which imports query_service, which imports
        # this module before it finishes defining the backend classes).
        from .net.remote import RemoteBackend

        if timeout is not None:
            return RemoteBackend(connect, timeout=timeout, placement=placement)
        return RemoteBackend(connect, placement=placement)
    names = ", ".join(ALL_BACKEND_NAMES)
    raise QueryError(f"unknown backend {backend!r}; expected one of {names}")
