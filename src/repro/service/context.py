"""Per-batch execution contexts: scoped stats from the kernels to the wire.

Before this module existed, every observable counter of the service lived
in one service-global :class:`ServiceStats` guarded by a lock.  That shape
has a hidden cost: any caller that needs to know what *one batch* did (the
process backend's parent merge, the TCP worker's ``stats_delta``) had to
snapshot the globals before and after the batch and diff them — which is
only exact if nothing else runs in between, so batches serialized at every
point that needed an exact delta.  PR 3's known limitation ("a worker
serializes batch frames across connections") was exactly this.

:class:`ExecutionContext` inverts the flow.  One context is created per
batch and threaded down through every layer that does accountable work:

* the **solvers** record each solve's kernel :class:`SearchStats` into it
  (via the :class:`~repro.core.context.SearchContext` base the core
  defines — the core never imports the service);
* the **feasible-graph cache** records hits and misses into it;
* the **executor backends** record per-query service counters into it
  (``serial``/``thread``) or merge worker-produced deltas into it
  (``process``/``remote``) — no global snapshots, no diffing;
* the **service** merges the completed context into its lifetime totals
  exactly once, atomically, when the batch finishes (a failed batch merges
  nothing, so aggregate stats stay all-or-nothing on every backend);
* the **wire** ships ``context.as_delta()`` as the batch's ``stats_delta``
  and, opt-in, the merged kernel stats — so a response can carry the exact
  cost of producing it, end to end.

Because a context is private to its batch until the final merge, batches
never contend on stats state and a worker can interleave batches from any
number of gateway connections while every delta stays exact.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict

from ..core.context import SearchContext

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .query_service import Result

__all__ = ["ExecutionContext", "ServiceStats"]


@dataclass
class ServiceStats:
    """Aggregate counters the service exposes for observability.

    ``solve_seconds`` sums the wall-clock time spent inside the solvers
    (not queueing), so ``queries / solve_seconds`` is the per-worker solve
    rate while the ``solve_many`` wall-clock gives end-to-end throughput.

    Counters are accumulated per batch in an :class:`ExecutionContext` and
    merged into the service when the batch completes, so the aggregate view
    is identical whichever backend answered the queries.
    """

    queries: int = 0
    sg_queries: int = 0
    stg_queries: int = 0
    feasible: int = 0
    infeasible: int = 0
    cache_hits: int = 0
    cache_misses: int = 0
    solve_seconds: float = 0.0
    nodes_expanded: int = 0
    mutations: int = 0
    invalidations: int = 0

    @property
    def invalidations_per_mutation(self) -> float:
        """Average cache entries evicted per applied mutation (0.0 when none).

        The live-graph health signal: targeted invalidation keeps this far
        below the cache size, whereas a full nuke per mutation would pin it
        at the (pre-mutation) entry count.
        """
        return self.invalidations / self.mutations if self.mutations else 0.0

    def as_dict(self) -> Dict[str, float]:
        """Return the counters as a plain dict (for CSV/JSON reporting)."""
        return {
            "queries": self.queries,
            "sg_queries": self.sg_queries,
            "stg_queries": self.stg_queries,
            "feasible": self.feasible,
            "infeasible": self.infeasible,
            "cache_hits": self.cache_hits,
            "cache_misses": self.cache_misses,
            "solve_seconds": self.solve_seconds,
            "nodes_expanded": self.nodes_expanded,
            "mutations": self.mutations,
            "invalidations": self.invalidations,
        }

    def merge_dict(self, delta: Dict[str, float]) -> None:
        """Accumulate a counter delta (as produced by ``as_dict``)."""
        self.queries += int(delta.get("queries", 0))
        self.sg_queries += int(delta.get("sg_queries", 0))
        self.stg_queries += int(delta.get("stg_queries", 0))
        self.feasible += int(delta.get("feasible", 0))
        self.infeasible += int(delta.get("infeasible", 0))
        self.cache_hits += int(delta.get("cache_hits", 0))
        self.cache_misses += int(delta.get("cache_misses", 0))
        self.solve_seconds += float(delta.get("solve_seconds", 0.0))
        self.nodes_expanded += int(delta.get("nodes_expanded", 0))
        self.mutations += int(delta.get("mutations", 0))
        self.invalidations += int(delta.get("invalidations", 0))


class ExecutionContext(SearchContext):
    """Accounting scope for one batch (or one standalone solve).

    Extends the core's :class:`SearchContext` (merged kernel statistics,
    recorded by the solvers themselves) with the service-level counters —
    query counts, feasibility split, cache hits/misses — that previously
    lived on the service object.  Thread-safe: the thread backend records
    results from several pool threads into the same batch context.

    Lifecycle: ``QueryService.solve_many`` creates one per batch (or
    accepts a caller-provided one, which is how the TCP worker reads exact
    per-batch deltas without serializing batches), every layer records into
    it while the batch runs, and the service merges ``as_delta()`` into its
    lifetime totals once the batch completes.  A context is single-use:
    merge it once, then drop it.
    """

    def __init__(self) -> None:
        super().__init__()
        self._service_lock = threading.Lock()
        self._delta = ServiceStats()

    def record_result(self, result: "Result", is_stg: bool) -> None:
        """Fold one solved query's service counters into this context."""
        with self._service_lock:
            self._delta.queries += 1
            if is_stg:
                self._delta.stg_queries += 1
            else:
                self._delta.sg_queries += 1
            if result.feasible:
                self._delta.feasible += 1
            else:
                self._delta.infeasible += 1
            self._delta.solve_seconds += result.stats.elapsed_seconds
            self._delta.nodes_expanded += result.stats.nodes_expanded

    def record_cache(self, hit: bool) -> None:
        """Count one feasible-graph cache lookup (hit or miss)."""
        with self._service_lock:
            if hit:
                self._delta.cache_hits += 1
            else:
                self._delta.cache_misses += 1

    def merge_delta(self, delta: Dict[str, float]) -> None:
        """Fold a worker-produced counter delta into this context.

        The sharded backends (``process``/``remote``) run each shard's
        slice inside a worker that keeps its own context; the worker ships
        that context's ``as_delta()`` back and the parent folds it in here.
        """
        with self._service_lock:
            self._delta.merge_dict(delta)

    def as_delta(self) -> Dict[str, float]:
        """This context's service counters as a plain, JSON-safe dict."""
        with self._service_lock:
            return self._delta.as_dict()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        with self._service_lock:
            return (
                f"ExecutionContext(queries={self._delta.queries}, "
                f"cache_hits={self._delta.cache_hits}, "
                f"cache_misses={self._delta.cache_misses}, solves={self.solves})"
            )
