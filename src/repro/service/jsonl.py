"""JSONL request loop: the stdin/stdout wire protocol of ``stgq serve --jsonl``.

One request per line, one response per line, responses in request order.
The request/response payloads are shared with the socket path and documented
in :mod:`repro.service.codec` (``query_from_request`` / ``response_for`` are
re-exported here for backward compatibility).

Malformed lines, oversized lines (> ``codec.MAX_REQUEST_BYTES``), invalid
parameters and solver-time library errors (e.g. an initiator not in the
graph) produce ``{"id": ..., "error": "..."}`` in place of a result; the
loop keeps serving.  ``total_distance`` is ``null`` for infeasible results
(JSON has no ``Infinity``).  A request carrying ``"stats": true`` receives
its solve's kernel statistics in a ``stats`` response field (per-request
opt-in; see :mod:`repro.service.codec`).

The loop is pipelined: requests are read in batches and each batch is solved
through :meth:`~repro.service.QueryService.solve_many_async` while the next
batch is being read and the previous batch's responses are being written.
Batches fill only while input is immediately available, and pending
responses are flushed before the loop blocks for more input — so both
firehose pipelining clients and strict request/response clients are served
without deadlock.
"""

from __future__ import annotations

import asyncio
import json
import queue
import threading
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence, TextIO, Union

from ..exceptions import QueryError, ReproError
from .codec import MAX_REQUEST_BYTES, query_from_request, response_for, wants_stats
from .drain import ShutdownSignal
from .query_service import Query, QueryService, Result

__all__ = ["serve_jsonl", "query_from_request", "response_for"]


@dataclass
class _Entry:
    """One request line: either a parsed query or a parse error."""

    request_id: Any
    query: Optional[Query] = None
    error: Optional[str] = None
    include_stats: bool = False


def _parse_line(line: str) -> Optional[_Entry]:
    text = line.strip()
    if not text:
        return None
    if len(text) > MAX_REQUEST_BYTES or len(text.encode("utf-8")) > MAX_REQUEST_BYTES:
        # Refuse to json-parse a runaway line (a well-formed request is a
        # couple hundred bytes); answer with an error instead of ballooning.
        return _Entry(
            request_id=None,
            error=f"request line exceeds {MAX_REQUEST_BYTES} bytes",
        )
    try:
        payload = json.loads(text)
    except json.JSONDecodeError as exc:
        return _Entry(request_id=None, error=f"invalid JSON: {exc}")
    request_id = payload.get("id") if isinstance(payload, dict) else None
    try:
        return _Entry(
            request_id=request_id,
            query=query_from_request(payload),
            include_stats=wants_stats(payload),
        )
    except QueryError as exc:
        return _Entry(request_id=request_id, error=str(exc))


class _RequestReader:
    """Pull request lines off ``stream`` on a daemon thread, into a queue.

    The serve loop must know whether more input is *immediately* available:
    it batches aggressively while a pipelining client keeps sending, but has
    to flush pending responses before blocking when a request/response
    client stops to wait for answers.  Polling the file descriptor is wrong
    twice over (``select`` cannot see lines already pulled into the text
    wrapper's buffer, and cannot poll pipes at all on some platforms), so
    instead a reader thread performs the blocking ``readline`` calls and the
    loop keys off the queue state, which works for any stream.
    """

    _EOF = object()

    def __init__(self, stream: TextIO) -> None:
        self._queue: "queue.Queue[Any]" = queue.Queue()
        self._exhausted = False
        self._thread = threading.Thread(
            target=self._pump, args=(stream,), name="stgq-jsonl-reader", daemon=True
        )
        self._thread.start()

    def _pump(self, stream: TextIO) -> None:
        while True:
            # Bound every read: an unbounded readline would buffer a whole
            # runaway line (gigabytes, no newline) into memory before the
            # size guard could ever reject it.
            line = stream.readline(MAX_REQUEST_BYTES + 1)
            if line == "":
                break
            if len(line) > MAX_REQUEST_BYTES and not line.endswith("\n"):
                self._queue.put(
                    _Entry(
                        request_id=None,
                        error=f"request line exceeds {MAX_REQUEST_BYTES} bytes",
                    )
                )
                while True:  # discard the rest of the line, bounded reads
                    chunk = stream.readline(MAX_REQUEST_BYTES)
                    if chunk == "" or chunk.endswith("\n"):
                        break
                continue
            entry = _parse_line(line)
            if entry is not None:
                self._queue.put(entry)
        self._queue.put(self._EOF)

    @property
    def ready(self) -> bool:
        """True when the next batch can start without blocking."""
        return not self._queue.empty()

    def next_batch(
        self, batch_size: int, timeout: Optional[float] = None
    ) -> Optional[List[_Entry]]:
        """Block for the next batch, or return ``None`` at EOF.

        Fills up to ``batch_size`` entries but only from what is already
        queued — a client that pauses to read answers gets a short batch
        instead of a stall.  With ``timeout`` the blocking wait is bounded
        and an empty list means "nothing yet" — the tick the serve loop
        uses to notice a shutdown signal between requests.
        """
        if self._exhausted:
            return None
        try:
            first = self._queue.get(timeout=timeout)
        except queue.Empty:
            return []
        if first is self._EOF:
            self._exhausted = True
            return None
        batch = [first]
        while len(batch) < batch_size:
            try:
                item = self._queue.get_nowait()
            except queue.Empty:
                break
            if item is self._EOF:
                self._exhausted = True
                break
            batch.append(item)
        return batch

    def drain(self) -> List[_Entry]:
        """Everything already read off the stream, without blocking.

        The shutdown path: these lines were *accepted* (pulled off stdin by
        the reader thread, so the client cannot resend them), which obliges
        the loop to answer them before exiting.
        """
        drained: List[_Entry] = []
        while True:
            try:
                item = self._queue.get_nowait()
            except queue.Empty:
                return drained
            if item is self._EOF:
                self._exhausted = True
                return drained
            drained.append(item)


async def _solve_entries(service: QueryService, entries: List[_Entry]) -> List[Union[Result, str]]:
    """Solve one batch's parsed queries, turning library errors into strings.

    Requests that fail the service's own validation (unknown initiator,
    STGQ without calendars) are rejected up front per entry, so the batch
    fast path stays exception-free and service stats count each query
    exactly once on every backend.  Any remaining library error downgrades
    the whole batch to error responses rather than killing the loop.
    """
    for entry in entries:
        if entry.query is not None:
            try:
                service._validate(entry.query)
            except ReproError as exc:
                entry.error = str(exc)
                entry.query = None
    queries = [entry.query for entry in entries if entry.query is not None]
    if not queries:
        return []
    try:
        return list(await service.solve_many_async(queries))
    except Exception as exc:  # pragma: no cover - defensive backstop
        # Covers both library errors and executor failures (e.g. a broken
        # process pool after a worker died): answer the batch with errors
        # instead of killing the loop.
        return [str(exc) or type(exc).__name__] * len(queries)


def _write_responses(
    entries: Sequence[_Entry],
    outcomes: Sequence[Union[Result, str]],
    output_stream: TextIO,
) -> None:
    cursor = iter(outcomes)
    for entry in entries:
        if entry.error is not None:
            payload: Dict[str, Any] = {"id": entry.request_id, "error": entry.error}
        else:
            outcome = next(cursor)
            if isinstance(outcome, str):
                payload = {"id": entry.request_id, "error": outcome}
            else:
                payload = response_for(
                    entry.request_id, outcome, include_stats=entry.include_stats
                )
        output_stream.write(json.dumps(payload, separators=(",", ":")) + "\n")
    output_stream.flush()


async def _serve(
    service: QueryService,
    input_stream: TextIO,
    output_stream: TextIO,
    batch_size: int,
    stop: Optional[ShutdownSignal] = None,
) -> int:
    served = 0
    pending: Optional[tuple] = None
    reader = _RequestReader(input_stream)
    # With a stop signal the blocking read is bounded so the loop notices
    # SIGTERM between requests; without one it blocks forever (EOF-driven).
    poll = 0.1 if stop is not None else None

    async def flush(item: tuple) -> None:
        nonlocal served
        entries, task = item
        _write_responses(entries, await task, output_stream)
        served += len(entries)

    try:
        while True:
            if pending is not None and not reader.ready:
                # The client is waiting on answers, not sending: flush before
                # blocking for more input or neither side makes progress.
                item, pending = pending, None
                await flush(item)
            if stop is not None and stop.triggered:
                # Drained shutdown: the in-flight batch flushes below
                # (finally), but lines the reader thread already pulled off
                # stdin would vanish unanswered — solve and answer them too,
                # then exit 0.  Nothing accepted is dropped.
                leftovers = reader.drain()
                if leftovers:
                    task = asyncio.ensure_future(_solve_entries(service, leftovers))
                    if pending is not None:
                        item, pending = pending, None
                        await flush(item)
                    pending = (leftovers, task)
                break
            entries = reader.next_batch(batch_size, timeout=poll)
            if entries is None:
                break
            if not entries:
                continue  # timed-out tick: re-check the stop signal
            task = asyncio.ensure_future(_solve_entries(service, entries))
            # Give the task one loop tick so its batch is already running on
            # the executor while we write the previous responses and read
            # more input.
            await asyncio.sleep(0)
            if pending is not None:
                item, pending = pending, None
                await flush(item)
            pending = (entries, task)
        if pending is not None:
            item, pending = pending, None
            await flush(item)
    finally:
        if pending is not None:
            # Never orphan an in-flight batch (e.g. when a write failed):
            # its requests still get responses or at least a retrieved error.
            try:
                await flush(pending)
            except Exception:  # pragma: no cover - already failing
                pending[1].cancel()
    return served


def serve_jsonl(
    service: QueryService,
    input_stream: TextIO,
    output_stream: TextIO,
    batch_size: int = 64,
    stop: Optional[ShutdownSignal] = None,
) -> int:
    """Serve JSONL requests from ``input_stream`` until EOF.

    Returns the number of requests answered (including error responses).
    Responses preserve request order; solving one batch overlaps with
    reading the next, so a pipelining client keeps every backend worker
    busy without waiting for round trips.

    ``stop`` (a :class:`~repro.service.drain.ShutdownSignal`, installed by
    ``stgq serve --jsonl``) makes SIGTERM a *drained* shutdown: the loop
    stops reading, answers the in-flight batch **and** every line already
    read off the stream, then returns normally — instead of the old
    mid-batch ``SystemExit`` that dropped accepted requests.
    """
    if batch_size < 1:
        raise QueryError(f"batch_size must be >= 1, got {batch_size}")
    return asyncio.run(_serve(service, input_stream, output_stream, batch_size, stop=stop))
