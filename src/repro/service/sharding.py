"""Locality-aware routing of queries to executor workers.

The process backend keeps one worker process — and therefore one ego-network
cache — per shard.  Routing every query whose initiator maps to shard *i*
onto worker *i* means an initiator's extracted (and bitset-compiled) ego
network is built exactly once, inside one worker, and every later query from
that initiator finds it hot.  This is the same locality-aware placement
argument made for clustered query processors: work that touches the same
data should land on the same node.

:func:`stable_shard` intentionally avoids the built-in :func:`hash`: Python
randomises string hashing per process (``PYTHONHASHSEED``), and the parent
and its worker processes must agree on the placement of every initiator.

:class:`ShardMap` is the **CRC32 fallback strategy** behind the routing
interface that :class:`~repro.service.placement.PlacementMap` implements for
load-aware deployments: both expose ``version`` (0 here — "no placement"),
``shard_of``, ``replicas_of``, ``partition``, ``load_report``, ``imbalance``
and ``route_report``, so every backend routes through one duck type and a
placement file is a pure deployment decision.

Skew observability is a **rolling metric**, not a log line: every
``partition()`` call feeds a per-map :class:`RouteMetrics` (last/max routed
imbalance, skewed-batch count, cumulative per-shard routed totals) surfaced
through ``QueryService.route_report()``, the worker ``stats`` frame,
``stgq stats --json`` and HTTP ``/stats`` — operators watch a counter
instead of grepping for a once-per-process warning.
"""

from __future__ import annotations

import logging
import threading
import zlib
from typing import Dict, List, Sequence, Tuple, TypeVar

from ..exceptions import QueryError
from ..types import Vertex

__all__ = ["RouteMetrics", "ShardMap", "stable_shard", "IMBALANCE_WARN_THRESHOLD"]

Q = TypeVar("Q")

logger = logging.getLogger(__name__)

#: A routed batch whose hottest shard exceeds this multiple of the mean load
#: counts as *skewed* in :class:`RouteMetrics` (the ROADMAP's ~1.5x skew
#: flag — the point where hash placement stops being good enough and
#: load-aware placement is worth deploying).  Tiny batches (< 2x the shard
#: count) are trivially imbalanced and never measured.
IMBALANCE_WARN_THRESHOLD = 1.5


def stable_shard(vertex: Vertex, n_shards: int) -> int:
    """Map ``vertex`` to a shard id in ``[0, n_shards)``.

    The mapping is deterministic across processes and Python invocations
    (CRC32 of the vertex ``repr``), so a parent and its pool workers always
    agree on which worker owns an initiator.  This requires vertex ids with
    *value-based* reprs — ints, strings, tuples thereof (what every dataset
    in this package uses).  Custom vertex objects that keep the default
    identity repr (``<Person object at 0x...>``) would shard the same
    logical initiator inconsistently between runs; give such classes a
    stable ``__repr__`` before using the process backend.
    """
    if n_shards < 1:
        raise QueryError(f"n_shards must be >= 1, got {n_shards}")
    if n_shards == 1:
        return 0
    return zlib.crc32(repr(vertex).encode("utf-8")) % n_shards


class RouteMetrics:
    """Rolling per-map routing statistics (thread-safe).

    One instance lives inside each router (:class:`ShardMap` or
    :class:`~repro.service.placement.PlacementMap`); ``partition()`` feeds
    it on every routed batch.  ``report()`` is the operator surface: how
    many batches routed, how many were skewed past
    :data:`IMBALANCE_WARN_THRESHOLD`, the last and worst measured
    imbalance, and cumulative per-shard routed query counts (the
    "per-worker load" HTTP ``/stats`` exposes).

    Imbalance is only *measured* on batches of at least ``2 * n_shards``
    queries — a single query on a 4-shard map is trivially "4x imbalanced"
    and would poison the maximum — but routed totals accumulate for every
    batch regardless.
    """

    __slots__ = (
        "n_shards",
        "lock",
        "batches",
        "queries",
        "measured_batches",
        "skewed_batches",
        "last_imbalance",
        "max_imbalance",
        "routed",
    )

    def __init__(self, n_shards: int) -> None:
        self.n_shards = n_shards
        self.lock = threading.Lock()
        self.batches = 0
        self.queries = 0
        self.measured_batches = 0
        self.skewed_batches = 0
        self.last_imbalance = 0.0
        self.max_imbalance = 0.0
        self.routed = [0] * n_shards

    def note_batch(self, parts: Dict[int, List[Tuple[int, Q]]], total: int) -> None:
        """Fold one partitioned batch into the rolling totals."""
        measurable = self.n_shards > 1 and total >= 2 * self.n_shards
        ratio = 0.0
        hottest = count = 0
        if measurable:
            hottest, count = max(
                ((shard, len(entries)) for shard, entries in parts.items()),
                key=lambda item: item[1],
            )
            ratio = count / (total / self.n_shards)
        with self.lock:
            self.batches += 1
            self.queries += total
            for shard, entries in parts.items():
                self.routed[shard] += len(entries)
            if measurable:
                self.measured_batches += 1
                self.last_imbalance = ratio
                if ratio > self.max_imbalance:
                    self.max_imbalance = ratio
                if ratio > IMBALANCE_WARN_THRESHOLD:
                    self.skewed_batches += 1
        if measurable and ratio > IMBALANCE_WARN_THRESHOLD:
            # Observability lives in report(); the log line stays at DEBUG
            # so a persistently skewed stream cannot flood the logs.
            logger.debug(
                "shard imbalance %.2fx on a %d-query batch: shard %d holds %d "
                "queries (mean %.1f over %d shards)",
                ratio,
                total,
                hottest,
                count,
                total / self.n_shards,
                self.n_shards,
            )

    def report(self) -> Dict[str, object]:
        """Snapshot of the rolling totals (JSON-safe)."""
        with self.lock:
            return {
                "batches": self.batches,
                "queries": self.queries,
                "measured_batches": self.measured_batches,
                "skewed_batches": self.skewed_batches,
                "last_imbalance": self.last_imbalance,
                "max_imbalance": self.max_imbalance,
                "imbalance_threshold": IMBALANCE_WARN_THRESHOLD,
                "routed": list(self.routed),
            }


class ShardMap:
    """Deterministic CRC32 assignment of initiators to ``n_shards`` workers.

    The zero-configuration fallback router: uniform over initiators, blind
    to load.  ``version`` is always 0 — any real
    :class:`~repro.service.placement.PlacementMap` (version ≥ 1) supersedes
    it, which is how the ``placement_update`` adoption rule knows a pushed
    map always beats the fallback.
    """

    __slots__ = ("n_shards", "version", "_metrics")

    strategy = "crc32"

    def __init__(self, n_shards: int) -> None:
        if n_shards < 1:
            raise QueryError(f"n_shards must be >= 1, got {n_shards}")
        self.n_shards = n_shards
        self.version = 0
        self._metrics = RouteMetrics(n_shards)

    def shard_of(self, initiator: Vertex) -> int:
        """Shard id owning ``initiator``'s ego-network cache entries."""
        return stable_shard(initiator, self.n_shards)

    def replicas_of(self, initiator: Vertex) -> Tuple[int, ...]:
        """CRC32 placement never replicates: always one candidate shard."""
        return (stable_shard(initiator, self.n_shards),)

    def partition(self, queries: Sequence[Q]) -> Dict[int, List[Tuple[int, Q]]]:
        """Group ``queries`` by the shard owning their initiator.

        Returns a dict mapping shard id to ``(original_index, query)`` pairs
        in submission order, so callers can reassemble results positionally.
        Only shards that received at least one query appear as keys.  Every
        batch feeds the rolling :class:`RouteMetrics` (see
        :meth:`route_report`).
        """
        parts: Dict[int, List[Tuple[int, Q]]] = {}
        for index, query in enumerate(queries):
            shard = self.shard_of(query.initiator)  # type: ignore[attr-defined]
            parts.setdefault(shard, []).append((index, query))
        self._metrics.note_batch(parts, len(queries))
        return parts

    def load_report(self, queries: Sequence[Q]) -> List[int]:
        """Per-shard query counts for ``queries`` (zeros for idle shards).

        The balance diagnostic behind ``bench_service.py --skew``: CRC32
        placement is uniform over *initiators*, so a Zipfian workload —
        where a few heavy users dominate — can still load shards unevenly.
        A capacity planner reads this to size the worker fleet.
        """
        counts = [0] * self.n_shards
        for query in queries:
            counts[self.shard_of(query.initiator)] += 1  # type: ignore[attr-defined]
        return counts

    def imbalance(self, queries: Sequence[Q]) -> float:
        """Max/mean shard-load ratio (1.0 = perfectly balanced, 0.0 = empty).

        The hottest shard bounds cluster throughput, so this ratio is the
        headline number of the skewed-workload benchmark.
        """
        counts = self.load_report(queries)
        total = sum(counts)
        if not total:
            return 0.0
        mean = total / self.n_shards
        return max(counts) / mean

    def route_report(self) -> Dict[str, object]:
        """Rolling routing metrics plus this map's identity (JSON-safe)."""
        report = {
            "strategy": self.strategy,
            "version": self.version,
            "n_shards": self.n_shards,
            "assigned_egos": 0,
            "replicated_egos": 0,
        }
        report.update(self._metrics.report())
        return report

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ShardMap(n_shards={self.n_shards})"
