"""Locality-aware routing of queries to executor workers.

The process backend keeps one worker process — and therefore one ego-network
cache — per shard.  Routing every query whose initiator maps to shard *i*
onto worker *i* means an initiator's extracted (and bitset-compiled) ego
network is built exactly once, inside one worker, and every later query from
that initiator finds it hot.  This is the same locality-aware placement
argument made for clustered query processors: work that touches the same
data should land on the same node.

:func:`stable_shard` intentionally avoids the built-in :func:`hash`: Python
randomises string hashing per process (``PYTHONHASHSEED``), and the parent
and its worker processes must agree on the placement of every initiator.
"""

from __future__ import annotations

import logging
import threading
import zlib
from typing import Dict, List, Sequence, Tuple, TypeVar

from ..exceptions import QueryError
from ..types import Vertex

__all__ = ["ShardMap", "stable_shard", "IMBALANCE_WARN_THRESHOLD"]

Q = TypeVar("Q")

logger = logging.getLogger(__name__)

#: ``partition`` logs a warning when a routed batch loads its hottest shard
#: more than this many times the mean (the ROADMAP's ~1.5x skew flag — the
#: point where hash placement stops being good enough and load-aware
#: placement is worth considering).
IMBALANCE_WARN_THRESHOLD = 1.5


def stable_shard(vertex: Vertex, n_shards: int) -> int:
    """Map ``vertex`` to a shard id in ``[0, n_shards)``.

    The mapping is deterministic across processes and Python invocations
    (CRC32 of the vertex ``repr``), so a parent and its pool workers always
    agree on which worker owns an initiator.  This requires vertex ids with
    *value-based* reprs — ints, strings, tuples thereof (what every dataset
    in this package uses).  Custom vertex objects that keep the default
    identity repr (``<Person object at 0x...>``) would shard the same
    logical initiator inconsistently between runs; give such classes a
    stable ``__repr__`` before using the process backend.
    """
    if n_shards < 1:
        raise QueryError(f"n_shards must be >= 1, got {n_shards}")
    if n_shards == 1:
        return 0
    return zlib.crc32(repr(vertex).encode("utf-8")) % n_shards


class ShardMap:
    """Deterministic assignment of initiators to ``n_shards`` workers."""

    __slots__ = ("n_shards", "_imbalance_warned", "_warn_lock")

    def __init__(self, n_shards: int) -> None:
        if n_shards < 1:
            raise QueryError(f"n_shards must be >= 1, got {n_shards}")
        self.n_shards = n_shards
        self._imbalance_warned = False
        self._warn_lock = threading.Lock()

    def shard_of(self, initiator: Vertex) -> int:
        """Shard id owning ``initiator``'s ego-network cache entries."""
        return stable_shard(initiator, self.n_shards)

    def partition(self, queries: Sequence[Q]) -> Dict[int, List[Tuple[int, Q]]]:
        """Group ``queries`` by the shard owning their initiator.

        Returns a dict mapping shard id to ``(original_index, query)`` pairs
        in submission order, so callers can reassemble results positionally.
        Only shards that received at least one query appear as keys.

        A routed batch whose hottest shard exceeds
        :data:`IMBALANCE_WARN_THRESHOLD` times the mean load is logged as a
        warning (only for batches of at least ``2 * n_shards`` queries —
        tiny batches are trivially imbalanced), so a skewed production
        workload surfaces in the logs before it surfaces as a hot worker.
        The warning fires once per :class:`ShardMap`; later skewed batches
        log at DEBUG so a persistently skewed stream cannot flood the logs.
        """
        parts: Dict[int, List[Tuple[int, Q]]] = {}
        for index, query in enumerate(queries):
            shard = self.shard_of(query.initiator)  # type: ignore[attr-defined]
            parts.setdefault(shard, []).append((index, query))
        total = len(queries)
        if self.n_shards > 1 and total >= 2 * self.n_shards:
            mean = total / self.n_shards
            hottest, count = max(
                ((shard, len(entries)) for shard, entries in parts.items()),
                key=lambda item: item[1],
            )
            ratio = count / mean
            if ratio > IMBALANCE_WARN_THRESHOLD:
                # partition() sits on the hot path of every routed batch, so
                # a persistently skewed workload would otherwise emit one
                # identical warning per batch.  Warn once per ShardMap (i.e.
                # once per backend lifetime) and demote repeats to DEBUG.
                # Concurrent batches race to partition(), hence the lock.
                with self._warn_lock:
                    emit = logger.debug if self._imbalance_warned else logger.warning
                    self._imbalance_warned = True
                emit(
                    "shard imbalance %.2fx on a %d-query batch: shard %d holds %d "
                    "queries (mean %.1f over %d shards); consider load-aware placement",
                    ratio,
                    total,
                    hottest,
                    count,
                    mean,
                    self.n_shards,
                )
        return parts

    def load_report(self, queries: Sequence[Q]) -> List[int]:
        """Per-shard query counts for ``queries`` (zeros for idle shards).

        The balance diagnostic behind ``bench_service.py --skew``: CRC32
        placement is uniform over *initiators*, so a Zipfian workload —
        where a few heavy users dominate — can still load shards unevenly.
        A capacity planner reads this to size the worker fleet.
        """
        counts = [0] * self.n_shards
        for query in queries:
            counts[self.shard_of(query.initiator)] += 1  # type: ignore[attr-defined]
        return counts

    def imbalance(self, queries: Sequence[Q]) -> float:
        """Max/mean shard-load ratio (1.0 = perfectly balanced, 0.0 = empty).

        The hottest shard bounds cluster throughput, so this ratio is the
        headline number of the skewed-workload benchmark.
        """
        counts = self.load_report(queries)
        total = sum(counts)
        if not total:
            return 0.0
        mean = total / self.n_shards
        return max(counts) / mean

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ShardMap(n_shards={self.n_shards})"
