"""Pivot time slots (paper §4.2, Lemma 4).

For an activity of ``m`` consecutive slots, the paper observes that only the
slots with IDs ``m, 2m, 3m, ...`` ("pivot time slots") need to be anchored:
any feasible activity period of length ``m`` contains exactly one pivot slot,
and the period anchored at pivot ``i*m`` is contained in the window
``[(i-1)*m + 1, (i+1)*m - 1]`` of ``2m - 1`` slots.  STGSelect therefore
iterates over pivot slots instead of over every possible start slot.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Set

from ..exceptions import ScheduleError
from ..types import Vertex
from .calendars import CalendarStore
from .slots import SlotRange

__all__ = ["PivotWindow", "pivot_slots", "pivot_window", "pivot_windows", "candidate_periods"]


@dataclass(frozen=True)
class PivotWindow:
    """A pivot slot together with its candidate window of ``2m - 1`` slots."""

    pivot: int
    window: SlotRange
    activity_length: int

    def periods(self) -> List[SlotRange]:
        """All activity periods of length ``m`` inside the window that contain the pivot."""
        result = []
        for period in self.window.windows(self.activity_length):
            if self.pivot in period:
                result.append(period)
        return result


def pivot_slots(horizon: int, activity_length: int) -> List[int]:
    """Return the pivot slot IDs ``m, 2m, ...`` within ``horizon``.

    Raises :class:`ScheduleError` when the activity cannot fit in the horizon.
    """
    if activity_length < 1:
        raise ScheduleError(f"activity length must be >= 1, got {activity_length}")
    if horizon < activity_length:
        raise ScheduleError(
            f"activity of {activity_length} slots cannot fit a horizon of {horizon} slots"
        )
    return list(range(activity_length, horizon + 1, activity_length))


def pivot_window(pivot: int, activity_length: int, horizon: int) -> PivotWindow:
    """Return the candidate window ``[(i-1)m + 1, (i+1)m - 1]`` clipped to the horizon."""
    if pivot % activity_length != 0:
        raise ScheduleError(f"slot {pivot} is not a pivot slot for m={activity_length}")
    start = pivot - activity_length + 1
    end = min(horizon, pivot + activity_length - 1)
    return PivotWindow(pivot=pivot, window=SlotRange(start, end), activity_length=activity_length)


def pivot_windows(horizon: int, activity_length: int) -> List[PivotWindow]:
    """All pivot windows for the given horizon and activity length."""
    return [pivot_window(p, activity_length, horizon) for p in pivot_slots(horizon, activity_length)]


def candidate_periods(horizon: int, activity_length: int) -> List[SlotRange]:
    """Every possible activity period of ``activity_length`` slots in the horizon.

    This is the search space of the *baseline* STGQ algorithm (one SGQ per
    period); the pivot decomposition covers exactly the same periods, which
    is asserted by the property tests.
    """
    return SlotRange(1, horizon).windows(activity_length)


def feasible_members_for_pivot(
    calendars: CalendarStore,
    window: PivotWindow,
    candidates: Iterable[Vertex],
) -> Set[Vertex]:
    """People who have at least ``m`` consecutive free slots inside the pivot window
    *and* are free in the pivot slot itself (Definition 4 of the paper).
    """
    feasible: Set[Vertex] = set()
    for person in candidates:
        sched = calendars.get(person)
        if not sched.is_available(window.pivot):
            continue
        run = sched.restricted(window.window).run_containing(window.pivot)
        if run is not None and len(run) >= window.activity_length:
            feasible.add(person)
    return feasible
