"""Synthetic schedule generators.

The paper collected real Google Calendar schedules from 194 participants and
resampled daily schedules from that pool for the 12 800-person synthetic
dataset.  These generators produce availability patterns with the same
macro structure: day-based rhythm (work hours vs. evenings), busy blocks of
contiguous slots (meetings), and per-person variation in how full the
calendar is.
"""

from __future__ import annotations

import random
from typing import Iterable, Optional, Sequence

from ..exceptions import ScheduleError
from ..types import Vertex
from .calendars import CalendarStore
from .schedule import Schedule
from .slots import SLOTS_PER_DAY_DEFAULT

__all__ = [
    "random_schedule",
    "day_structured_schedule",
    "generate_calendar_store",
    "resample_calendar_store",
]


def random_schedule(
    horizon: int,
    availability: float = 0.5,
    rng: Optional[random.Random] = None,
    seed: Optional[int] = None,
) -> Schedule:
    """Uniformly random schedule where each slot is free with probability ``availability``."""
    if not 0.0 <= availability <= 1.0:
        raise ScheduleError(f"availability must be in [0, 1], got {availability}")
    rng = rng or random.Random(seed)
    free = [slot for slot in range(1, horizon + 1) if rng.random() < availability]
    return Schedule(horizon, free)


def day_structured_schedule(
    days: int,
    slots_per_day: int = SLOTS_PER_DAY_DEFAULT,
    busy_block_count: int = 4,
    busy_block_length: int = 3,
    evening_free_prob: float = 0.75,
    work_free_prob: float = 0.45,
    night_free_prob: float = 0.05,
    band_shift: int = 0,
    rng: Optional[random.Random] = None,
    seed: Optional[int] = None,
) -> Schedule:
    """Generate a day-structured schedule imitating a shared Google Calendar.

    Each day is split into night (00:00-08:00), work hours (08:00-18:00) and
    evening (18:00-24:00) bands.  Availability is *block structured*, the way
    real calendars are: the work band starts free and has ``busy_block_count``
    contiguous meetings of ``busy_block_length`` slots carved out of it, the
    evening is one long free block with probability ``evening_free_prob``
    (otherwise a dinner-sized part of it is blocked), and nights are almost
    always busy.  ``work_free_prob`` scales how packed the workday is: lower
    values add proportionally more meetings.  The block structure is what
    makes long activities (large ``m``) plausible yet non-trivial — common
    free runs exist, but they are scarce and have to be found.

    ``band_shift`` moves the whole day pattern earlier (negative) or later
    (positive) by that many slots — the "chronotype" of the person.  Real
    participant pools mix early birds and night owls, which is what makes
    finding a common period genuinely hard for greedy coordination.
    """
    if days < 1:
        raise ScheduleError(f"days must be >= 1, got {days}")
    rng = rng or random.Random(seed)
    horizon = days * slots_per_day
    sched = Schedule(horizon)

    night_end = max(1, min(slots_per_day - 2, int(slots_per_day * 8 / 24) + band_shift))
    work_end = max(night_end + 1, min(slots_per_day - 1, int(slots_per_day * 18 / 24) + band_shift))

    for day in range(days):
        base = day * slots_per_day

        # Night band: mostly asleep, occasionally free (shift workers).
        if rng.random() < night_free_prob:
            for idx in range(0, night_end):
                sched.set_available(base + idx + 1)

        # Work band: free by default, then carve contiguous meetings.  The
        # busier the person (lower work_free_prob), the more meetings.
        for idx in range(night_end, work_end):
            sched.set_available(base + idx + 1)
        busy_fraction = max(0.0, min(1.0, 1.0 - work_free_prob))
        work_slots = work_end - night_end
        meetings = busy_block_count + int(round(busy_fraction * work_slots / max(1, busy_block_length) / 2))
        for _ in range(meetings):
            start_idx = rng.randrange(night_end, work_end)
            length = max(1, int(rng.gauss(busy_block_length, 1.0)))
            for offset in range(length):
                idx = start_idx + offset
                if idx < work_end:
                    sched.set_busy(base + idx + 1)

        # Evening band: one long free block most days, otherwise a dinner or
        # family commitment blocks the first half of it.
        for idx in range(work_end, slots_per_day):
            sched.set_available(base + idx + 1)
        if rng.random() >= evening_free_prob:
            blocked = (slots_per_day - work_end) // 2
            for idx in range(work_end, work_end + blocked):
                sched.set_busy(base + idx + 1)
        # Late night wind-down: the final slots of the day are busy.
        for idx in range(slots_per_day - 2, slots_per_day):
            sched.set_busy(base + idx + 1)
    return sched


def generate_calendar_store(
    people: Iterable[Vertex],
    days: int = 1,
    slots_per_day: int = SLOTS_PER_DAY_DEFAULT,
    seed: Optional[int] = 17,
    busy_block_count: int = 4,
    busy_block_length: int = 3,
    chronotype_shifts: Sequence[int] = (0,),
) -> CalendarStore:
    """Generate a :class:`CalendarStore` of day-structured schedules.

    Per-person variation is introduced by jittering the band availabilities,
    so some people have packed calendars and others are mostly free — the
    spread observed in the paper's participant pool.
    """
    rng = random.Random(seed)
    horizon = days * slots_per_day
    store = CalendarStore(horizon)
    # Per-person chronotype: ``chronotype_shifts`` lists the band offsets the
    # generator samples from.  The default keeps everyone on standard hours
    # (matching the common-evening availability the benchmark workloads rely
    # on); pass e.g. ``(-4, 0, 0, 4)`` to mix in early birds and night owls
    # and make common-period finding harder.
    shift_choices = list(chronotype_shifts) or [0]
    max_shift = slots_per_day // 6
    for person in people:
        work_free = min(0.95, max(0.1, rng.gauss(0.45, 0.15)))
        evening_free = min(0.98, max(0.2, rng.gauss(0.75, 0.12)))
        shift = rng.choice(shift_choices)
        shift = max(-max_shift, min(max_shift, shift))
        sched = day_structured_schedule(
            days=days,
            slots_per_day=slots_per_day,
            busy_block_count=busy_block_count,
            busy_block_length=busy_block_length,
            evening_free_prob=evening_free,
            work_free_prob=work_free,
            band_shift=shift,
            rng=rng,
        )
        store.set(person, sched)
    return store


def resample_calendar_store(
    people: Iterable[Vertex],
    source: CalendarStore,
    days: int,
    slots_per_day: int = SLOTS_PER_DAY_DEFAULT,
    seed: Optional[int] = 23,
) -> CalendarStore:
    """Resample daily schedules from ``source`` for a (possibly larger) population.

    This mirrors the paper's construction of the 12 800-person dataset, where
    "the schedule of each person in each day is randomly assigned from the
    194-people real dataset": for every person and every day we pick a random
    (person, day) pair from the source store and copy that day's availability.
    """
    if len(source) == 0:
        raise ScheduleError("source calendar store is empty")
    source_people = source.people()
    source_days = source.horizon // slots_per_day
    if source_days < 1:
        raise ScheduleError(
            f"source horizon {source.horizon} is shorter than one day of {slots_per_day} slots"
        )
    rng = random.Random(seed)
    horizon = days * slots_per_day
    store = CalendarStore(horizon)
    for person in people:
        sched = Schedule(horizon)
        for day in range(days):
            donor = rng.choice(source_people)
            donor_day = rng.randrange(source_days)
            donor_sched = source.get(donor)
            src_base = donor_day * slots_per_day
            dst_base = day * slots_per_day
            for idx in range(1, slots_per_day + 1):
                if donor_sched.is_available(src_base + idx):
                    sched.set_available(dst_base + idx)
        store.set(person, sched)
    return store
