"""Calendar store: schedules for a whole population.

The query processing system of the paper assumes it "can look up the
available time of the user" (via web collaboration tools such as Google
Calendar).  :class:`CalendarStore` plays that role: it maps each person to a
:class:`~repro.temporal.schedule.Schedule` over a common horizon, and offers
the joint-availability queries STGSelect and the baselines need.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Callable, Collection, Dict, Iterable, Iterator, List, Mapping, Optional, Set, Union

from ..exceptions import ScheduleError
from ..types import Vertex
from .schedule import Schedule
from .slots import SlotRange

__all__ = ["CalendarStore", "LazyCalendarStore"]

PathLike = Union[str, Path]


class CalendarStore:
    """Mapping from person to availability schedule over a shared horizon."""

    __slots__ = ("_horizon", "_schedules")

    def __init__(self, horizon: int, schedules: Optional[Mapping[Vertex, Schedule]] = None) -> None:
        if horizon < 1:
            raise ScheduleError(f"horizon must be >= 1, got {horizon}")
        self._horizon = int(horizon)
        self._schedules: Dict[Vertex, Schedule] = {}
        if schedules:
            for person, sched in schedules.items():
                self.set(person, sched)

    # ------------------------------------------------------------------
    # population management
    # ------------------------------------------------------------------
    @property
    def horizon(self) -> int:
        """Planning horizon shared by every schedule in the store."""
        return self._horizon

    def set(self, person: Vertex, schedule: Schedule) -> None:
        """Register or replace ``person``'s schedule."""
        if schedule.horizon != self._horizon:
            raise ScheduleError(
                f"schedule horizon {schedule.horizon} does not match store horizon {self._horizon}"
            )
        self._schedules[person] = schedule

    def get(self, person: Vertex) -> Schedule:
        """Return ``person``'s schedule.

        People without a registered schedule are treated as never available —
        the conservative interpretation of a friend who does not share their
        calendar (see the paper's footnote 1 on privacy settings).
        """
        sched = self._schedules.get(person)
        if sched is None:
            return Schedule.never_available(self._horizon)
        return sched

    def __contains__(self, person: Vertex) -> bool:
        return person in self._schedules

    def __len__(self) -> int:
        return len(self._schedules)

    def __iter__(self) -> Iterator[Vertex]:
        return iter(self._schedules)

    def people(self) -> List[Vertex]:
        """Return everyone with a registered schedule."""
        return list(self._schedules)

    # ------------------------------------------------------------------
    # availability queries
    # ------------------------------------------------------------------
    def is_available(self, person: Vertex, slot: int) -> bool:
        """Is ``person`` free in ``slot``?"""
        return self.get(person).is_available(slot)

    def is_available_range(self, person: Vertex, period: SlotRange) -> bool:
        """Is ``person`` free for every slot of ``period``?"""
        return self.get(person).is_available_range(period)

    def joint_schedule(self, people: Iterable[Vertex]) -> Schedule:
        """Intersection of the schedules of ``people`` (everyone free)."""
        joint = Schedule.always_available(self._horizon)
        for person in people:
            joint = joint.intersect(self.get(person))
        return joint

    def common_windows(self, people: Iterable[Vertex], length: int) -> List[SlotRange]:
        """All periods of ``length`` consecutive slots where everyone is free."""
        return self.joint_schedule(people).free_windows(length)

    def available_people(self, period: SlotRange, candidates: Optional[Iterable[Vertex]] = None) -> Set[Vertex]:
        """People (optionally restricted to ``candidates``) free for all of ``period``."""
        pool = candidates if candidates is not None else self._schedules
        return {p for p in pool if self.is_available_range(p, period)}

    def availability_matrix(self, people: Iterable[Vertex]) -> Dict[Vertex, List[int]]:
        """Return ``{person: [available slot ids]}`` — handy for reporting."""
        return {p: self.get(p).available_slots() for p in people}

    # ------------------------------------------------------------------
    # persistence
    # ------------------------------------------------------------------
    def to_dict(self) -> Dict:
        """Serialise to a JSON-compatible dict."""
        return {
            "horizon": self._horizon,
            "schedules": {str(p): self._schedules[p].available_slots() for p in self._schedules},
        }

    @classmethod
    def from_dict(cls, data: Dict, vertex_type: type = str) -> "CalendarStore":
        """Reconstruct a store from :meth:`to_dict` output."""
        horizon = int(data["horizon"])
        store = cls(horizon)
        for person, slots in data.get("schedules", {}).items():
            store.set(vertex_type(person), Schedule(horizon, slots))
        return store

    def write_json(self, path: PathLike, indent: int = 2) -> None:
        """Write the store to a JSON file."""
        Path(path).write_text(json.dumps(self.to_dict(), indent=indent), encoding="utf-8")

    @classmethod
    def read_json(cls, path: PathLike, vertex_type: type = str) -> "CalendarStore":
        """Read a store written by :meth:`write_json`."""
        return cls.from_dict(json.loads(Path(path).read_text(encoding="utf-8")), vertex_type)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"CalendarStore(people={len(self._schedules)}, horizon={self._horizon})"


class LazyCalendarStore(CalendarStore):
    """Calendar store that materialises schedules on first access.

    The scale datasets cover 10⁵–10⁶ people; building (and pickling, when a
    process backend forks workers) a :class:`~repro.temporal.schedule.Schedule`
    per person up front costs far more than the handful of ego networks a
    query batch actually touches.  This store keeps only a ``factory`` — a
    picklable callable ``factory(person) -> Schedule`` that must be
    deterministic per person — plus the ``population`` it covers, and fills
    the ordinary schedule cache lazily.

    Pickling ships ``(horizon, population, factory)`` and drops the cache:
    each worker re-materialises exactly the schedules its own queries need.
    Explicit :meth:`~CalendarStore.set` calls still work and shadow the
    factory for that person.
    """

    __slots__ = ("_population", "_factory")

    def __init__(
        self,
        horizon: int,
        population: Collection[Vertex],
        factory: Callable[[Vertex], Schedule],
    ) -> None:
        super().__init__(horizon)
        self._population = population
        self._factory = factory

    def get(self, person: Vertex) -> Schedule:
        sched = self._schedules.get(person)
        if sched is None:
            if person not in self._population:
                return Schedule.never_available(self._horizon)
            sched = self._factory(person)
            if sched.horizon != self._horizon:
                raise ScheduleError(
                    f"factory produced horizon {sched.horizon}, store expects {self._horizon}"
                )
            self._schedules[person] = sched
        return sched

    def __contains__(self, person: Vertex) -> bool:
        return person in self._population or person in self._schedules

    def __len__(self) -> int:
        return len(self._population)

    def __iter__(self) -> Iterator[Vertex]:
        return iter(self._population)

    def people(self) -> List[Vertex]:
        return list(self._population)

    def available_people(self, period: SlotRange, candidates: Optional[Iterable[Vertex]] = None) -> Set[Vertex]:
        # Default pool is the whole (lazy) population — pass ``candidates``
        # at scale, or this materialises every schedule.
        pool = candidates if candidates is not None else self._population
        return {p for p in pool if self.is_available_range(p, period)}

    def to_dict(self) -> Dict:
        """Serialise, materialising the full population (expensive at scale)."""
        return {
            "horizon": self._horizon,
            "schedules": {str(p): self.get(p).available_slots() for p in self._population},
        }

    def __reduce__(self):
        return (type(self), (self._horizon, self._population, self._factory))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"LazyCalendarStore(people={len(self._population)}, "
            f"materialised={len(self._schedules)}, horizon={self._horizon})"
        )
