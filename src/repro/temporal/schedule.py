"""Per-person availability schedules.

A :class:`Schedule` records, for one person, which time slots they are
available in over a planning horizon of ``horizon`` slots (1-based IDs, as in
the paper).  Internally the availability is an integer bitmask, which makes
the operations the STGQ algorithms rely on cheap:

* intersecting the availability of a growing intermediate solution set
  (``&`` of bitmasks),
* finding the maximal run of consecutive available slots containing a pivot
  slot (temporal extensibility ``X(VS)``),
* testing whether a person is free for a whole activity period.
"""

from __future__ import annotations

from typing import Iterable, Iterator, List, Optional

from ..exceptions import ScheduleError
from .slots import SlotRange

__all__ = ["Schedule"]


class Schedule:
    """Availability of one person over ``horizon`` time slots.

    Parameters
    ----------
    horizon:
        Number of slots in the planning horizon; slot IDs run from 1 to
        ``horizon`` inclusive.
    available:
        Optional iterable of slot IDs the person is available in.

    Examples
    --------
    >>> s = Schedule(6, available=[2, 3, 4])
    >>> s.is_available(3)
    True
    >>> s.is_available_range(SlotRange(2, 4))
    True
    >>> s.is_available_range(SlotRange(4, 6))
    False
    """

    __slots__ = ("_horizon", "_bits")

    def __init__(self, horizon: int, available: Optional[Iterable[int]] = None) -> None:
        if horizon < 1:
            raise ScheduleError(f"horizon must be >= 1, got {horizon}")
        self._horizon = int(horizon)
        self._bits = 0
        if available is not None:
            for slot in available:
                self.set_available(slot)

    # ------------------------------------------------------------------
    # constructors
    # ------------------------------------------------------------------
    @classmethod
    def from_bitmask(cls, horizon: int, bits: int) -> "Schedule":
        """Build a schedule directly from an integer bitmask (bit ``i-1`` = slot ``i``)."""
        sched = cls(horizon)
        mask = (1 << horizon) - 1
        sched._bits = bits & mask
        return sched

    @classmethod
    def always_available(cls, horizon: int) -> "Schedule":
        """A schedule that is free in every slot."""
        return cls.from_bitmask(horizon, (1 << horizon) - 1)

    @classmethod
    def never_available(cls, horizon: int) -> "Schedule":
        """A schedule with no free slots."""
        return cls(horizon)

    @classmethod
    def from_string(cls, pattern: str) -> "Schedule":
        """Build a schedule from a string of ``1``/``0`` (or ``O``/``.``) characters.

        The first character is slot 1.  This mirrors the schedule tables in
        the paper's Figures 2(c) and 3(c) where available slots are circles.
        """
        cleaned = pattern.strip()
        if not cleaned:
            raise ScheduleError("empty schedule pattern")
        available = []
        for i, ch in enumerate(cleaned, start=1):
            if ch in "1Oo*x":
                available.append(i)
            elif ch in "0._- ":
                continue
            else:
                raise ScheduleError(f"unrecognised schedule character {ch!r} at position {i}")
        return cls(len(cleaned), available)

    # ------------------------------------------------------------------
    # basic accessors
    # ------------------------------------------------------------------
    @property
    def horizon(self) -> int:
        """Number of slots in the planning horizon."""
        return self._horizon

    @property
    def bitmask(self) -> int:
        """Raw availability bitmask (bit ``i-1`` set when slot ``i`` is free)."""
        return self._bits

    def _check_slot(self, slot: int) -> None:
        if not 1 <= slot <= self._horizon:
            raise ScheduleError(f"slot {slot} outside horizon 1..{self._horizon}")

    def set_available(self, slot: int) -> None:
        """Mark ``slot`` as available."""
        self._check_slot(slot)
        self._bits |= 1 << (slot - 1)

    def set_busy(self, slot: int) -> None:
        """Mark ``slot`` as busy."""
        self._check_slot(slot)
        self._bits &= ~(1 << (slot - 1))

    def is_available(self, slot: int) -> bool:
        """Return ``True`` when the person is free in ``slot``."""
        self._check_slot(slot)
        return bool(self._bits >> (slot - 1) & 1)

    def is_available_range(self, period: SlotRange) -> bool:
        """Return ``True`` when the person is free in every slot of ``period``."""
        if period.end > self._horizon:
            return False
        mask = ((1 << len(period)) - 1) << (period.start - 1)
        return self._bits & mask == mask

    def available_slots(self) -> List[int]:
        """Return the sorted list of available slot IDs."""
        return [i + 1 for i in range(self._horizon) if self._bits >> i & 1]

    def available_count(self) -> int:
        """Number of available slots."""
        return bin(self._bits).count("1")

    def availability_ratio(self) -> float:
        """Fraction of the horizon that is available."""
        return self.available_count() / self._horizon

    def busy_slots(self) -> List[int]:
        """Return the sorted list of busy slot IDs."""
        return [i + 1 for i in range(self._horizon) if not self._bits >> i & 1]

    # ------------------------------------------------------------------
    # interval queries used by STGSelect
    # ------------------------------------------------------------------
    def available_runs(self) -> List[SlotRange]:
        """Return the maximal runs of consecutive available slots."""
        runs: List[SlotRange] = []
        start = None
        for slot in range(1, self._horizon + 2):
            free = slot <= self._horizon and self.is_available(slot)
            if free and start is None:
                start = slot
            elif not free and start is not None:
                runs.append(SlotRange(start, slot - 1))
                start = None
        return runs

    def run_containing(self, slot: int) -> Optional[SlotRange]:
        """Return the maximal run of available slots containing ``slot``, if any."""
        self._check_slot(slot)
        if not self.is_available(slot):
            return None
        lo = slot
        while lo > 1 and self.is_available(lo - 1):
            lo -= 1
        hi = slot
        while hi < self._horizon and self.is_available(hi + 1):
            hi += 1
        return SlotRange(lo, hi)

    def free_run_around(self, slot: int, within: SlotRange) -> Optional[SlotRange]:
        """Maximal free run containing ``slot``, clipped to ``within``.

        Equivalent to ``self.restricted(within).run_containing(slot)`` but
        allocation-free: the run boundaries come from two bit operations on
        the availability mask (highest busy bit below the slot, lowest busy
        bit above) instead of a per-slot walk over a copied schedule.  This
        sits on STGSelect's per-candidate hot path (Definition 4 filtering
        and every joint-run update), so the constant factor matters.

        ``slot`` must lie inside ``within``; a slot beyond the horizon (or
        busy) yields ``None``, mirroring the restricted-walk behaviour.
        """
        bits = self._bits
        if not bits >> (slot - 1) & 1:
            return None
        lo_bound = within.start
        hi_bound = min(within.end, self._horizon)
        busy = ~bits
        below = busy & ((1 << (slot - 1)) - 1) & ~((1 << (lo_bound - 1)) - 1)
        lo = lo_bound if not below else below.bit_length() + 1
        above = busy & ((1 << hi_bound) - 1) & ~((1 << slot) - 1)
        hi = hi_bound if not above else (above & -above).bit_length() - 1
        return SlotRange(lo, hi)

    def has_window(self, length: int, within: Optional[SlotRange] = None) -> bool:
        """Return ``True`` when some run of ``length`` consecutive free slots
        exists (optionally restricted to the ``within`` range)."""
        if length < 1:
            raise ScheduleError(f"window length must be >= 1, got {length}")
        candidates = self.available_runs()
        for run in candidates:
            effective = run if within is None else run.intersect(within)
            if effective is not None and len(effective) >= length:
                return True
        return False

    def free_windows(self, length: int, within: Optional[SlotRange] = None) -> List[SlotRange]:
        """Enumerate all activity periods of exactly ``length`` free slots."""
        windows: List[SlotRange] = []
        for run in self.available_runs():
            effective = run if within is None else run.intersect(within)
            if effective is None:
                continue
            windows.extend(effective.windows(length))
        return windows

    # ------------------------------------------------------------------
    # combination
    # ------------------------------------------------------------------
    def intersect(self, other: "Schedule") -> "Schedule":
        """Return the joint availability of two people (same horizon required)."""
        if other.horizon != self._horizon:
            raise ScheduleError(
                f"cannot intersect schedules with horizons {self._horizon} and {other.horizon}"
            )
        return Schedule.from_bitmask(self._horizon, self._bits & other._bits)

    def union(self, other: "Schedule") -> "Schedule":
        """Return the slots where at least one of the two people is free."""
        if other.horizon != self._horizon:
            raise ScheduleError(
                f"cannot union schedules with horizons {self._horizon} and {other.horizon}"
            )
        return Schedule.from_bitmask(self._horizon, self._bits | other._bits)

    def restricted(self, window: SlotRange) -> "Schedule":
        """Return a copy with availability cleared outside ``window``."""
        mask = ((1 << len(window)) - 1) << (window.start - 1)
        return Schedule.from_bitmask(self._horizon, self._bits & mask)

    def copy(self) -> "Schedule":
        """Return a copy of this schedule."""
        return Schedule.from_bitmask(self._horizon, self._bits)

    # ------------------------------------------------------------------
    # dunder helpers
    # ------------------------------------------------------------------
    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Schedule):
            return NotImplemented
        return self._horizon == other._horizon and self._bits == other._bits

    def __hash__(self) -> int:
        return hash((self._horizon, self._bits))

    def __iter__(self) -> Iterator[int]:
        return iter(self.available_slots())

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        pattern = "".join("O" if self.is_available(i) else "." for i in range(1, self._horizon + 1))
        return f"Schedule({pattern})"
