"""Time-slot arithmetic.

The paper discretises time into fixed-length slots (its experiments use
half-hour slots over schedules of one to seven days).  Slots are identified
by 1-based integer IDs in the paper's prose — the pivot-slot lemma ("a time
slot is a pivot time slot if the ID of the slot is ``i*m``") relies on that —
so the library keeps the same 1-based convention throughout its public API.

:class:`SlotRange` represents a contiguous, inclusive interval of slots and
is used for activity periods (``m`` consecutive slots) and for the candidate
windows around pivot slots.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Optional, Tuple

from ..exceptions import ScheduleError

__all__ = ["SlotRange", "slots_per_day", "day_of_slot", "slot_label"]

#: Number of half-hour slots in one day; used by the day-structured
#: schedule generators and the schedule-length experiment (Fig 1(f)).
SLOTS_PER_DAY_DEFAULT = 48


@dataclass(frozen=True, order=True)
class SlotRange:
    """An inclusive range ``[start, end]`` of 1-based slot IDs."""

    start: int
    end: int

    def __post_init__(self) -> None:
        if self.start < 1:
            raise ScheduleError(f"slot IDs are 1-based; got start={self.start}")
        if self.end < self.start:
            raise ScheduleError(f"empty slot range [{self.start}, {self.end}]")

    def __len__(self) -> int:
        return self.end - self.start + 1

    def __iter__(self) -> Iterator[int]:
        return iter(range(self.start, self.end + 1))

    def __contains__(self, slot: object) -> bool:
        return isinstance(slot, int) and self.start <= slot <= self.end

    def contains_range(self, other: "SlotRange") -> bool:
        """Return ``True`` when ``other`` lies entirely inside this range."""
        return self.start <= other.start and other.end <= self.end

    def intersect(self, other: "SlotRange") -> Optional["SlotRange"]:
        """Return the overlap with ``other``, or ``None`` when disjoint."""
        lo = max(self.start, other.start)
        hi = min(self.end, other.end)
        if lo > hi:
            return None
        return SlotRange(lo, hi)

    def shift(self, offset: int) -> "SlotRange":
        """Return the range translated by ``offset`` slots."""
        return SlotRange(self.start + offset, self.end + offset)

    def windows(self, length: int) -> List["SlotRange"]:
        """Enumerate all sub-ranges of exactly ``length`` slots."""
        if length < 1:
            raise ScheduleError(f"window length must be >= 1, got {length}")
        if length > len(self):
            return []
        return [SlotRange(t, t + length - 1) for t in range(self.start, self.end - length + 2)]

    def as_tuple(self) -> Tuple[int, int]:
        """Return ``(start, end)``."""
        return (self.start, self.end)


def slots_per_day(slot_minutes: int = 30) -> int:
    """Number of slots per day for a given slot granularity in minutes."""
    if slot_minutes <= 0 or 24 * 60 % slot_minutes != 0:
        raise ScheduleError(f"slot_minutes must divide a day evenly, got {slot_minutes}")
    return 24 * 60 // slot_minutes


def day_of_slot(slot: int, per_day: int = SLOTS_PER_DAY_DEFAULT) -> int:
    """Return the 1-based day index containing 1-based slot ``slot``."""
    if slot < 1:
        raise ScheduleError(f"slot IDs are 1-based; got {slot}")
    return (slot - 1) // per_day + 1


def slot_label(slot: int, per_day: int = SLOTS_PER_DAY_DEFAULT, slot_minutes: int = 30) -> str:
    """Human-readable label for a slot, e.g. ``'day 2 09:30-10:00'``."""
    day = day_of_slot(slot, per_day)
    index_in_day = (slot - 1) % per_day
    start_min = index_in_day * slot_minutes
    end_min = start_min + slot_minutes
    return (
        f"day {day} "
        f"{start_min // 60:02d}:{start_min % 60:02d}-"
        f"{end_min // 60:02d}:{end_min % 60:02d}"
    )
