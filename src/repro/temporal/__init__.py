"""Temporal substrate: time slots, per-person schedules, calendar store,
pivot-slot decomposition, and schedule generators."""

from .calendars import CalendarStore, LazyCalendarStore
from .generators import (
    day_structured_schedule,
    generate_calendar_store,
    random_schedule,
    resample_calendar_store,
)
from .pivot import (
    PivotWindow,
    candidate_periods,
    feasible_members_for_pivot,
    pivot_slots,
    pivot_window,
    pivot_windows,
)
from .schedule import Schedule
from .slots import SLOTS_PER_DAY_DEFAULT, SlotRange, day_of_slot, slot_label, slots_per_day

__all__ = [
    "Schedule",
    "CalendarStore",
    "LazyCalendarStore",
    "SlotRange",
    "SLOTS_PER_DAY_DEFAULT",
    "slots_per_day",
    "day_of_slot",
    "slot_label",
    "PivotWindow",
    "pivot_slots",
    "pivot_window",
    "pivot_windows",
    "candidate_periods",
    "feasible_members_for_pivot",
    "random_schedule",
    "day_structured_schedule",
    "generate_calendar_store",
    "resample_calendar_store",
]
