"""Text and CSV reporting for experiment results.

The paper presents its evaluation as log-scale line plots; in a library the
equivalent artefact is a table per figure with one row per sweep value and
one column per algorithm.  These helpers render a
:class:`~repro.experiments.runner.FigureSeries` as an aligned text table
(used by the CLI and by EXPERIMENTS.md) or as CSV rows (for downstream
plotting).
"""

from __future__ import annotations

import csv
import io
import math
from typing import Dict, List, Optional, Sequence

from .runner import FigureSeries

__all__ = ["format_table", "format_quality_table", "to_csv", "speedup_summary"]


def _format_seconds(value: Optional[float]) -> str:
    if value is None:
        return "-"
    if value < 1e-3:
        return f"{value * 1e6:.1f}us"
    if value < 1.0:
        return f"{value * 1e3:.2f}ms"
    return f"{value:.3f}s"


def format_table(series: FigureSeries) -> str:
    """Render a performance panel as an aligned text table."""
    algorithms = series.algorithms()
    header = [series.sweep_name] + algorithms
    rows: List[List[str]] = []
    for point in series.points:
        row = [str(point.sweep_value)]
        for name in algorithms:
            measurement = point.measurements.get(name)
            row.append(_format_seconds(measurement.seconds_mean if measurement else None))
        rows.append(row)
    return _align([header] + rows, title=f"Figure {series.figure}: {series.description}")


def format_quality_table(series: FigureSeries) -> str:
    """Render a quality panel (Figures 1(g)/(h)) as an aligned text table."""
    header = [
        series.sweep_name,
        "PCArrange k",
        "STGArrange k",
        "PCArrange distance",
        "STGArrange distance",
    ]
    rows: List[List[str]] = []
    for point in series.points:
        extra = point.extra
        pc_dist = extra.get("pcarrange_distance", math.nan)
        st_dist = extra.get("stgarrange_distance", math.nan)
        rows.append(
            [
                str(point.sweep_value),
                str(extra.get("pcarrange_k", "-")) if extra.get("pcarrange_feasible") else "infeasible",
                str(extra.get("stgarrange_k", "-")),
                f"{pc_dist:.1f}" if isinstance(pc_dist, (int, float)) and math.isfinite(pc_dist) else "-",
                f"{st_dist:.1f}" if isinstance(st_dist, (int, float)) and math.isfinite(st_dist) else "-",
            ]
        )
    return _align([header] + rows, title=f"Figure {series.figure}: {series.description}")


def to_csv(series: FigureSeries) -> str:
    """Render a panel as CSV (sweep value, algorithm, mean seconds, extras)."""
    buffer = io.StringIO()
    writer = csv.writer(buffer)
    writer.writerow(["figure", "sweep_name", "sweep_value", "algorithm", "seconds_mean", "repetitions"])
    for point in series.points:
        for name, measurement in point.measurements.items():
            writer.writerow(
                [
                    series.figure,
                    series.sweep_name,
                    point.sweep_value,
                    name,
                    f"{measurement.seconds_mean:.9f}",
                    measurement.repetitions,
                ]
            )
    return buffer.getvalue()


def speedup_summary(series: FigureSeries, fast: str, slow: str) -> Dict[object, float]:
    """Speed-up of ``fast`` over ``slow`` per sweep value (slow / fast)."""
    summary: Dict[object, float] = {}
    for point in series.points:
        fast_m = point.measurements.get(fast)
        slow_m = point.measurements.get(slow)
        if fast_m is None or slow_m is None or fast_m.seconds_mean == 0:
            continue
        summary[point.sweep_value] = slow_m.seconds_mean / fast_m.seconds_mean
    return summary


def _align(rows: Sequence[Sequence[str]], title: str = "") -> str:
    widths = [max(len(row[i]) for row in rows) for i in range(len(rows[0]))]
    lines = []
    if title:
        lines.append(title)
    for idx, row in enumerate(rows):
        lines.append("  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))
        if idx == 0:
            lines.append("  ".join("-" * widths[i] for i in range(len(row))))
    return "\n".join(lines)
