"""Measurement helpers shared by the figure runners.

The paper reports average running time per query; these helpers time a
callable with ``time.perf_counter`` over a configurable number of
repetitions and collect the result object alongside, so the figure runners
can report both performance and solution quality from one run.
"""

from __future__ import annotations

import statistics
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

__all__ = ["Measurement", "SeriesPoint", "FigureSeries", "measure"]


@dataclass
class Measurement:
    """Wall-clock measurement of one solver invocation."""

    seconds_mean: float
    seconds_min: float
    seconds_max: float
    repetitions: int
    result: object = None

    @property
    def milliseconds(self) -> float:
        """Mean running time in milliseconds."""
        return self.seconds_mean * 1e3

    @property
    def nanoseconds(self) -> float:
        """Mean running time in nanoseconds (the unit of the paper's SGQ plots)."""
        return self.seconds_mean * 1e9


@dataclass
class SeriesPoint:
    """One sweep value with the measurements of every algorithm run on it."""

    sweep_value: object
    measurements: Dict[str, Measurement] = field(default_factory=dict)
    extra: Dict[str, object] = field(default_factory=dict)


@dataclass
class FigureSeries:
    """All measurements of one figure panel."""

    figure: str
    description: str
    sweep_name: str
    points: List[SeriesPoint] = field(default_factory=list)
    workload_info: Dict[str, object] = field(default_factory=dict)

    def algorithms(self) -> List[str]:
        """Names of all algorithms that appear in at least one point."""
        names: List[str] = []
        for point in self.points:
            for name in point.measurements:
                if name not in names:
                    names.append(name)
        return names

    def series(self, algorithm: str) -> List[Optional[float]]:
        """Mean seconds of ``algorithm`` across the sweep (None where missing)."""
        result = []
        for point in self.points:
            m = point.measurements.get(algorithm)
            result.append(m.seconds_mean if m else None)
        return result


def measure(fn: Callable[[], object], repetitions: int = 1) -> Measurement:
    """Time ``fn`` over ``repetitions`` runs and keep the last result."""
    if repetitions < 1:
        raise ValueError(f"repetitions must be >= 1, got {repetitions}")
    durations: List[float] = []
    result: object = None
    for _ in range(repetitions):
        start = time.perf_counter()
        result = fn()
        durations.append(time.perf_counter() - start)
    return Measurement(
        seconds_mean=statistics.fmean(durations),
        seconds_min=min(durations),
        seconds_max=max(durations),
        repetitions=repetitions,
        result=result,
    )
