"""Runners that regenerate every panel of the paper's Figure 1.

Each ``run_figure_1x`` function builds the workload described in
:mod:`repro.experiments.config`, runs the algorithms the paper compares in
that panel, and returns a :class:`~repro.experiments.runner.FigureSeries`
with the measured series.  The pytest-benchmark files under ``benchmarks/``
are thin wrappers over these runners, and ``python -m repro figure 1e``
prints them from the command line.

The absolute running times are not comparable with the paper's (different
hardware, C vs. pure Python); the claims reproduced are the *shapes*:

* (a)–(f): SGSelect / STGSelect beat the corresponding baseline by a widening
  margin as ``p``, ``s``, the network size, ``m`` or the schedule length
  grow; the general-purpose IP solver is far slower than SGSelect.
* (g)–(h): STGArrange finds groups with smaller observed ``k`` and no larger
  total social distance than the manual-coordination model PCArrange.
"""

from __future__ import annotations

from typing import Callable, Dict

from ..core.baseline import BaselineSGQ, BaselineSTGQ
from ..core.ip.solver import IPSolver

try:  # scipy (and its numpy) is optional; without it the IP column is omitted.
    import scipy  # noqa: F401

    _HAVE_MILP_BACKEND = True
except ImportError:  # pragma: no cover - exercised by the no-numpy CI leg
    _HAVE_MILP_BACKEND = False
from ..core.query import SGQuery, STGQuery
from ..core.sgselect import SGSelect
from ..core.stgarrange import STGArrange
from ..core.stgselect import STGSelect
from ..datasets.base import Dataset
from ..types import Vertex
from .config import ExperimentScale, FigureConfig, figure_config
from .runner import FigureSeries, SeriesPoint, measure
from .workloads import ego_size, pick_initiator, workload

__all__ = [
    "run_figure",
    "run_figure_1a",
    "run_figure_1b",
    "run_figure_1c",
    "run_figure_1d",
    "run_figure_1e",
    "run_figure_1f",
    "run_figure_1g",
    "run_figure_1h",
]

#: Candidate-pool bounds used when a brute-force baseline participates; keeps
#: the enumeration count in the shape-preserving range for pure Python.
_BASELINE_EGO_BOUNDS = (10, 26)


def _series(config: FigureConfig, dataset: Dataset, initiator: Vertex) -> FigureSeries:
    return FigureSeries(
        figure=config.figure,
        description=config.description,
        sweep_name=config.sweep_name,
        workload_info={
            "dataset": dataset.name,
            "people": dataset.graph.vertex_count,
            "friendships": dataset.graph.edge_count,
            "initiator": initiator,
            "horizon_slots": dataset.calendars.horizon,
            "notes": config.notes,
        },
    )


def _sg_algorithms(
    config: FigureConfig, dataset: Dataset, initiator: Vertex, query: SGQuery
) -> Dict[str, Callable[[], object]]:
    """The solver callables the SGQ panels compare."""
    algorithms: Dict[str, Callable[[], object]] = {
        "SGSelect": lambda: SGSelect(dataset.graph).solve(query)
    }
    if config.include_baseline:
        algorithms["Baseline"] = lambda: BaselineSGQ(dataset.graph).solve(
            query, max_groups=config.baseline_cap
        )
    if config.include_ip and _HAVE_MILP_BACKEND:
        # Without scipy the IP comparison column is omitted up front; a
        # SolverError from an *installed* backend still fails the run
        # loudly (non-convergence must never be recorded as a skip).
        algorithms["IP"] = lambda: IPSolver().solve_sgq(dataset.graph, query)
    return algorithms


def _stg_algorithms(
    config: FigureConfig, dataset: Dataset, query: STGQuery
) -> Dict[str, Callable[[], object]]:
    """The solver callables the STGQ panels compare."""
    algorithms: Dict[str, Callable[[], object]] = {
        "STGSelect": lambda: STGSelect(dataset.graph, dataset.calendars).solve(query)
    }
    if config.include_baseline:
        algorithms["Baseline"] = lambda: BaselineSTGQ(dataset.graph, dataset.calendars).solve(query)
    return algorithms


def _run_point(point: SeriesPoint, algorithms: Dict[str, Callable[[], object]], repetitions: int) -> None:
    for name, fn in algorithms.items():
        try:
            point.measurements[name] = measure(fn, repetitions=repetitions)
        except ValueError as exc:
            # The baseline cap refused an astronomically large enumeration;
            # record the omission instead of hanging the run.
            point.extra[f"{name}_skipped"] = str(exc)


# ----------------------------------------------------------------------
# performance panels
# ----------------------------------------------------------------------
def run_figure_1a(
    scale: ExperimentScale = ExperimentScale.PAPER_SHAPE, repetitions: int = 1
) -> FigureSeries:
    """Figure 1(a): SGQ running time vs. group size ``p``."""
    config = figure_config("1a", scale)
    dataset = workload(config.network_size, config.schedule_days, config.seed)
    initiator = pick_initiator(dataset, config.radius, *_BASELINE_EGO_BOUNDS)
    series = _series(config, dataset, initiator)
    series.workload_info["ego_candidates"] = ego_size(dataset, initiator, config.radius)
    for p in config.sweep_values:
        query = SGQuery(
            initiator=initiator, group_size=int(p), radius=config.radius, acquaintance=config.acquaintance
        )
        point = SeriesPoint(sweep_value=p)
        _run_point(point, _sg_algorithms(config, dataset, initiator, query), repetitions)
        series.points.append(point)
    return series


def run_figure_1b(
    scale: ExperimentScale = ExperimentScale.PAPER_SHAPE, repetitions: int = 1
) -> FigureSeries:
    """Figure 1(b): SGQ running time vs. social radius ``s``."""
    config = figure_config("1b", scale)
    dataset = workload(config.network_size, config.schedule_days, config.seed)
    initiator = pick_initiator(dataset, 1, *_BASELINE_EGO_BOUNDS)
    series = _series(config, dataset, initiator)
    for s in config.sweep_values:
        query = SGQuery(
            initiator=initiator,
            group_size=config.group_size,
            radius=int(s),
            acquaintance=config.acquaintance,
        )
        point = SeriesPoint(sweep_value=s)
        point.extra["ego_candidates"] = ego_size(dataset, initiator, int(s))
        _run_point(point, _sg_algorithms(config, dataset, initiator, query), repetitions)
        series.points.append(point)
    return series


def run_figure_1c(
    scale: ExperimentScale = ExperimentScale.PAPER_SHAPE, repetitions: int = 1
) -> FigureSeries:
    """Figure 1(c): SGQ running time vs. acquaintance constraint ``k``."""
    config = figure_config("1c", scale)
    dataset = workload(config.network_size, config.schedule_days, config.seed)
    initiator = pick_initiator(dataset, config.radius, *_BASELINE_EGO_BOUNDS)
    series = _series(config, dataset, initiator)
    series.workload_info["ego_candidates"] = ego_size(dataset, initiator, config.radius)
    for k in config.sweep_values:
        query = SGQuery(
            initiator=initiator,
            group_size=config.group_size,
            radius=config.radius,
            acquaintance=int(k),
        )
        point = SeriesPoint(sweep_value=k)
        _run_point(point, _sg_algorithms(config, dataset, initiator, query), repetitions)
        series.points.append(point)
    return series


def run_figure_1d(
    scale: ExperimentScale = ExperimentScale.PAPER_SHAPE, repetitions: int = 1
) -> FigureSeries:
    """Figure 1(d): SGQ running time vs. network size."""
    config = figure_config("1d", scale)
    base_dataset = workload(config.sweep_values[0], config.schedule_days, config.seed)
    initiator_hint = pick_initiator(base_dataset, config.radius, *_BASELINE_EGO_BOUNDS)
    series = _series(config, base_dataset, initiator_hint)
    for size in config.sweep_values:
        dataset = workload(int(size), config.schedule_days, config.seed)
        initiator = pick_initiator(dataset, config.radius, *_BASELINE_EGO_BOUNDS)
        query = SGQuery(
            initiator=initiator,
            group_size=config.group_size,
            radius=config.radius,
            acquaintance=config.acquaintance,
        )
        point = SeriesPoint(sweep_value=size)
        point.extra["ego_candidates"] = ego_size(dataset, initiator, config.radius)
        _run_point(point, _sg_algorithms(config, dataset, initiator, query), repetitions)
        series.points.append(point)
    return series


def run_figure_1e(
    scale: ExperimentScale = ExperimentScale.PAPER_SHAPE, repetitions: int = 1
) -> FigureSeries:
    """Figure 1(e): STGQ running time vs. activity length ``m``."""
    config = figure_config("1e", scale)
    dataset = workload(config.network_size, config.schedule_days, config.seed)
    initiator = pick_initiator(dataset, config.radius, *_BASELINE_EGO_BOUNDS)
    series = _series(config, dataset, initiator)
    for m in config.sweep_values:
        query = STGQuery(
            initiator=initiator,
            group_size=config.group_size,
            radius=config.radius,
            acquaintance=config.acquaintance,
            activity_length=int(m),
        )
        point = SeriesPoint(sweep_value=m)
        _run_point(point, _stg_algorithms(config, dataset, query), repetitions)
        series.points.append(point)
    return series


def run_figure_1f(
    scale: ExperimentScale = ExperimentScale.PAPER_SHAPE, repetitions: int = 1
) -> FigureSeries:
    """Figure 1(f): STGQ running time vs. schedule length in days."""
    config = figure_config("1f", scale)
    base_dataset = workload(config.network_size, 1, config.seed)
    initiator_hint = pick_initiator(base_dataset, config.radius, *_BASELINE_EGO_BOUNDS)
    series = _series(config, base_dataset, initiator_hint)
    for days in config.sweep_values:
        dataset = workload(config.network_size, int(days), config.seed)
        initiator = pick_initiator(dataset, config.radius, *_BASELINE_EGO_BOUNDS)
        query = STGQuery(
            initiator=initiator,
            group_size=config.group_size,
            radius=config.radius,
            acquaintance=config.acquaintance,
            activity_length=config.activity_length or 4,
        )
        point = SeriesPoint(sweep_value=days)
        point.extra["horizon_slots"] = dataset.calendars.horizon
        _run_point(point, _stg_algorithms(config, dataset, query), repetitions)
        series.points.append(point)
    return series


# ----------------------------------------------------------------------
# quality panels
# ----------------------------------------------------------------------
def _run_quality_panel(figure: str, scale: ExperimentScale, repetitions: int) -> FigureSeries:
    """Shared runner for Figures 1(g) and 1(h): STGArrange vs PCArrange."""
    config = figure_config(figure, scale)
    dataset = workload(config.network_size, config.schedule_days, config.seed)
    initiator = pick_initiator(dataset, config.radius, min_candidates=12, max_candidates=40)
    series = _series(config, dataset, initiator)
    arranger = STGArrange(dataset.graph, dataset.calendars)
    for p in config.sweep_values:
        point = SeriesPoint(sweep_value=p)
        measurement = measure(
            lambda p=p: arranger.compare(
                initiator=initiator,
                group_size=int(p),
                radius=config.radius,
                activity_length=config.activity_length or 4,
            ),
            repetitions=repetitions,
        )
        outcome = measurement.result
        point.measurements["STGArrange"] = measurement
        point.extra.update(
            {
                "pcarrange_feasible": outcome.pcarrange.feasible,
                "pcarrange_k": outcome.pcarrange_k,
                "pcarrange_distance": outcome.pcarrange.total_distance,
                "stgarrange_feasible": outcome.stgarrange.feasible,
                "stgarrange_k": outcome.stgarrange_k,
                "stgarrange_distance": outcome.stgarrange.total_distance,
            }
        )
        series.points.append(point)
    return series


def run_figure_1g(
    scale: ExperimentScale = ExperimentScale.PAPER_SHAPE, repetitions: int = 1
) -> FigureSeries:
    """Figure 1(g): observed ``k`` vs ``p`` for STGArrange and PCArrange."""
    return _run_quality_panel("1g", scale, repetitions)


def run_figure_1h(
    scale: ExperimentScale = ExperimentScale.PAPER_SHAPE, repetitions: int = 1
) -> FigureSeries:
    """Figure 1(h): total social distance vs ``p`` for STGArrange and PCArrange."""
    return _run_quality_panel("1h", scale, repetitions)


_RUNNERS: Dict[str, Callable[..., FigureSeries]] = {
    "1a": run_figure_1a,
    "1b": run_figure_1b,
    "1c": run_figure_1c,
    "1d": run_figure_1d,
    "1e": run_figure_1e,
    "1f": run_figure_1f,
    "1g": run_figure_1g,
    "1h": run_figure_1h,
}


def run_figure(
    figure: str,
    scale: ExperimentScale = ExperimentScale.PAPER_SHAPE,
    repetitions: int = 1,
) -> FigureSeries:
    """Run one panel of Figure 1 by identifier (``"1a"`` .. ``"1h"``)."""
    key = figure.lower().replace("figure", "").replace("fig", "").strip(". ")
    if key not in _RUNNERS:
        raise KeyError(f"unknown figure {figure!r}; expected one of {sorted(_RUNNERS)}")
    return _RUNNERS[key](scale=scale, repetitions=repetitions)
