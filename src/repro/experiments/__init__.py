"""Experiment harness: per-figure runners, workload construction, ablation
studies, and reporting."""

from .ablation import (
    AblationReport,
    AblationRow,
    format_ablation,
    run_sg_ablation,
    run_stg_ablation,
)
from .config import FIGURE_IDS, ExperimentScale, FigureConfig, figure_config
from .figures import (
    run_figure,
    run_figure_1a,
    run_figure_1b,
    run_figure_1c,
    run_figure_1d,
    run_figure_1e,
    run_figure_1f,
    run_figure_1g,
    run_figure_1h,
)
from .reporting import format_quality_table, format_table, speedup_summary, to_csv
from .runner import FigureSeries, Measurement, SeriesPoint, measure
from .workloads import (
    ego_size,
    generate_query_workload,
    load_workload,
    pick_initiator,
    save_workload,
    workload,
)

__all__ = [
    "ExperimentScale",
    "FigureConfig",
    "figure_config",
    "FIGURE_IDS",
    "run_figure",
    "run_figure_1a",
    "run_figure_1b",
    "run_figure_1c",
    "run_figure_1d",
    "run_figure_1e",
    "run_figure_1f",
    "run_figure_1g",
    "run_figure_1h",
    "FigureSeries",
    "SeriesPoint",
    "Measurement",
    "measure",
    "format_table",
    "format_quality_table",
    "to_csv",
    "speedup_summary",
    "workload",
    "pick_initiator",
    "ego_size",
    "generate_query_workload",
    "save_workload",
    "load_workload",
    "AblationReport",
    "AblationRow",
    "run_sg_ablation",
    "run_stg_ablation",
    "format_ablation",
]
