"""Ablation study of the search strategies.

DESIGN.md calls out the individual strategies (access ordering, distance
pruning, acquaintance pruning, availability pruning, pivot time slots) as
the source of SGSelect/STGSelect's advantage; this module measures each
strategy's contribution by re-running the same queries with one strategy
disabled at a time.  Disabling a strategy never changes the returned optimum
(asserted by the integration tests) — only the work performed.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from ..core.query import STGQuery, SGQuery, SearchParameters
from ..core.sgselect import SGSelect
from ..core.stgselect import STGSelect
from ..datasets.base import Dataset
from ..types import Vertex
from .runner import measure

__all__ = ["AblationRow", "AblationReport", "run_sg_ablation", "run_stg_ablation", "format_ablation"]

#: The strategy toggles exercised by the SGQ ablation.
SG_STRATEGIES = {
    "full": {},
    "no-access-ordering": {"use_access_ordering": False},
    "no-distance-pruning": {"use_distance_pruning": False},
    "no-acquaintance-pruning": {"use_acquaintance_pruning": False},
}

#: Additional toggles exercised by the STGQ ablation.
STG_STRATEGIES = {
    **SG_STRATEGIES,
    "no-availability-pruning": {"use_availability_pruning": False},
    "no-pivot-slots": {"use_pivot_slots": False},
}


@dataclass
class AblationRow:
    """Result of one strategy variant."""

    variant: str
    seconds: float
    nodes_expanded: int
    candidates_considered: int
    total_distance: float
    feasible: bool


@dataclass
class AblationReport:
    """All variants for one query."""

    query: str
    rows: List[AblationRow] = field(default_factory=list)

    def slowdown(self, variant: str) -> Optional[float]:
        """Running-time ratio of ``variant`` over the full configuration."""
        full = next((r for r in self.rows if r.variant == "full"), None)
        other = next((r for r in self.rows if r.variant == variant), None)
        if full is None or other is None or full.seconds == 0:
            return None
        return other.seconds / full.seconds


def run_sg_ablation(
    dataset: Dataset,
    initiator: Vertex,
    group_size: int,
    radius: int,
    acquaintance: int,
    repetitions: int = 1,
) -> AblationReport:
    """Ablate the SGQ strategies on one query."""
    query = SGQuery(
        initiator=initiator, group_size=group_size, radius=radius, acquaintance=acquaintance
    )
    report = AblationReport(query=query.describe())
    for variant, overrides in SG_STRATEGIES.items():
        parameters = SearchParameters(**overrides)
        measurement = measure(
            lambda parameters=parameters: SGSelect(dataset.graph, parameters).solve(query),
            repetitions=repetitions,
        )
        result = measurement.result
        report.rows.append(
            AblationRow(
                variant=variant,
                seconds=measurement.seconds_mean,
                nodes_expanded=result.stats.nodes_expanded,
                candidates_considered=result.stats.candidates_considered,
                total_distance=result.total_distance,
                feasible=result.feasible,
            )
        )
    return report


def run_stg_ablation(
    dataset: Dataset,
    initiator: Vertex,
    group_size: int,
    radius: int,
    acquaintance: int,
    activity_length: int,
    repetitions: int = 1,
) -> AblationReport:
    """Ablate the STGQ strategies on one query."""
    query = STGQuery(
        initiator=initiator,
        group_size=group_size,
        radius=radius,
        acquaintance=acquaintance,
        activity_length=activity_length,
    )
    report = AblationReport(query=query.describe())
    for variant, overrides in STG_STRATEGIES.items():
        parameters = SearchParameters(**overrides)
        measurement = measure(
            lambda parameters=parameters: STGSelect(
                dataset.graph, dataset.calendars, parameters
            ).solve(query),
            repetitions=repetitions,
        )
        result = measurement.result
        report.rows.append(
            AblationRow(
                variant=variant,
                seconds=measurement.seconds_mean,
                nodes_expanded=result.stats.nodes_expanded,
                candidates_considered=result.stats.candidates_considered,
                total_distance=result.total_distance,
                feasible=result.feasible,
            )
        )
    return report


def format_ablation(report: AblationReport) -> str:
    """Render an ablation report as an aligned text table."""
    header = ["variant", "seconds", "nodes", "candidates", "distance"]
    rows = [header, ["-" * len(h) for h in header]]
    for row in report.rows:
        rows.append(
            [
                row.variant,
                f"{row.seconds:.4f}",
                str(row.nodes_expanded),
                str(row.candidates_considered),
                f"{row.total_distance:.1f}" if row.feasible else "infeasible",
            ]
        )
    widths = [max(len(r[i]) for r in rows) for i in range(len(header))]
    lines = [report.query]
    for r in rows:
        lines.append("  ".join(cell.ljust(widths[i]) for i, cell in enumerate(r)))
    return "\n".join(lines)
