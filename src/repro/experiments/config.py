"""Experiment configuration.

The paper's evaluation (Figure 1, panels (a)–(h)) runs on a 2008-era Xeon
server with C-like single-thread implementations; a pure-Python reproduction
cannot use the same absolute scales (the SGQ baseline at ``p = 11`` over a
100-friend ego network would enumerate ~10^13 groups).  Every experiment
therefore has an :class:`ExperimentScale`:

* ``SMOKE`` — seconds; used by the test-suite and CI.
* ``PAPER_SHAPE`` — the default for ``pytest benchmarks/``: small enough to
  finish in minutes, large enough that the qualitative shapes of the paper's
  figures (who wins, how the gap grows) are visible.
* ``FULL`` — the closest practical approximation of the paper's parameter
  ranges; expect long runtimes for the baseline series.

The per-figure parameter grids live here so benchmarks, the CLI and
EXPERIMENTS.md all describe exactly the same runs.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Dict, Optional, Tuple

__all__ = ["ExperimentScale", "FigureConfig", "figure_config", "FIGURE_IDS"]


class ExperimentScale(str, Enum):
    """How big an experiment run should be."""

    SMOKE = "smoke"
    PAPER_SHAPE = "paper-shape"
    FULL = "full"


@dataclass(frozen=True)
class FigureConfig:
    """Parameter grid for one panel of the paper's Figure 1."""

    figure: str
    description: str
    sweep_name: str
    sweep_values: Tuple[object, ...]
    group_size: int
    radius: int
    acquaintance: int
    activity_length: Optional[int] = None
    schedule_days: int = 1
    network_size: int = 194
    include_ip: bool = False
    include_baseline: bool = True
    baseline_cap: Optional[int] = 2_000_000
    seed: int = 42
    notes: str = ""


FIGURE_IDS = ("1a", "1b", "1c", "1d", "1e", "1f", "1g", "1h")

_PAPER_SHAPE: Dict[str, FigureConfig] = {
    "1a": FigureConfig(
        figure="1a",
        description="SGQ running time vs. group size p (SGSelect / Baseline / IP)",
        sweep_name="p",
        sweep_values=(3, 4, 5, 6, 7),
        group_size=0,  # swept
        radius=1,
        acquaintance=2,
        include_ip=True,
        notes="paper sweeps p = 3..11 with k = 2, s = 1",
    ),
    "1b": FigureConfig(
        figure="1b",
        description="SGQ running time vs. social radius s (SGSelect / Baseline)",
        sweep_name="s",
        sweep_values=(1, 2, 3),
        group_size=4,
        radius=0,  # swept
        acquaintance=2,
        notes="paper sweeps s in {1, 3, 5} with p = 4, k = 2",
    ),
    "1c": FigureConfig(
        figure="1c",
        description="SGQ running time vs. acquaintance constraint k (SGSelect / Baseline)",
        sweep_name="k",
        sweep_values=(1, 2, 3, 4, 5, 6),
        group_size=5,
        radius=1,
        acquaintance=0,  # swept
        notes=(
            "paper sweeps k = 1..6 with p = 5, s = 2; the harness uses s = 1 so the "
            "pure-Python exhaustive baseline stays runnable (the claim — k barely "
            "affects running time and SGSelect wins at every k — is radius-independent)"
        ),
    ),
    "1d": FigureConfig(
        figure="1d",
        description="SGQ running time vs. network size (SGSelect / Baseline / IP)",
        sweep_name="network_size",
        sweep_values=(194, 800, 3200, 12800),
        group_size=5,
        radius=1,
        acquaintance=3,
        include_ip=True,
        notes="paper sweeps network size in {194, 800, 3200, 12800} with p = 5, k = 3, s = 1",
    ),
    "1e": FigureConfig(
        figure="1e",
        description="STGQ running time vs. activity length m (STGSelect / Baseline)",
        sweep_name="m",
        sweep_values=(2, 4, 6, 8, 12, 16, 24),
        group_size=4,
        radius=1,
        acquaintance=2,
        activity_length=0,  # swept
        notes="paper sweeps m = 2..24 half-hour slots",
    ),
    "1f": FigureConfig(
        figure="1f",
        description="STGQ running time vs. schedule length in days (STGSelect / Baseline)",
        sweep_name="schedule_days",
        sweep_values=(1, 2, 3, 4, 5, 6, 7),
        group_size=4,
        radius=1,
        acquaintance=2,
        activity_length=4,
        notes="paper sweeps schedule length 1..7 days",
    ),
    "1g": FigureConfig(
        figure="1g",
        description="Solution quality: observed k vs. p (STGArrange vs PCArrange)",
        sweep_name="p",
        sweep_values=(3, 4, 5, 6, 7, 8),
        group_size=0,  # swept
        radius=1,
        acquaintance=0,
        activity_length=4,
        include_baseline=False,
        notes=(
            "paper sweeps p = 3..11 on its real dataset; the harness uses s = 1 so the "
            "repeated STGSelect runs inside STGArrange stay interactive in pure Python"
        ),
    ),
    "1h": FigureConfig(
        figure="1h",
        description="Solution quality: total social distance vs. p (STGArrange vs PCArrange)",
        sweep_name="p",
        sweep_values=(3, 4, 5, 6, 7, 8),
        group_size=0,  # swept
        radius=1,
        acquaintance=0,
        activity_length=4,
        include_baseline=False,
        notes=(
            "paper sweeps p = 3..11 on its real dataset; the harness uses s = 1 (see Figure 1(g) note)"
        ),
    ),
}


def _smoke(config: FigureConfig) -> FigureConfig:
    """Shrink a paper-shape config to a seconds-scale smoke run."""
    small_values = {
        "1a": (3, 4),
        "1b": (1, 2),
        "1c": (1, 2),
        "1d": (60, 120),
        "1e": (2, 4),
        "1f": (1, 2),
        "1g": (3, 4),
        "1h": (3, 4),
    }[config.figure]
    network = 60 if config.figure != "1d" else config.network_size
    return FigureConfig(
        figure=config.figure,
        description=config.description,
        sweep_name=config.sweep_name,
        sweep_values=small_values,
        group_size=min(config.group_size, 4) if config.group_size else config.group_size,
        radius=config.radius if config.sweep_name != "s" else config.radius,
        acquaintance=config.acquaintance,
        activity_length=config.activity_length,
        schedule_days=1,
        network_size=network,
        include_ip=config.include_ip,
        include_baseline=config.include_baseline,
        baseline_cap=200_000,
        seed=config.seed,
        notes=config.notes + " (smoke scale)",
    )


def _full(config: FigureConfig) -> FigureConfig:
    """Grow a paper-shape config towards the paper's parameter ranges."""
    full_values = {
        "1a": (3, 4, 5, 6, 7, 8, 9),
        "1b": (1, 2, 3, 4, 5),
        "1c": (1, 2, 3, 4, 5, 6),
        "1d": (194, 800, 3200, 12800),
        "1e": (2, 4, 6, 8, 10, 12, 14, 16, 18, 20, 22, 24),
        "1f": (1, 2, 3, 4, 5, 6, 7),
        "1g": (3, 4, 5, 6, 7, 8, 9, 10, 11),
        "1h": (3, 4, 5, 6, 7, 8, 9, 10, 11),
    }[config.figure]
    return FigureConfig(
        figure=config.figure,
        description=config.description,
        sweep_name=config.sweep_name,
        sweep_values=full_values,
        group_size=config.group_size,
        radius=config.radius,
        acquaintance=config.acquaintance,
        activity_length=config.activity_length,
        schedule_days=config.schedule_days,
        network_size=config.network_size,
        include_ip=config.include_ip,
        include_baseline=config.include_baseline,
        baseline_cap=20_000_000,
        seed=config.seed,
        notes=config.notes + " (full scale)",
    )


def figure_config(figure: str, scale: ExperimentScale = ExperimentScale.PAPER_SHAPE) -> FigureConfig:
    """Return the parameter grid for ``figure`` ("1a".."1h") at ``scale``."""
    key = figure.lower().lstrip("fig").lstrip("ure").strip(". ") or figure
    if key not in _PAPER_SHAPE:
        raise KeyError(f"unknown figure {figure!r}; expected one of {FIGURE_IDS}")
    base = _PAPER_SHAPE[key]
    if scale == ExperimentScale.PAPER_SHAPE:
        return base
    if scale == ExperimentScale.SMOKE:
        return _smoke(base)
    return _full(base)
