"""Workload construction for the experiments.

Every figure panel needs (a) a dataset of the right size and schedule length
and (b) an initiator with a sufficiently populated ego network.  This module
builds and caches those workloads so the eight benchmark files do not repeat
the generation logic (and so two panels asking for the same dataset reuse a
single instance within a process).
"""

from __future__ import annotations

from functools import lru_cache
from typing import Optional, Tuple

from ..datasets.base import Dataset
from ..datasets.coauthorship import generate_coauthorship_dataset
from ..datasets.realistic import generate_real_dataset
from ..graph.extraction import extract_feasible_graph
from ..types import Vertex

__all__ = ["workload", "pick_initiator", "ego_size"]


@lru_cache(maxsize=16)
def workload(network_size: int = 194, schedule_days: int = 1, seed: int = 42) -> Dataset:
    """Build (and memoise) the dataset for one experiment configuration.

    Sizes up to a few hundred people use the community generator that stands
    in for the paper's real dataset; larger sizes use the coauthorship-style
    generator, mirroring the paper's Figure 1(d) setup.
    """
    if network_size <= 400:
        return generate_real_dataset(
            n_people=network_size, schedule_days=schedule_days, seed=seed
        )
    return generate_coauthorship_dataset(
        n_people=network_size, schedule_days=schedule_days, seed=seed
    )


def ego_size(dataset: Dataset, initiator: Vertex, radius: int) -> int:
    """Number of candidate attendees within ``radius`` edges of ``initiator``."""
    feasible = extract_feasible_graph(dataset.graph, initiator, radius)
    return len(feasible.graph) - 1


def pick_initiator(
    dataset: Dataset,
    radius: int,
    min_candidates: int,
    max_candidates: Optional[int] = None,
) -> Vertex:
    """Choose an initiator whose ego network has a workable number of candidates.

    The default experiment initiator is person 0 (densified by the dataset
    generators); if its ego network is outside the requested bounds the
    search falls back to scanning the population for the closest match.
    Keeping the candidate pool bounded is what makes the brute-force baseline
    runnable at all in pure Python — the paper's observation that the
    baseline explodes combinatorially survives at any pool size.
    """
    default = dataset.metadata.get("initiator", dataset.people[0])
    size = ego_size(dataset, default, radius)
    if size >= min_candidates and (max_candidates is None or size <= max_candidates):
        return default

    best: Tuple[int, Vertex] = (-1, default)
    for person in dataset.people:
        size = ego_size(dataset, person, radius)
        if size < min_candidates:
            continue
        if max_candidates is not None and size > max_candidates:
            continue
        # Prefer the largest ego network that still fits the cap.
        if size > best[0]:
            best = (size, person)
    if best[0] >= 0:
        return best[1]
    # Nothing fits both bounds: fall back to the person with the most friends.
    return max(dataset.people, key=lambda v: ego_size(dataset, v, radius))
