"""Workload construction for the experiments.

Every figure panel needs (a) a dataset of the right size and schedule length
and (b) an initiator with a sufficiently populated ego network.  This module
builds and caches those workloads so the eight benchmark files do not repeat
the generation logic (and so two panels asking for the same dataset reuse a
single instance within a process).
"""

from __future__ import annotations

import itertools
import json
import random
from functools import lru_cache
from pathlib import Path
from typing import List, Optional, Sequence, Tuple, Union

from ..core.query import SGQuery, STGQuery
from ..datasets.base import Dataset
from ..datasets.coauthorship import generate_coauthorship_dataset
from ..datasets.realistic import generate_real_dataset
from ..exceptions import QueryError
from ..graph.extraction import extract_feasible_graph
from ..types import Vertex

__all__ = [
    "workload",
    "pick_initiator",
    "ego_size",
    "zipfian_weights",
    "generate_query_workload",
    "save_workload",
    "load_workload",
]


@lru_cache(maxsize=16)
def workload(network_size: int = 194, schedule_days: int = 1, seed: int = 42) -> Dataset:
    """Build (and memoise) the dataset for one experiment configuration.

    Sizes up to a few hundred people use the community generator that stands
    in for the paper's real dataset; larger sizes use the coauthorship-style
    generator, mirroring the paper's Figure 1(d) setup.
    """
    if network_size <= 400:
        return generate_real_dataset(
            n_people=network_size, schedule_days=schedule_days, seed=seed
        )
    return generate_coauthorship_dataset(
        n_people=network_size, schedule_days=schedule_days, seed=seed
    )


def ego_size(dataset: Dataset, initiator: Vertex, radius: int) -> int:
    """Number of candidate attendees within ``radius`` edges of ``initiator``."""
    feasible = extract_feasible_graph(dataset.graph, initiator, radius)
    return len(feasible.graph) - 1


def pick_initiator(
    dataset: Dataset,
    radius: int,
    min_candidates: int,
    max_candidates: Optional[int] = None,
) -> Vertex:
    """Choose an initiator whose ego network has a workable number of candidates.

    The default experiment initiator is person 0 (densified by the dataset
    generators); if its ego network is outside the requested bounds the
    search falls back to scanning the population for the closest match.
    Keeping the candidate pool bounded is what makes the brute-force baseline
    runnable at all in pure Python — the paper's observation that the
    baseline explodes combinatorially survives at any pool size.
    """
    default = dataset.metadata.get("initiator", dataset.people[0])
    size = ego_size(dataset, default, radius)
    if size >= min_candidates and (max_candidates is None or size <= max_candidates):
        return default

    best: Tuple[int, Vertex] = (-1, default)
    for person in dataset.people:
        size = ego_size(dataset, person, radius)
        if size < min_candidates:
            continue
        if max_candidates is not None and size > max_candidates:
            continue
        # Prefer the largest ego network that still fits the cap.
        if size > best[0]:
            best = (size, person)
    if best[0] >= 0:
        return best[1]
    # Nothing fits both bounds: fall back to the person with the most friends.
    return max(dataset.people, key=lambda v: ego_size(dataset, v, radius))


def zipfian_weights(n: int, skew: float) -> List[float]:
    """Zipf-Mandelbrot rank weights ``1 / rank**skew`` for ranks ``1..n``.

    ``skew = 0`` degenerates to the uniform distribution; ``skew`` around
    0.8–1.2 matches the initiator-popularity skew reported for social
    production workloads (a few heavy users issue most of the traffic).
    """
    if n < 1:
        raise QueryError(f"need at least one rank, got {n}")
    if skew < 0:
        raise QueryError(f"skew must be >= 0, got {skew}")
    return [1.0 / (rank**skew) for rank in range(1, n + 1)]


def generate_query_workload(
    dataset: Dataset,
    n_queries: int,
    skew: float = 0.0,
    initiators: Optional[Sequence[Vertex]] = None,
    n_initiators: Optional[int] = None,
    radii: Sequence[int] = (1, 2),
    group_sizes: Sequence[int] = (3, 4, 5),
    stg_fraction: float = 0.3,
    activity_lengths: Sequence[int] = (2, 4),
    seed: int = 0,
) -> List[Union[SGQuery, STGQuery]]:
    """Seeded service workload: Zipfian initiators, mixed radii and kinds.

    The uniform, few-initiator batches the earlier benchmarks used flatter
    the service: every shard gets equal load and the ego-network cache never
    evicts.  Production traffic is skewed — this generator draws each
    query's initiator from a Zipf(``skew``) distribution over a (shuffled)
    pool, mixes social radii (radius-2 queries are the solver-bound ones)
    and intersperses SGQ/STGQ traffic, which is what actually stresses
    shard balance and LRU eviction.

    Parameters
    ----------
    skew:
        Zipf exponent for initiator popularity (0 = uniform).
    initiators:
        Explicit initiator pool in rank order (heaviest first).  When
        omitted, a pool of ``n_initiators`` (default: everyone) is sampled
        and shuffled, so popularity rank is independent of vertex ids.
    radii / group_sizes / activity_lengths:
        Choice sets sampled uniformly per query.
    stg_fraction:
        Fraction of queries that are social-temporal (need calendars).
    """
    if n_queries < 0:
        raise QueryError(f"n_queries must be >= 0, got {n_queries}")
    if not 0.0 <= stg_fraction <= 1.0:
        raise QueryError(f"stg_fraction must be in [0, 1], got {stg_fraction}")
    rng = random.Random(seed)
    if initiators is not None:
        pool = list(initiators)
    else:
        people = list(dataset.people)
        size = len(people) if n_initiators is None else min(n_initiators, len(people))
        pool = rng.sample(people, size)
    if not pool:
        raise QueryError("initiator pool is empty")
    # random.choices rebuilds the cumulative table per call; accumulate
    # once so sampling stays O(log n) per query at any population size.
    cum_weights = list(itertools.accumulate(zipfian_weights(len(pool), skew)))
    group_size_choices = list(group_sizes)
    radius_choices = list(radii)
    length_choices = list(activity_lengths)
    queries: List[Union[SGQuery, STGQuery]] = []
    for _ in range(n_queries):
        initiator = rng.choices(pool, cum_weights=cum_weights, k=1)[0]
        group_size = rng.choice(group_size_choices)
        radius = rng.choice(radius_choices)
        if rng.random() < stg_fraction:
            queries.append(
                STGQuery(
                    initiator=initiator,
                    group_size=group_size,
                    radius=radius,
                    acquaintance=2,
                    activity_length=rng.choice(length_choices),
                )
            )
        else:
            queries.append(
                SGQuery(
                    initiator=initiator,
                    group_size=group_size,
                    radius=radius,
                    acquaintance=2,
                )
            )
    return queries


def save_workload(queries: Sequence[Union[SGQuery, STGQuery]], path) -> int:
    """Write a query trace to ``path`` as JSONL; returns the line count.

    One request object per line, in the shared request schema of
    :mod:`repro.service.codec` — the same payloads ``stgq serve --jsonl``
    accepts, so a saved trace can be replayed through the benchmark
    (``bench_service.py --replay``), piped straight into a serving process,
    or diffed against a measured production log.  This is the bridge from
    synthetic Zipf draws to feeding *measured* traces: capture real traffic
    in this format once, and every harness replays it.
    """
    from ..service.codec import request_for

    path = Path(path)
    with path.open("w", encoding="utf-8") as handle:
        for query in queries:
            handle.write(json.dumps(request_for(query), separators=(",", ":")) + "\n")
    return len(queries)


def load_workload(path) -> List[Union[SGQuery, STGQuery]]:
    """Read a JSONL query trace written by :func:`save_workload`.

    Raises :class:`~repro.exceptions.QueryError` on a malformed line (with
    its line number), so a corrupted trace fails loudly instead of silently
    benchmarking a truncated workload.  Blank lines are skipped.
    """
    from ..service.codec import query_from_request

    queries: List[Union[SGQuery, STGQuery]] = []
    path = Path(path)
    with path.open("r", encoding="utf-8") as handle:
        for lineno, line in enumerate(handle, start=1):
            text = line.strip()
            if not text:
                continue
            try:
                payload = json.loads(text)
            except json.JSONDecodeError as exc:
                raise QueryError(f"{path}:{lineno}: invalid JSON: {exc}") from exc
            try:
                queries.append(query_from_request(payload))
            except QueryError as exc:
                raise QueryError(f"{path}:{lineno}: {exc}") from exc
    return queries
