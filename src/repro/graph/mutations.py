"""Typed live-graph mutations, versioned batches, traces and snapshots.

The live-graph subsystem (``docs/live_graph.md``) moves the fleet from
"nuke everything on any change" to *incremental* maintenance.  Its unit of
change is the :class:`Mutation` — one of three operator-visible ops:

``add_edge``
    Add (or re-weight) an undirected social edge ``{u, v}``.
``remove_edge``
    Remove an existing edge; absent edges raise
    :class:`~repro.exceptions.GraphError` (via ``EdgeNotFoundError``).
``update_availability``
    Replace one person's availability schedule with an explicit slot list.

Mutations are grouped into :class:`MutationBatch` es tagged with the
``from_version``/``to_version`` of the mutation stream they span — every
mutation advances the stream position by exactly one, so
``to_version - from_version == len(mutations)`` always holds and replicas
can detect gaps by integer comparison alone.

Everything here is wire-friendly: mutations and batches round-trip through
plain JSON objects (``as_wire``/``from_wire``), traces persist as JSONL
(one mutation per line), and :func:`graph_to_snapshot` /
:func:`graph_from_snapshot` serialise a full graph for the snapshot
fallback when a replica's gap cannot be bridged by deltas.  Vertex ids
must be JSON-stable scalars (ints or strings) — the same constraint the
query wire codec already imposes.
"""

from __future__ import annotations

import json
import random
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Tuple, Union

from ..exceptions import GraphError, ProtocolError
from ..types import Vertex
from .social_graph import SocialGraph

PathLike = Union[str, Path]

__all__ = [
    "Mutation",
    "MutationBatch",
    "MUTATION_KINDS",
    "apply_mutation",
    "generate_mutation_trace",
    "save_mutation_trace",
    "load_mutation_trace",
    "graph_to_snapshot",
    "graph_from_snapshot",
]

MUTATION_KINDS = ("add_edge", "remove_edge", "update_availability")


@dataclass(frozen=True)
class Mutation:
    """One live-graph mutation; build via the classmethod constructors."""

    kind: str
    u: Optional[Vertex] = None
    v: Optional[Vertex] = None
    distance: Optional[float] = None
    person: Optional[Vertex] = None
    slots: Optional[Tuple[int, ...]] = None

    def __post_init__(self) -> None:
        if self.kind not in MUTATION_KINDS:
            raise GraphError(f"unknown mutation kind {self.kind!r}")
        if self.kind in ("add_edge", "remove_edge"):
            if self.u is None or self.v is None:
                raise GraphError(f"{self.kind} mutation requires both endpoints")
            if self.kind == "add_edge" and self.distance is None:
                raise GraphError("add_edge mutation requires a distance")
        else:
            if self.person is None or self.slots is None:
                raise GraphError("update_availability mutation requires person and slots")
            object.__setattr__(self, "slots", tuple(int(s) for s in self.slots))

    # ------------------------------------------------------------------
    # constructors
    # ------------------------------------------------------------------
    @classmethod
    def add_edge(cls, u: Vertex, v: Vertex, distance: float) -> "Mutation":
        return cls(kind="add_edge", u=u, v=v, distance=float(distance))

    @classmethod
    def remove_edge(cls, u: Vertex, v: Vertex) -> "Mutation":
        return cls(kind="remove_edge", u=u, v=v)

    @classmethod
    def update_availability(cls, person: Vertex, slots: Iterable[int]) -> "Mutation":
        return cls(kind="update_availability", person=person, slots=tuple(slots))

    # ------------------------------------------------------------------
    # wire codec
    # ------------------------------------------------------------------
    def as_wire(self) -> Dict:
        """Encode as a JSON-ready dict (inverse of :meth:`from_wire`)."""
        if self.kind == "add_edge":
            return {"kind": self.kind, "u": self.u, "v": self.v, "distance": self.distance}
        if self.kind == "remove_edge":
            return {"kind": self.kind, "u": self.u, "v": self.v}
        return {"kind": self.kind, "person": self.person, "slots": list(self.slots or ())}

    @classmethod
    def from_wire(cls, payload: object) -> "Mutation":
        """Decode a wire dict; malformed payloads raise :class:`ProtocolError`."""
        if not isinstance(payload, dict):
            raise ProtocolError(f"mutation payload must be an object, got {type(payload).__name__}")
        kind = payload.get("kind")
        try:
            if kind == "add_edge":
                return cls.add_edge(payload["u"], payload["v"], payload["distance"])
            if kind == "remove_edge":
                return cls.remove_edge(payload["u"], payload["v"])
            if kind == "update_availability":
                return cls.update_availability(payload["person"], payload["slots"])
        except (KeyError, TypeError, ValueError, GraphError) as exc:
            raise ProtocolError(f"malformed {kind!r} mutation: {exc}") from exc
        raise ProtocolError(f"unknown mutation kind {kind!r}")

    def touched_vertices(self) -> Tuple[Vertex, ...]:
        """Vertices whose cached egos this mutation can possibly change.

        Edge mutations touch both endpoints.  Availability updates touch
        *no* ego entries: feasible graphs depend only on topology — the
        solvers read calendars live at solve time.
        """
        if self.kind in ("add_edge", "remove_edge"):
            return (self.u, self.v)
        return ()


def apply_mutation(graph, calendars, mutation: Mutation) -> Tuple[Vertex, ...]:
    """Apply one mutation to ``(graph, calendars)``; return touched vertices.

    ``graph`` must expose the mutation surface (``SocialGraph`` or
    :class:`~repro.graph.overlay.GraphOverlay`); ``calendars`` a
    :class:`~repro.temporal.calendars.CalendarStore` (may be ``None`` when
    the deployment has no temporal layer — availability updates then raise).
    """
    if mutation.kind == "add_edge":
        graph.add_edge(mutation.u, mutation.v, mutation.distance)
    elif mutation.kind == "remove_edge":
        graph.remove_edge(mutation.u, mutation.v)
    else:
        if calendars is None:
            raise GraphError("update_availability mutation without a calendar store")
        from ..temporal.schedule import Schedule

        calendars.set(mutation.person, Schedule(calendars.horizon, mutation.slots))
    return mutation.touched_vertices()


@dataclass(frozen=True)
class MutationBatch:
    """An ordered mutation run spanning ``from_version -> to_version``.

    Every mutation advances the live-version stream by exactly one, so the
    span length must equal the mutation count — enforced at construction
    and again when decoding from the wire, which is what lets replicas
    detect gaps (and already-applied batches) with two integer compares.
    """

    from_version: int
    to_version: int
    mutations: Tuple[Mutation, ...]

    def __post_init__(self) -> None:
        object.__setattr__(self, "mutations", tuple(self.mutations))
        if self.to_version - self.from_version != len(self.mutations):
            raise GraphError(
                f"batch spans {self.from_version}->{self.to_version} but carries "
                f"{len(self.mutations)} mutations"
            )

    def as_wire(self) -> Dict:
        return {
            "from_version": self.from_version,
            "to_version": self.to_version,
            "mutations": [m.as_wire() for m in self.mutations],
        }

    @classmethod
    def from_wire(cls, payload: object) -> "MutationBatch":
        if not isinstance(payload, dict):
            raise ProtocolError(f"delta payload must be an object, got {type(payload).__name__}")
        try:
            from_version = int(payload["from_version"])
            to_version = int(payload["to_version"])
            raw = payload["mutations"]
        except (KeyError, TypeError, ValueError) as exc:
            raise ProtocolError(f"malformed mutation batch: {exc}") from exc
        if not isinstance(raw, list):
            raise ProtocolError("mutation batch 'mutations' must be a list")
        mutations = tuple(Mutation.from_wire(m) for m in raw)
        try:
            return cls(from_version, to_version, mutations)
        except GraphError as exc:
            raise ProtocolError(str(exc)) from exc


# ----------------------------------------------------------------------
# seeded traces
# ----------------------------------------------------------------------
def generate_mutation_trace(
    graph,
    count: int,
    seed: int = 0,
    horizon: Optional[int] = None,
    max_distance: float = 3.0,
) -> List[Mutation]:
    """Generate a seeded, *valid-in-sequence* mutation trace for ``graph``.

    The generator simulates the trace against a private copy of the edge
    set, so every ``remove_edge`` targets an edge that exists at that point
    in the stream and every ``add_edge`` creates a genuinely new edge.
    Roughly 45% adds / 35% removes / 20% availability updates (the last
    only when ``horizon`` is given).  The input graph is not mutated.
    """
    if count < 0:
        raise ValueError(f"count must be >= 0, got {count}")
    rng = random.Random(seed)
    vertices = list(graph.vertices())
    if len(vertices) < 2:
        raise GraphError("mutation trace needs a graph with at least two vertices")
    edges: List[Tuple[Vertex, Vertex]] = [(u, v) for u, v, _ in graph.edges()]
    edged = {frozenset(e) for e in edges}

    trace: List[Mutation] = []
    for _ in range(count):
        roll = rng.random()
        if horizon is not None and roll < 0.20:
            person = rng.choice(vertices)
            width = rng.randrange(0, horizon + 1)
            slots = sorted(rng.sample(range(1, horizon + 1), width))
            trace.append(Mutation.update_availability(person, slots))
            continue
        if roll < 0.65 and edges:
            idx = rng.randrange(len(edges))
            u, v = edges[idx]
            edges[idx] = edges[-1]
            edges.pop()
            edged.discard(frozenset((u, v)))
            trace.append(Mutation.remove_edge(u, v))
            continue
        for _attempt in range(64):
            u, v = rng.choice(vertices), rng.choice(vertices)
            if u != v and frozenset((u, v)) not in edged:
                break
        else:  # pragma: no cover - saturated graph
            raise GraphError("could not sample a non-edge; graph too dense for trace")
        distance = round(rng.uniform(0.2, max_distance), 3)
        edges.append((u, v))
        edged.add(frozenset((u, v)))
        trace.append(Mutation.add_edge(u, v, distance))
    return trace


def save_mutation_trace(path: PathLike, mutations: Sequence[Mutation]) -> None:
    """Write a trace as JSONL — one ``Mutation.as_wire()`` object per line."""
    with open(path, "w", encoding="utf-8") as handle:
        for mutation in mutations:
            handle.write(json.dumps(mutation.as_wire(), sort_keys=True) + "\n")


def load_mutation_trace(path: PathLike) -> List[Mutation]:
    """Load a JSONL mutation trace written by :func:`save_mutation_trace`."""
    trace: List[Mutation] = []
    with open(path, "r", encoding="utf-8") as handle:
        for lineno, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                payload = json.loads(line)
            except json.JSONDecodeError as exc:
                raise ProtocolError(f"{path}:{lineno}: not valid JSON: {exc}") from exc
            trace.append(Mutation.from_wire(payload))
    return trace


# ----------------------------------------------------------------------
# snapshots (the last-resort fallback when deltas cannot bridge a gap)
# ----------------------------------------------------------------------
def graph_to_snapshot(graph) -> Dict:
    """Serialise a substrate's full topology as a JSON-ready dict."""
    return {
        "vertices": list(graph.vertices()),
        "edges": [[u, v, d] for u, v, d in graph.edges()],
    }


def graph_from_snapshot(payload: object) -> SocialGraph:
    """Rebuild a :class:`SocialGraph` from :func:`graph_to_snapshot` output."""
    if not isinstance(payload, dict):
        raise ProtocolError(f"snapshot payload must be an object, got {type(payload).__name__}")
    try:
        vertices = payload["vertices"]
        edges = payload["edges"]
        graph = SocialGraph(
            edges=[(u, v, float(d)) for u, v, d in edges],
            vertices=vertices,
        )
    except (KeyError, TypeError, ValueError, GraphError) as exc:
        raise ProtocolError(f"malformed graph snapshot: {exc}") from exc
    return graph
