"""Compiled (integer-indexed, bitmask-adjacency) form of a feasible graph.

The reference SGSelect/STGSelect implementations manipulate Python sets of
arbitrary vertex objects; every interior-unfamiliarity or exterior-
expansibility evaluation rescans those sets, which makes the branch-and-bound
inner loop O(|VS|²) set operations per candidate per node.  This module maps
a :class:`~repro.graph.extraction.FeasibleGraph` to a dense integer universe
where

* vertex ``id 0`` is the initiator ``q``,
* ids ``1..n-1`` are the candidate attendees in *access order* (ascending
  adopted social distance, ties broken by insertion order — exactly
  ``FeasibleGraph.candidates``), and
* adjacency is stored as one arbitrary-precision Python int bitmask per id.

With that layout the search-state sets (``VS``, ``VA``, deferred) become int
bitmasks and the paper's measures become AND/popcount expressions:

* strangers of ``u`` inside ``VS``  →  ``popcount(members & ~adj[u])``,
* candidates acquainted with ``v``  →  ``popcount(remaining & adj[v])``,
* "next candidate by distance"      →  lowest set bit of the remaining mask
  (the id order *is* the distance order).

The structure is immutable after construction, so one compiled graph can be
shared by many concurrent searches (the batched
:class:`~repro.service.QueryService` relies on this).
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from ..types import Vertex
from .extraction import FeasibleGraph

__all__ = ["CompiledFeasibleGraph", "compile_feasible_graph", "iter_bits", "lowest_bit_index"]


def iter_bits(mask: int) -> Iterator[int]:
    """Yield the indices of the set bits of ``mask`` in ascending order."""
    while mask:
        low = mask & -mask
        yield low.bit_length() - 1
        mask ^= low


def lowest_bit_index(mask: int) -> int:
    """Index of the lowest set bit of a non-zero ``mask``."""
    return (mask & -mask).bit_length() - 1


class CompiledFeasibleGraph:
    """Dense-id, bitmask-adjacency view of a feasible graph.

    Attributes
    ----------
    source:
        The initiator vertex (always id 0).
    vertices:
        Tuple mapping id -> vertex; ``vertices[0] == source`` and
        ``vertices[1:]`` follow the access order.
    index:
        Inverse mapping vertex -> id.
    adj:
        ``adj[i]`` is the bitmask of ids adjacent to id ``i`` *within this
        universe* (vertices outside the candidate pool carry no bits, which
        is sound: every search-state set the measures intersect with is a
        subset of the universe).
    dist:
        ``dist[i]`` is the adopted social distance of id ``i`` from the
        initiator; ascending over ``i >= 1`` by construction.
    candidate_mask:
        Bitmask with ids ``1..n-1`` set (the full candidate pool).
    """

    __slots__ = ("source", "vertices", "index", "adj", "dist", "candidate_mask")

    def __init__(
        self,
        source: Vertex,
        ordered_candidates: Sequence[Vertex],
        feasible: FeasibleGraph,
    ) -> None:
        self.source = source
        self.vertices: Tuple[Vertex, ...] = (source, *ordered_candidates)
        self.index: Dict[Vertex, int] = {v: i for i, v in enumerate(self.vertices)}
        n = len(self.vertices)
        graph = feasible.graph
        adj: List[int] = [0] * n
        for i, v in enumerate(self.vertices):
            mask = 0
            for u in graph.neighbors(v):
                j = self.index.get(u)
                if j is not None:
                    mask |= 1 << j
            adj[i] = mask
        self.adj: Tuple[int, ...] = tuple(adj)
        self.dist: Tuple[float, ...] = tuple(
            feasible.distances[v] if i else 0.0 for i, v in enumerate(self.vertices)
        )
        self.candidate_mask: int = (1 << n) - 2  # all ids except the source

    @classmethod
    def from_parts(
        cls,
        source: Vertex,
        vertices: Tuple[Vertex, ...],
        adj: Tuple[int, ...],
        dist: Tuple[float, ...],
    ) -> "CompiledFeasibleGraph":
        """Assemble a compiled graph from pre-built parts.

        The CSR extraction fast lane (:func:`repro.graph.extraction.
        extract_query_forms`) derives the id layout and adjacency bitmasks
        straight from row slices; this constructor just adopts them instead
        of re-scanning a :class:`FeasibleGraph`.  ``vertices`` must start
        with ``source`` and follow the access order, ``adj``/``dist`` must
        be parallel to it — the caller vouches for the invariants.
        """
        self = cls.__new__(cls)
        self.source = source
        self.vertices = vertices
        self.index = {v: i for i, v in enumerate(vertices)}
        self.adj = adj
        self.dist = dist
        self.candidate_mask = (1 << len(vertices)) - 2
        return self

    def __len__(self) -> int:
        return len(self.vertices)

    @property
    def candidate_count(self) -> int:
        """Number of candidate attendees (excluding the initiator)."""
        return len(self.vertices) - 1

    def members_of(self, mask: int) -> List[Vertex]:
        """Map a bitmask of ids back to the vertex objects."""
        return [self.vertices[i] for i in iter_bits(mask)]

    def mask_of(self, vertices) -> int:
        """Bitmask of the ids of ``vertices`` (all must be in the universe)."""
        mask = 0
        for v in vertices:
            mask |= 1 << self.index[v]
        return mask

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"CompiledFeasibleGraph(source={self.source!r}, "
            f"candidates={self.candidate_count})"
        )


def compile_feasible_graph(
    feasible: FeasibleGraph,
    candidates: Optional[Sequence[Vertex]] = None,
) -> CompiledFeasibleGraph:
    """Compile ``feasible`` into the dense bitmask form.

    Parameters
    ----------
    feasible:
        The extracted feasible graph.
    candidates:
        Optional pre-filtered candidate pool *in access order* (must be a
        subsequence of ``feasible.candidates``).  Defaults to the full pool;
        the restricted form supports :class:`SGSelect`'s
        ``allowed_candidates`` parameter.
    """
    pool = feasible.candidates if candidates is None else list(candidates)
    return CompiledFeasibleGraph(feasible.source, pool, feasible)
