"""Synthetic social-network generators.

The paper evaluates on two datasets that are not publicly redistributable:

* a 194-person "real" dataset collected from invited participants, with
  social distances derived from interaction frequencies (meetings, phone
  calls, mails), and
* a 12 800-person synthetic dataset generated from a coauthorship network,
  with schedules resampled from the real dataset.

These generators produce graphs with the structural properties those
datasets contribute to the evaluation: community structure, small-world
connectivity, heavy-tailed degree distributions, and interaction-derived
edge distances.  Every generator is seeded so experiments are reproducible.
"""

from __future__ import annotations

import math
import random
from typing import Dict, List, Optional

from ..exceptions import GraphError
from ..types import Vertex
from .social_graph import SocialGraph

__all__ = [
    "interaction_to_distance",
    "community_social_network",
    "coauthorship_style_network",
    "small_world_network",
    "erdos_renyi_network",
    "ensure_connected_to",
]


def interaction_to_distance(frequency: float, scale: float = 30.0) -> float:
    """Convert an interaction frequency into a social distance.

    The paper derives social distance "according to the interaction between
    the two corresponding people, such as the frequency of meeting, phone
    calls, and mails" (citing Backstrom et al. and the SONAR work): higher
    interaction means smaller distance.  We adopt the common reciprocal-log
    transform

        distance = scale / (1 + log(1 + frequency))

    which maps frequency 0 to ``scale`` and decays smoothly, matching the
    5..30 range of the worked example distances in the paper's Figure 2.
    """
    if frequency < 0:
        raise ValueError(f"interaction frequency must be non-negative, got {frequency}")
    return scale / (1.0 + math.log1p(frequency))


def _sample_interaction_frequency(rng: random.Random, same_community: bool) -> float:
    """Sample an interaction frequency; intra-community ties interact more."""
    # Heavy-tailed (log-normal) interaction counts.
    mu = 2.2 if same_community else 0.7
    return rng.lognormvariate(mu, 0.8)


def community_social_network(
    n_people: int = 194,
    n_communities: int = 4,
    intra_community_prob: float = 0.22,
    inter_community_prob: float = 0.015,
    overlap_fraction: float = 0.1,
    seed: Optional[int] = 7,
    distance_scale: float = 30.0,
) -> SocialGraph:
    """Generate a community-structured social network.

    This is the stand-in for the paper's 194-person real dataset, whose
    participants came "from various communities, e.g., schools, government,
    business, and industry".  People are partitioned into ``n_communities``
    groups (with a small fraction belonging to two groups), edges are dense
    inside communities and sparse across them, and distances derive from a
    simulated interaction-frequency model.

    Parameters
    ----------
    n_people:
        Number of vertices (default 194, matching the paper).
    n_communities:
        Number of communities.
    intra_community_prob / inter_community_prob:
        Edge probabilities within and across communities.
    overlap_fraction:
        Fraction of people assigned to a second community, creating bridges.
    seed:
        RNG seed for reproducibility.
    distance_scale:
        Passed to :func:`interaction_to_distance`.
    """
    if n_people < 2:
        raise GraphError("a social network needs at least 2 people")
    if n_communities < 1:
        raise GraphError("need at least one community")
    rng = random.Random(seed)

    membership: Dict[int, List[int]] = {}
    for person in range(n_people):
        primary = person % n_communities
        communities = [primary]
        if rng.random() < overlap_fraction and n_communities > 1:
            secondary = rng.randrange(n_communities)
            if secondary != primary:
                communities.append(secondary)
        membership[person] = communities

    graph = SocialGraph(vertices=range(n_people))
    for u in range(n_people):
        for v in range(u + 1, n_people):
            shared = bool(set(membership[u]) & set(membership[v]))
            prob = intra_community_prob if shared else inter_community_prob
            if rng.random() < prob:
                freq = _sample_interaction_frequency(rng, shared)
                graph.add_edge(u, v, interaction_to_distance(freq, distance_scale))
    _connect_isolated(graph, rng, distance_scale)
    return graph


def coauthorship_style_network(
    n_people: int = 12800,
    mean_degree: float = 8.0,
    community_size: int = 50,
    rewire_prob: float = 0.08,
    seed: Optional[int] = 11,
    distance_scale: float = 30.0,
) -> SocialGraph:
    """Generate a large coauthorship-style network.

    Coauthorship networks are characterised by many small, dense groups
    (papers / labs) linked by a sparser collaboration backbone with a
    heavy-tailed degree distribution.  We reproduce that shape with a
    block-plus-preferential-attachment construction:

    1. people are grouped into blocks of ``community_size`` and each block is
       wired as a dense random cluster (the "lab"),
    2. a preferential-attachment pass adds ``mean_degree/2`` cross-block
       collaborations per person, favouring already well-connected people,
    3. a small rewiring pass adds long-range randomness.

    The result scales comfortably to the paper's 12 800 vertices.
    """
    if n_people < 2:
        raise GraphError("a social network needs at least 2 people")
    rng = random.Random(seed)
    graph = SocialGraph(vertices=range(n_people))

    # 1. dense blocks
    block_count = max(1, n_people // community_size)
    for b in range(block_count):
        lo = b * community_size
        hi = min(n_people, lo + community_size)
        members = list(range(lo, hi))
        # Each member connects to ~4 random peers in the block.
        for u in members:
            peers = rng.sample(members, min(len(members), 5))
            for v in peers:
                if u != v and not graph.has_edge(u, v):
                    freq = _sample_interaction_frequency(rng, same_community=True)
                    graph.add_edge(u, v, interaction_to_distance(freq, distance_scale))

    # 2. preferential attachment across blocks.  The number of collaborations
    # added per person is itself heavy-tailed (Pareto), which combined with
    # the degree-proportional target choice produces the hub structure of
    # real coauthorship networks.
    degree_weighted: List[int] = []
    for v in range(n_people):
        degree_weighted.extend([v] * (graph.degree(v) + 1))
    base_extra = max(1, int(mean_degree // 2))
    for u in range(n_people):
        extra_per_person = min(10 * base_extra, max(1, int(rng.paretovariate(1.6) * base_extra / 2)))
        for _ in range(extra_per_person):
            v = rng.choice(degree_weighted)
            if v != u and not graph.has_edge(u, v):
                freq = _sample_interaction_frequency(rng, same_community=False)
                graph.add_edge(u, v, interaction_to_distance(freq, distance_scale))
                degree_weighted.append(v)
                degree_weighted.append(u)

    # 3. light rewiring for small-world shortcuts
    shortcut_count = int(n_people * rewire_prob)
    for _ in range(shortcut_count):
        u = rng.randrange(n_people)
        v = rng.randrange(n_people)
        if u != v and not graph.has_edge(u, v):
            freq = _sample_interaction_frequency(rng, same_community=False)
            graph.add_edge(u, v, interaction_to_distance(freq, distance_scale))

    _connect_isolated(graph, rng, distance_scale)
    return graph


def small_world_network(
    n_people: int,
    nearest_neighbors: int = 6,
    rewire_prob: float = 0.1,
    seed: Optional[int] = 3,
    distance_scale: float = 30.0,
) -> SocialGraph:
    """Watts–Strogatz-style small-world network with interaction distances.

    Useful as an additional workload for sensitivity experiments: it has the
    high clustering / short path length regime where the acquaintance
    constraint is easy to satisfy locally but the search still has to explore
    many near-equivalent groups.
    """
    if nearest_neighbors % 2 != 0:
        raise GraphError("nearest_neighbors must be even")
    rng = random.Random(seed)
    graph = SocialGraph(vertices=range(n_people))
    half = nearest_neighbors // 2
    for u in range(n_people):
        for offset in range(1, half + 1):
            v = (u + offset) % n_people
            if not graph.has_edge(u, v):
                freq = _sample_interaction_frequency(rng, same_community=True)
                graph.add_edge(u, v, interaction_to_distance(freq, distance_scale))
    # rewire
    for u in range(n_people):
        for offset in range(1, half + 1):
            if rng.random() < rewire_prob:
                v = (u + offset) % n_people
                w = rng.randrange(n_people)
                if w != u and not graph.has_edge(u, w) and graph.has_edge(u, v):
                    d = graph.distance(u, v)
                    graph.remove_edge(u, v)
                    graph.add_edge(u, w, d)
    _connect_isolated(graph, rng, distance_scale)
    return graph


def erdos_renyi_network(
    n_people: int,
    edge_prob: float,
    seed: Optional[int] = 5,
    distance_scale: float = 30.0,
) -> SocialGraph:
    """Uniform random graph baseline workload."""
    rng = random.Random(seed)
    graph = SocialGraph(vertices=range(n_people))
    for u in range(n_people):
        for v in range(u + 1, n_people):
            if rng.random() < edge_prob:
                freq = _sample_interaction_frequency(rng, same_community=False)
                graph.add_edge(u, v, interaction_to_distance(freq, distance_scale))
    _connect_isolated(graph, rng, distance_scale)
    return graph


def ensure_connected_to(
    graph: SocialGraph,
    hub: Vertex,
    min_degree: int,
    seed: Optional[int] = None,
    distance_scale: float = 30.0,
) -> None:
    """Guarantee that ``hub`` has at least ``min_degree`` neighbours.

    Experiments that pick an initiator at random need the initiator's ego
    network to contain enough candidates for the requested group size; this
    helper densifies the neighbourhood of the chosen initiator in place.
    """
    rng = random.Random(seed)
    others = [v for v in graph.vertices() if v != hub]
    rng.shuffle(others)
    for v in others:
        if graph.degree(hub) >= min_degree:
            break
        if not graph.has_edge(hub, v):
            freq = _sample_interaction_frequency(rng, same_community=True)
            graph.add_edge(hub, v, interaction_to_distance(freq, distance_scale))


def _connect_isolated(graph: SocialGraph, rng: random.Random, distance_scale: float) -> None:
    """Attach isolated vertices to a random neighbour so queries never see
    degree-0 candidates (the paper's datasets have none)."""
    vertices = graph.vertices()
    if len(vertices) < 2:
        return
    for v in vertices:
        if graph.degree(v) == 0:
            u = rng.choice([x for x in vertices if x != v])
            freq = _sample_interaction_frequency(rng, same_community=False)
            graph.add_edge(u, v, interaction_to_distance(freq, distance_scale))
