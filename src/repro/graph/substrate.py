"""The ``GraphSubstrate`` abstraction: what a graph must offer the solvers.

Every query algorithm in this reproduction consumes the social graph
through a narrow, read-only surface — membership, iteration, neighbour
sets, per-edge distances, induced subgraphs.  Two substrates implement it:

* :class:`~repro.graph.social_graph.SocialGraph` — the adjacency-dict
  graph.  Mutable, handles arbitrary hashable vertex ids, and is the right
  choice up to a few tens of thousands of vertices.
* :class:`~repro.graph.csr.CSRGraph` — the out-of-core CSR substrate.
  Immutable ``indptr``/``indices``/``weights`` arrays over integer vertex
  ids, persisted in a single ``.stgq`` file that worker processes open
  memory-mapped, so a fleet shares one page-cache copy of the adjacency
  instead of holding N pickled dicts.

The hot helpers (:func:`~repro.graph.distance.bounded_distances`,
:func:`~repro.graph.extraction.extract_feasible_graph`, ...) dispatch on
the substrate: when the graph object itself provides an equally-named fast
path (as :class:`CSRGraph` does), it is used; otherwise the generic
adjacency-walking implementation runs.  Results are required to be
byte-identical across substrates — see ``tests/graph/
test_substrate_equivalence.py``.
"""

from __future__ import annotations

from typing import (
    FrozenSet,
    Iterator,
    List,
    Mapping,
    Protocol,
    runtime_checkable,
)

from ..types import Vertex, WeightedEdge

__all__ = ["GraphSubstrate", "is_substrate"]


@runtime_checkable
class GraphSubstrate(Protocol):
    """Read-only graph surface shared by every substrate implementation.

    The solvers, the service layer and the dataset registry are all written
    against this protocol; anything implementing it (structurally — no
    registration needed) can back a :class:`~repro.service.QueryService`.
    """

    def __contains__(self, v: Vertex) -> bool: ...

    def __len__(self) -> int: ...

    def __iter__(self) -> Iterator[Vertex]: ...

    @property
    def vertex_count(self) -> int: ...

    @property
    def edge_count(self) -> int: ...

    def vertices(self) -> List[Vertex]: ...

    def edges(self) -> List[WeightedEdge]: ...

    def has_edge(self, u: Vertex, v: Vertex) -> bool: ...

    def neighbors(self, v: Vertex) -> FrozenSet[Vertex]: ...

    def adjacency(self, v: Vertex) -> Mapping[Vertex, float]: ...

    def degree(self, v: Vertex) -> int: ...

    def distance(self, u: Vertex, v: Vertex) -> float: ...

    def subgraph(self, vertices) -> "GraphSubstrate": ...


def is_substrate(obj: object) -> bool:
    """Structural check: does ``obj`` satisfy :class:`GraphSubstrate`?"""
    return isinstance(obj, GraphSubstrate)
