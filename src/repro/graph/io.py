"""Persistence helpers for social graphs.

Two plain-text formats are supported:

* **Edge list** — one ``u v distance`` triple per line, ``#`` comments
  allowed.  This matches the format of common public network datasets (the
  paper's coauthorship source distributes edge lists), so real data can be
  dropped in without code changes.
* **JSON** — a self-describing document with explicit vertex and edge
  arrays, used by the dataset registry to cache generated datasets together
  with their schedules.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, List, Optional, Union

from ..exceptions import GraphError
from .social_graph import SocialGraph

__all__ = [
    "write_edge_list",
    "read_edge_list",
    "read_snap_edge_list",
    "graph_to_dict",
    "graph_from_dict",
    "write_json",
    "read_json",
]

PathLike = Union[str, Path]


def write_edge_list(graph: SocialGraph, path: PathLike, header: Optional[str] = None) -> None:
    """Write ``graph`` as a whitespace-separated edge list.

    Vertex identifiers are written with ``str()``; identifiers containing
    whitespace are rejected because they cannot be round-tripped.
    """
    lines: List[str] = []
    if header:
        for line in header.splitlines():
            lines.append(f"# {line}")
    for u, v, d in graph.edges():
        su, sv = str(u), str(v)
        if " " in su or " " in sv or "\t" in su or "\t" in sv:
            raise GraphError(f"vertex ids with whitespace cannot be written to edge lists: {u!r}, {v!r}")
        lines.append(f"{su} {sv} {d!r}")
    Path(path).write_text("\n".join(lines) + "\n", encoding="utf-8")


def read_edge_list(path: PathLike, vertex_type: type = str) -> SocialGraph:
    """Read an edge list written by :func:`write_edge_list`.

    Parameters
    ----------
    vertex_type:
        Callable applied to each vertex token (e.g. ``int`` for numeric ids).
    """
    graph = SocialGraph()
    for lineno, raw in enumerate(Path(path).read_text(encoding="utf-8").splitlines(), start=1):
        line = raw.strip()
        if not line or line.startswith("#"):
            continue
        parts = line.split()
        if len(parts) == 2:
            u_tok, v_tok = parts
            dist = 1.0
        elif len(parts) == 3:
            u_tok, v_tok, dist_tok = parts
            try:
                dist = float(dist_tok)
            except ValueError as exc:
                raise GraphError(f"line {lineno}: invalid distance {dist_tok!r}") from exc
        else:
            raise GraphError(f"line {lineno}: expected 'u v [distance]', got {raw!r}")
        graph.add_edge(vertex_type(u_tok), vertex_type(v_tok), dist)
    return graph


def read_snap_edge_list(path: PathLike, default_distance: float = 1.0) -> SocialGraph:
    """Read a SNAP-style edge list into a :class:`SocialGraph`.

    Public network dumps (SNAP, KONECT, the paper's coauthorship source) are
    messier than :func:`write_edge_list` output, so this loader normalises
    rather than assumes:

    * ``#`` comment lines and blank lines are skipped.
    * Vertex ids must be integers; they may be non-contiguous and 1-based
      (ids are kept verbatim — :func:`~repro.graph.csr.pack_graph` maps them
      to rows via a sorted label table).
    * Lines are ``u v`` or ``u v distance``; two-column lines get
      ``default_distance`` (unit social distance).
    * Self-loops (``u == u``) are dropped — the social graph is simple.
    * Duplicate edges (including the reversed direction of an undirected
      dump) are accepted when their distances agree and rejected with a
      :class:`~repro.exceptions.GraphError` naming the line otherwise.

    Anything else — a non-integer id token, a malformed distance, a
    non-positive or non-finite distance, a wrong column count — raises
    :class:`~repro.exceptions.GraphError` with the offending line number.
    """
    if not (default_distance > 0.0 and default_distance < float("inf")):
        raise GraphError(f"default_distance must be positive and finite, got {default_distance!r}")
    seen: Dict[tuple, float] = {}
    vertices: Dict[int, None] = {}
    for lineno, raw in enumerate(Path(path).read_text(encoding="utf-8").splitlines(), start=1):
        line = raw.strip()
        if not line or line.startswith("#"):
            continue
        parts = line.split()
        if len(parts) == 2:
            u_tok, v_tok = parts
            dist = default_distance
        elif len(parts) == 3:
            u_tok, v_tok, dist_tok = parts
            try:
                dist = float(dist_tok)
            except ValueError as exc:
                raise GraphError(f"line {lineno}: invalid distance {dist_tok!r}") from exc
        else:
            raise GraphError(f"line {lineno}: expected 'u v [distance]', got {raw!r}")
        try:
            u = int(u_tok)
            v = int(v_tok)
        except ValueError as exc:
            raise GraphError(
                f"line {lineno}: vertex ids must be integers, got {u_tok!r}, {v_tok!r}"
            ) from exc
        if not (dist > 0.0 and dist < float("inf")):
            raise GraphError(f"line {lineno}: distance must be positive and finite, got {dist!r}")
        vertices.setdefault(u)
        vertices.setdefault(v)
        if u == v:
            continue  # self-loops carry no social information
        key = (u, v) if u < v else (v, u)
        prior = seen.get(key)
        if prior is None:
            seen[key] = dist
        elif prior != dist:
            raise GraphError(
                f"line {lineno}: edge {key[0]}-{key[1]} repeated with conflicting "
                f"distances {prior!r} and {dist!r}"
            )
    graph = SocialGraph(vertices=vertices)
    for (u, v), dist in seen.items():
        graph.add_edge(u, v, dist)
    return graph


def graph_to_dict(graph: SocialGraph) -> Dict:
    """Serialise a graph to a JSON-compatible dict."""
    return {
        "vertices": [repr(v) if not isinstance(v, (str, int)) else v for v in graph.vertices()],
        "edges": [[u, v, d] for u, v, d in graph.edges()],
    }


def graph_from_dict(data: Dict) -> SocialGraph:
    """Reconstruct a graph from :func:`graph_to_dict` output."""
    graph = SocialGraph(vertices=data.get("vertices", []))
    for entry in data.get("edges", []):
        if len(entry) != 3:
            raise GraphError(f"malformed edge entry: {entry!r}")
        u, v, d = entry
        graph.add_edge(u, v, float(d))
    return graph


def write_json(graph: SocialGraph, path: PathLike, indent: int = 2) -> None:
    """Write a graph as JSON."""
    Path(path).write_text(json.dumps(graph_to_dict(graph), indent=indent), encoding="utf-8")


def read_json(path: PathLike) -> SocialGraph:
    """Read a graph written by :func:`write_json`."""
    return graph_from_dict(json.loads(Path(path).read_text(encoding="utf-8")))
