"""Weighted, undirected social graph used by every query algorithm.

The paper models a social network as an undirected graph ``G = (V, E)`` whose
edge weights are *social distances*: smaller weight means the two people are
closer.  This module provides :class:`SocialGraph`, a small adjacency-dict
graph purpose-built for the access patterns the SGQ/STGQ algorithms need:

* O(1) neighbour-set lookup (``graph.neighbors(v)`` returns a ``frozenset``),
* O(1) edge-distance lookup,
* cheap induced-subgraph construction (radius graph extraction),
* deterministic iteration order (insertion order), which keeps the
  branch-and-bound search and all experiments reproducible.

``networkx`` is intentionally *not* used on the hot path; conversion helpers
to and from :class:`networkx.Graph` are provided for interoperability and for
cross-checking distances in the test-suite.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, Iterator, List, Mapping, Optional

from ..exceptions import EdgeNotFoundError, GraphError, VertexNotFoundError
from ..types import Vertex, WeightedEdge

__all__ = ["SocialGraph"]


class SocialGraph:
    """An undirected graph with positive social distances on edges.

    Parameters
    ----------
    edges:
        Optional iterable of ``(u, v, distance)`` triples used to initialise
        the graph.  Vertices are created implicitly.
    vertices:
        Optional iterable of vertices to add up-front (useful for isolated
        vertices that have no incident edges).

    Examples
    --------
    >>> g = SocialGraph()
    >>> g.add_edge("alice", "bob", 3.0)
    >>> g.add_edge("bob", "carol", 1.5)
    >>> sorted(g.neighbors("bob"))
    ['alice', 'carol']
    >>> g.distance("alice", "bob")
    3.0
    """

    __slots__ = ("_adj", "_dist", "_graph_version")

    def __init__(
        self,
        edges: Optional[Iterable[WeightedEdge]] = None,
        vertices: Optional[Iterable[Vertex]] = None,
    ) -> None:
        # _adj maps vertex -> dict of neighbour -> distance.  The inner dict
        # doubles as the neighbour set and keeps insertion order.
        self._adj: Dict[Vertex, Dict[Vertex, float]] = {}
        # _dist caches frozenset neighbour views; invalidated on mutation.
        self._dist: Dict[Vertex, FrozenSet[Vertex]] = {}
        self._graph_version = 0
        if vertices is not None:
            for v in vertices:
                self.add_vertex(v)
        if edges is not None:
            for u, v, d in edges:
                self.add_edge(u, v, d)
        # The version counts *mutations since construction*: two graphs built
        # from the same edge list start at 0 regardless of how many add_edge
        # calls the constructor issued, so identically-seeded replicas agree.
        self._graph_version = 0

    # ------------------------------------------------------------------
    # construction / mutation
    # ------------------------------------------------------------------
    @property
    def graph_version(self) -> int:
        """Monotonic counter bumped by every mutating call since construction."""
        return self._graph_version

    def add_vertex(self, v: Vertex) -> None:
        """Add ``v`` to the graph (no-op if already present)."""
        if v not in self._adj:
            self._adj[v] = {}
            self._dist.pop(v, None)
            self._graph_version += 1

    def add_edge(self, u: Vertex, v: Vertex, distance: float) -> None:
        """Add (or update) the undirected edge ``{u, v}`` with ``distance``.

        Raises
        ------
        GraphError
            If ``u == v`` (self-loops carry no meaning for social distance)
            or if ``distance`` is not a positive, finite number.
        """
        if u == v:
            raise GraphError(f"self-loop on {u!r} is not allowed")
        dist = float(distance)
        if not dist > 0 or dist != dist or dist == float("inf"):
            raise GraphError(f"edge distance must be positive and finite, got {distance!r}")
        # Implicit vertex creation does not bump the version separately: one
        # mutating call advances graph_version by exactly one.
        self._adj.setdefault(u, {})
        self._adj.setdefault(v, {})
        self._adj[u][v] = dist
        self._adj[v][u] = dist
        self._dist.pop(u, None)
        self._dist.pop(v, None)
        self._graph_version += 1

    def remove_edge(self, u: Vertex, v: Vertex) -> None:
        """Remove the edge ``{u, v}``; raise :class:`EdgeNotFoundError` if absent."""
        if u not in self._adj or v not in self._adj[u]:
            raise EdgeNotFoundError(u, v)
        del self._adj[u][v]
        del self._adj[v][u]
        self._dist.pop(u, None)
        self._dist.pop(v, None)
        self._graph_version += 1

    def remove_vertex(self, v: Vertex) -> None:
        """Remove ``v`` and all incident edges."""
        if v not in self._adj:
            raise VertexNotFoundError(v)
        for u in list(self._adj[v]):
            del self._adj[u][v]
            self._dist.pop(u, None)
        del self._adj[v]
        self._dist.pop(v, None)
        self._graph_version += 1

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def __contains__(self, v: Vertex) -> bool:
        return v in self._adj

    def __len__(self) -> int:
        return len(self._adj)

    def __iter__(self) -> Iterator[Vertex]:
        return iter(self._adj)

    @property
    def vertex_count(self) -> int:
        """Number of vertices."""
        return len(self._adj)

    @property
    def edge_count(self) -> int:
        """Number of undirected edges."""
        return sum(len(nbrs) for nbrs in self._adj.values()) // 2

    def vertices(self) -> List[Vertex]:
        """Return all vertices in insertion order."""
        return list(self._adj)

    def edges(self) -> List[WeightedEdge]:
        """Return all edges as ``(u, v, distance)`` triples (each edge once)."""
        seen = set()
        result: List[WeightedEdge] = []
        for u, nbrs in self._adj.items():
            for v, d in nbrs.items():
                # Use a frozenset key to deduplicate regardless of id ordering.
                fkey = frozenset((u, v))
                if fkey in seen:
                    continue
                seen.add(fkey)
                result.append((u, v, d))
        return result

    def has_edge(self, u: Vertex, v: Vertex) -> bool:
        """Return ``True`` when the undirected edge ``{u, v}`` exists."""
        return u in self._adj and v in self._adj[u]

    def neighbors(self, v: Vertex) -> FrozenSet[Vertex]:
        """Return the neighbour set of ``v`` as a cached ``frozenset``."""
        if v not in self._adj:
            raise VertexNotFoundError(v)
        cached = self._dist.get(v)
        if cached is None:
            cached = frozenset(self._adj[v])
            self._dist[v] = cached
        return cached

    def adjacency(self, v: Vertex) -> Mapping[Vertex, float]:
        """Return the neighbour -> distance mapping for ``v`` (read-only view)."""
        if v not in self._adj:
            raise VertexNotFoundError(v)
        return dict(self._adj[v])

    def degree(self, v: Vertex) -> int:
        """Return the number of neighbours of ``v``."""
        if v not in self._adj:
            raise VertexNotFoundError(v)
        return len(self._adj[v])

    def distance(self, u: Vertex, v: Vertex) -> float:
        """Return the social distance of the edge ``{u, v}``.

        Raises :class:`EdgeNotFoundError` when the edge does not exist.
        """
        if u not in self._adj or v not in self._adj[u]:
            raise EdgeNotFoundError(u, v)
        return self._adj[u][v]

    def total_distance(self) -> float:
        """Return the sum of distances over all edges."""
        return sum(d for _, _, d in self.edges())

    # ------------------------------------------------------------------
    # derived graphs
    # ------------------------------------------------------------------
    def subgraph(self, vertices: Iterable[Vertex]) -> "SocialGraph":
        """Return the subgraph induced by ``vertices``.

        Vertices not present in the graph are ignored, which makes the
        operation convenient when filtering candidate sets.
        """
        keep = [v for v in vertices if v in self._adj]
        keep_set = set(keep)
        sub = SocialGraph(vertices=keep)
        for u in keep:
            for v, d in self._adj[u].items():
                if v in keep_set and not sub.has_edge(u, v):
                    sub.add_edge(u, v, d)
        return sub

    def copy(self) -> "SocialGraph":
        """Return a deep copy of the graph."""
        clone = SocialGraph(vertices=self._adj)
        for u, v, d in self.edges():
            clone.add_edge(u, v, d)
        return clone

    # ------------------------------------------------------------------
    # interoperability
    # ------------------------------------------------------------------
    def to_networkx(self):
        """Convert to a :class:`networkx.Graph` with ``weight`` edge attributes."""
        import networkx as nx

        g = nx.Graph()
        g.add_nodes_from(self._adj)
        for u, v, d in self.edges():
            g.add_edge(u, v, weight=d)
        return g

    @classmethod
    def from_networkx(cls, graph, weight: str = "weight", default: float = 1.0) -> "SocialGraph":
        """Build a :class:`SocialGraph` from a networkx graph.

        Parameters
        ----------
        graph:
            Any networkx graph; edge direction and multi-edges are collapsed.
        weight:
            Edge attribute carrying the social distance.
        default:
            Distance used for edges missing the ``weight`` attribute.
        """
        sg = cls(vertices=graph.nodes())
        for u, v, data in graph.edges(data=True):
            if u == v:
                continue
            sg.add_edge(u, v, float(data.get(weight, default)))
        return sg

    # ------------------------------------------------------------------
    # dunder helpers
    # ------------------------------------------------------------------
    def __eq__(self, other: object) -> bool:
        if not isinstance(other, SocialGraph):
            return NotImplemented
        if set(self._adj) != set(other._adj):
            return False
        for u, nbrs in self._adj.items():
            if nbrs != other._adj[u]:
                return False
        return True

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"SocialGraph(vertices={self.vertex_count}, edges={self.edge_count})"
