"""Radius graph extraction (paper §3.2.1).

SGSelect's first step derives the *feasible graph* ``GF = (VF, EF)`` from the
initiator's social graph: every vertex reachable from ``q`` via a path of at
most ``s`` edges is kept, its adopted social distance is its ``s``-edge
minimum distance ``d^s_{v,q}``, and the edge set is the subgraph induced by
``VF``.  Everything else can never satisfy the social radius constraint and
is discarded before the branch-and-bound search begins.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Mapping, Optional, Tuple

from ..exceptions import VertexNotFoundError
from ..types import Vertex
from .csr import CSRGraph, csr_available
from .distance import bounded_distances
from .social_graph import SocialGraph
from .substrate import GraphSubstrate

try:  # numpy is an optional dependency (the [speed] extra)
    import numpy as np
except ImportError:  # pragma: no cover - exercised by the no-numpy CI job
    np = None

__all__ = ["FeasibleGraph", "extract_feasible_graph", "extract_query_forms"]


@dataclass(frozen=True)
class FeasibleGraph:
    """The feasible graph ``GF`` plus the adopted social distances.

    Attributes
    ----------
    graph:
        The induced subgraph over the feasible vertices (including ``q``).
    source:
        The initiator ``q``.
    distances:
        Mapping from every feasible vertex to its adopted social distance
        ``d_{v,q} = d^s_{v,q}``; the source maps to ``0.0``.
    radius:
        The social radius constraint ``s`` used for extraction.
    """

    graph: SocialGraph
    source: Vertex
    distances: Mapping[Vertex, float]
    radius: int

    @property
    def candidates(self) -> List[Vertex]:
        """Candidate attendees: feasible vertices excluding the initiator,
        ordered by ascending social distance (ties broken by insertion order).

        This is exactly the access order SGSelect starts from.  The sorted
        list is computed once and cached; callers receive a fresh copy so the
        cache cannot be mutated from outside.
        """
        cached = getattr(self, "_candidates_cache", None)
        if cached is None:
            others = [v for v in self.graph if v != self.source]
            others.sort(key=lambda v: self.distances[v])
            cached = tuple(others)
            # The dataclass is frozen; bypass the guard for the private cache.
            object.__setattr__(self, "_candidates_cache", cached)
        return list(cached)

    def distance(self, v: Vertex) -> float:
        """Adopted social distance ``d_{v,q}`` of a feasible vertex."""
        try:
            return self.distances[v]
        except KeyError:
            raise VertexNotFoundError(v) from None

    def neighbors(self, v: Vertex) -> FrozenSet[Vertex]:
        """Neighbour set of ``v`` inside the feasible graph."""
        return self.graph.neighbors(v)

    def __contains__(self, v: Vertex) -> bool:
        return v in self.graph

    def __len__(self) -> int:
        return len(self.graph)


def _canonical_order(reached: List[Vertex]) -> List[Vertex]:
    """Substrate-independent feasible-vertex order: ascending vertex id.

    ``bounded_distances`` returns vertices in discovery order, which depends
    on the substrate's adjacency iteration order (edge-insertion for the
    dict graph, sorted rows for CSR).  Sorting by id makes the feasible
    graph — and therefore the candidate tie-breaks, the compiled forms and
    every query result — byte-identical across substrates.  Graphs mixing
    unorderable vertex types keep the (deterministic) discovery order.
    """
    try:
        return sorted(reached)
    except TypeError:
        return reached


def extract_feasible_graph(
    graph: GraphSubstrate, source: Vertex, radius: int
) -> FeasibleGraph:
    """Extract the feasible graph ``GF`` for initiator ``source`` and radius ``radius``.

    Parameters
    ----------
    graph:
        The full social graph ``G`` — any
        :class:`~repro.graph.substrate.GraphSubstrate` (adjacency-dict or
        CSR; the CSR substrate's bounded distances and induced subgraph are
        built straight from its row slices).
    source:
        The activity initiator ``q``; must be a vertex of ``graph``.
    radius:
        The social radius constraint ``s`` (maximum number of edges on the
        path from ``q``).  Must be at least 1.

    Returns
    -------
    FeasibleGraph
        The induced subgraph over ``{v : d^s_{v,q} < inf}`` together with the
        adopted distances.  Feasible vertices are ordered by ascending id,
        so the result is identical whichever substrate backed the graph.

    Notes
    -----
    The paper stresses that the *minimum-edge* path and the *minimum-distance
    path with at most s edges* can differ; the extraction therefore uses the
    bounded Bellman–Ford recurrence from :mod:`repro.graph.distance` rather
    than plain BFS distances.
    """
    feasible, _, _ = extract_query_forms(graph, source, radius, kernel="reference")
    return feasible


def extract_query_forms(
    graph: GraphSubstrate, source: Vertex, radius: int, kernel: str = "reference"
) -> Tuple[FeasibleGraph, Optional[object], Optional[object]]:
    """Extract every query-time form of the ego network in one pass.

    Returns ``(feasible, compiled, packed)`` — the :class:`FeasibleGraph`
    always, the :class:`~repro.graph.compiled.CompiledFeasibleGraph` when
    ``kernel`` is not ``"reference"``, and the
    :class:`~repro.graph.packed.PackedAdjacency` when ``kernel`` is
    ``"numpy"`` (``None`` otherwise) — the exact triple a
    :class:`~repro.service.QueryService` cache entry holds.

    On a CSR substrate the whole pipeline is array-granular: one vectorised
    bounded-Bellman–Ford (:meth:`CSRGraph._bounded_rows`), then a single
    gather of the feasible rows' slices feeds the induced adjacency dict,
    the dense-id bitmasks *and* the packed ``uint64`` matrix — no
    ``subgraph()`` double-scan, no per-vertex ``neighbors()`` rescans in
    ``CompiledFeasibleGraph``.  Every other substrate takes the generic
    path (``bounded_distances`` → ``subgraph`` → compile → pack).  Both
    lanes produce byte-identical forms; the substrate-equivalence suite
    pins this.
    """
    if source not in graph:
        raise VertexNotFoundError(source)
    if radius < 1:
        raise ValueError(f"radius must be >= 1, got {radius}")
    want_compiled = kernel != "reference"
    want_packed = kernel == "numpy"

    if csr_available() and isinstance(graph, CSRGraph):
        return _extract_query_forms_csr(graph, source, radius, want_compiled, want_packed)

    dist = bounded_distances(graph, source, radius)
    feasible_vertices = _canonical_order(list(dist))
    sub = graph.subgraph(feasible_vertices)
    adopted: Dict[Vertex, float] = {v: dist[v] for v in feasible_vertices}
    feasible = FeasibleGraph(graph=sub, source=source, distances=adopted, radius=radius)
    compiled = packed = None
    if want_compiled:
        from .compiled import compile_feasible_graph

        compiled = compile_feasible_graph(feasible)
        if want_packed:
            from .packed import pack_adjacency

            packed = pack_adjacency(compiled)
    return feasible, compiled, packed


def _extract_query_forms_csr(
    graph: CSRGraph, source: Vertex, radius: int, want_compiled: bool, want_packed: bool
) -> Tuple[FeasibleGraph, Optional[object], Optional[object]]:
    """CSR fast lane: build all forms from one gather of the feasible rows."""
    src_row = graph._row(source)
    order, dist_arr = graph._bounded_rows(src_row, radius)
    # Canonical feasible order is ascending vertex id; labels are sorted, so
    # ascending row order *is* ascending id order on either id scheme.
    rows = np.sort(order)
    labels = graph._labels
    keys = rows if labels is None else labels[rows]
    key_list = keys.tolist()
    adopted: Dict[Vertex, float] = dict(zip(key_list, dist_arr[rows].tolist()))

    # Access order: candidates by ascending adopted distance, ties by
    # ascending id — a stable argsort over the id-ordered candidate rows,
    # matching FeasibleGraph.candidates exactly.
    cand_rows = rows[rows != src_row]
    perm = np.argsort(dist_arr[cand_rows], kind="stable")
    universe_rows = np.concatenate((np.asarray([src_row], dtype=rows.dtype), cand_rows[perm]))
    m = int(universe_rows.size)
    universe_keys = universe_rows if labels is None else labels[universe_rows]
    key_of_uid = universe_keys.tolist()

    # One gather of every feasible row's slice feeds the dict adjacency,
    # the int bitmasks and the packed matrix alike.
    pos, counts = graph._gather_rows(universe_rows)
    sub = SocialGraph(vertices=key_list)
    mat = None
    adj_ints: Optional[Tuple[int, ...]] = None
    if want_compiled or want_packed:
        from .packed import words_for

        words = words_for(m)
        mat = np.zeros((m, words), dtype=np.uint64)
    if pos.size:
        targets = graph._indices[pos].astype(np.int64, copy=False)
        uid_of_row = np.full(graph._n, -1, dtype=np.int64)
        uid_of_row[universe_rows] = np.arange(m, dtype=np.int64)
        tgt_uids = uid_of_row[targets]
        keep = tgt_uids >= 0
        src_uids = np.repeat(np.arange(m, dtype=np.int64), counts)[keep]
        tgt_uids = tgt_uids[keep]
        src_keys = np.repeat(universe_keys, counts)[keep]
        tgt_keys = targets[keep] if labels is None else labels[targets[keep]]
        dists = graph._weights[pos][keep]
        adjd = sub._adj
        for u, v, d in zip(src_keys.tolist(), tgt_keys.tolist(), dists.tolist()):
            adjd[u][v] = d
        if mat is not None:
            bits = np.left_shift(np.uint64(1), (tgt_uids & 63).astype(np.uint64))
            np.bitwise_or.at(mat, (src_uids, tgt_uids >> 6), bits)

    feasible = FeasibleGraph(graph=sub, source=source, distances=adopted, radius=radius)
    object.__setattr__(feasible, "_candidates_cache", tuple(key_of_uid[1:]))
    compiled = packed = None
    if want_compiled:
        from .compiled import CompiledFeasibleGraph

        raw = np.ascontiguousarray(mat, dtype="<u8").tobytes()
        stride = mat.shape[1] * 8
        adj_ints = tuple(
            int.from_bytes(raw[i * stride : (i + 1) * stride], "little") for i in range(m)
        )
        compiled = CompiledFeasibleGraph.from_parts(
            source,
            tuple(key_of_uid),
            adj_ints,
            tuple(dist_arr[universe_rows].tolist()),
        )
        if want_packed:
            from .packed import PackedAdjacency

            packed = PackedAdjacency.from_rows(mat)
    return feasible, compiled, packed
