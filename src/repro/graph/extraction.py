"""Radius graph extraction (paper §3.2.1).

SGSelect's first step derives the *feasible graph* ``GF = (VF, EF)`` from the
initiator's social graph: every vertex reachable from ``q`` via a path of at
most ``s`` edges is kept, its adopted social distance is its ``s``-edge
minimum distance ``d^s_{v,q}``, and the edge set is the subgraph induced by
``VF``.  Everything else can never satisfy the social radius constraint and
is discarded before the branch-and-bound search begins.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Mapping

from ..exceptions import VertexNotFoundError
from ..types import Vertex
from .distance import bounded_distances
from .social_graph import SocialGraph
from .substrate import GraphSubstrate

__all__ = ["FeasibleGraph", "extract_feasible_graph"]


@dataclass(frozen=True)
class FeasibleGraph:
    """The feasible graph ``GF`` plus the adopted social distances.

    Attributes
    ----------
    graph:
        The induced subgraph over the feasible vertices (including ``q``).
    source:
        The initiator ``q``.
    distances:
        Mapping from every feasible vertex to its adopted social distance
        ``d_{v,q} = d^s_{v,q}``; the source maps to ``0.0``.
    radius:
        The social radius constraint ``s`` used for extraction.
    """

    graph: SocialGraph
    source: Vertex
    distances: Mapping[Vertex, float]
    radius: int

    @property
    def candidates(self) -> List[Vertex]:
        """Candidate attendees: feasible vertices excluding the initiator,
        ordered by ascending social distance (ties broken by insertion order).

        This is exactly the access order SGSelect starts from.  The sorted
        list is computed once and cached; callers receive a fresh copy so the
        cache cannot be mutated from outside.
        """
        cached = getattr(self, "_candidates_cache", None)
        if cached is None:
            others = [v for v in self.graph if v != self.source]
            others.sort(key=lambda v: self.distances[v])
            cached = tuple(others)
            # The dataclass is frozen; bypass the guard for the private cache.
            object.__setattr__(self, "_candidates_cache", cached)
        return list(cached)

    def distance(self, v: Vertex) -> float:
        """Adopted social distance ``d_{v,q}`` of a feasible vertex."""
        try:
            return self.distances[v]
        except KeyError:
            raise VertexNotFoundError(v) from None

    def neighbors(self, v: Vertex) -> FrozenSet[Vertex]:
        """Neighbour set of ``v`` inside the feasible graph."""
        return self.graph.neighbors(v)

    def __contains__(self, v: Vertex) -> bool:
        return v in self.graph

    def __len__(self) -> int:
        return len(self.graph)


def _canonical_order(reached: List[Vertex]) -> List[Vertex]:
    """Substrate-independent feasible-vertex order: ascending vertex id.

    ``bounded_distances`` returns vertices in discovery order, which depends
    on the substrate's adjacency iteration order (edge-insertion for the
    dict graph, sorted rows for CSR).  Sorting by id makes the feasible
    graph — and therefore the candidate tie-breaks, the compiled forms and
    every query result — byte-identical across substrates.  Graphs mixing
    unorderable vertex types keep the (deterministic) discovery order.
    """
    try:
        return sorted(reached)
    except TypeError:
        return reached


def extract_feasible_graph(
    graph: GraphSubstrate, source: Vertex, radius: int
) -> FeasibleGraph:
    """Extract the feasible graph ``GF`` for initiator ``source`` and radius ``radius``.

    Parameters
    ----------
    graph:
        The full social graph ``G`` — any
        :class:`~repro.graph.substrate.GraphSubstrate` (adjacency-dict or
        CSR; the CSR substrate's bounded distances and induced subgraph are
        built straight from its row slices).
    source:
        The activity initiator ``q``; must be a vertex of ``graph``.
    radius:
        The social radius constraint ``s`` (maximum number of edges on the
        path from ``q``).  Must be at least 1.

    Returns
    -------
    FeasibleGraph
        The induced subgraph over ``{v : d^s_{v,q} < inf}`` together with the
        adopted distances.  Feasible vertices are ordered by ascending id,
        so the result is identical whichever substrate backed the graph.

    Notes
    -----
    The paper stresses that the *minimum-edge* path and the *minimum-distance
    path with at most s edges* can differ; the extraction therefore uses the
    bounded Bellman–Ford recurrence from :mod:`repro.graph.distance` rather
    than plain BFS distances.
    """
    if source not in graph:
        raise VertexNotFoundError(source)
    if radius < 1:
        raise ValueError(f"radius must be >= 1, got {radius}")

    dist = bounded_distances(graph, source, radius)
    feasible = _canonical_order(list(dist))
    sub = graph.subgraph(feasible)
    adopted: Dict[Vertex, float] = {v: dist[v] for v in feasible}
    return FeasibleGraph(graph=sub, source=source, distances=adopted, radius=radius)
