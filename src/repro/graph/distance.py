"""Edge-bounded shortest distances (Definition 1 of the paper).

The social radius constraint of SGQ/STGQ is expressed in *number of edges*:
a candidate attendee must be reachable from the initiator ``q`` within at
most ``s`` edges, and their social distance is the length of the
minimum-distance path *among paths with at most s edges*.  The paper calls
this the *i-edge minimum distance*:

    d^i_{v,q} = min_{u in N_v} { d^{i-1}_{v,q},  d^{i-1}_{u,q} + c_{u,v} }

with ``d^0_{q,q} = 0`` and ``d^0_{v,q} = inf`` otherwise.  This is exactly a
Bellman–Ford recurrence truncated to ``s`` relaxation rounds.

This module implements the recurrence, exposes the per-round table (useful
for tests and for the IP model's path constraints), and provides a
cross-check helper built on explicit path enumeration for tiny graphs.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Tuple

from ..exceptions import VertexNotFoundError
from ..types import Vertex
from .substrate import GraphSubstrate

__all__ = [
    "bounded_distances",
    "bounded_distance_table",
    "bounded_shortest_path",
    "hop_counts",
]

INF = math.inf


def bounded_distances(
    graph: GraphSubstrate, source: Vertex, max_edges: int
) -> Dict[Vertex, float]:
    """Compute ``d^s_{v, source}`` for every vertex within the bound.

    Parameters
    ----------
    graph:
        Any :class:`~repro.graph.substrate.GraphSubstrate`.  Substrates
        providing their own ``bounded_distances(source, max_edges)`` fast
        path (the CSR substrate walks raw row slices) are dispatched to.
    source:
        The activity initiator ``q``.
    max_edges:
        The social radius constraint ``s`` (maximum number of edges on the
        path).  Must be a positive integer.

    Returns
    -------
    dict
        Mapping from every vertex *reachable within* ``max_edges`` edges to
        its ``s``-edge minimum distance from ``source`` (the source maps to
        ``0.0``), in deterministic discovery order.  Vertices outside the
        bound are simply absent — materialising an entry per graph vertex
        would cost O(|V|) per query, which melts at 10⁶ vertices when the
        ego network has a few hundred.  Use ``dist.get(v, math.inf)`` when
        an infinite default is wanted.
    """
    fast = getattr(graph, "bounded_distances", None)
    if fast is not None:
        return fast(source, max_edges)
    return _generic_bounded_distances(graph, source, max_edges)


def _generic_bounded_distances(
    graph: GraphSubstrate, source: Vertex, max_edges: int
) -> Dict[Vertex, float]:
    """Substrate-agnostic frontier Bellman–Ford over ``graph.adjacency``.

    Kept separate from the public dispatcher so substrate fast paths (the
    overlay's, notably) can fall back here for the cases they do not
    vectorize without re-entering :func:`bounded_distances` and recursing
    into their own ``bounded_distances`` attribute.
    """
    if source not in graph:
        raise VertexNotFoundError(source)
    if max_edges < 1:
        raise ValueError(f"max_edges must be >= 1, got {max_edges}")

    dist: Dict[Vertex, float] = {source: 0.0}
    # Frontier-based Bellman-Ford: only vertices whose distance changed in
    # the previous round can improve their neighbours in this round.  The
    # frontier is an ordered list (not a set) so the discovery order — and
    # with it the returned dict's key order — is deterministic even for
    # vertex types with salted hashes (str under PYTHONHASHSEED).
    frontier = [source]
    for _ in range(max_edges):
        if not frontier:
            break
        updates: Dict[Vertex, float] = {}
        for u in frontier:
            du = dist[u]
            for v, c in graph.adjacency(u).items():
                nd = du + c
                if nd < dist.get(v, INF) and nd < updates.get(v, INF):
                    updates[v] = nd
        frontier = []
        for v, nd in updates.items():
            if nd < dist.get(v, INF):
                dist[v] = nd
                frontier.append(v)
    return dist


def bounded_distance_table(
    graph: GraphSubstrate, source: Vertex, max_edges: int
) -> List[Dict[Vertex, float]]:
    """Return the full DP table ``[d^0, d^1, ..., d^s]``.

    ``result[i][v]`` is the minimum distance of a path from ``source`` to
    ``v`` using at most ``i`` edges.  The table is primarily useful for unit
    tests and for diagnosing how the feasible graph shrinks with ``s``.
    """
    if source not in graph:
        raise VertexNotFoundError(source)
    if max_edges < 0:
        raise ValueError(f"max_edges must be >= 0, got {max_edges}")

    d0: Dict[Vertex, float] = {v: INF for v in graph}
    d0[source] = 0.0
    table = [d0]
    for _ in range(max_edges):
        prev = table[-1]
        cur = dict(prev)
        for v in graph:
            best = prev[v]
            for u, c in graph.adjacency(v).items():
                cand = prev[u] + c
                if cand < best:
                    best = cand
            cur[v] = best
        table.append(cur)
    return table


def bounded_shortest_path(
    graph: GraphSubstrate, source: Vertex, target: Vertex, max_edges: int
) -> Optional[Tuple[List[Vertex], float]]:
    """Return a minimum-distance path from ``source`` to ``target`` with at
    most ``max_edges`` edges, or ``None`` when no such path exists.

    The path is reconstructed from the DP table by walking backwards through
    the rounds; ties are broken deterministically by vertex insertion order.
    """
    table = bounded_distance_table(graph, source, max_edges)
    best_dist = table[max_edges].get(target, INF)
    if best_dist == INF:
        return None
    # Find the smallest round i at which the best distance is achieved.
    rounds = max_edges
    while rounds > 0 and table[rounds - 1][target] == best_dist:
        rounds -= 1
    path = [target]
    current = target
    i = rounds
    while current != source:
        prev_round = i - 1
        found = False
        for u, c in graph.adjacency(current).items():
            if table[prev_round][u] + c == table[i][current]:
                path.append(u)
                current = u
                i = prev_round
                found = True
                break
        if not found:
            # The remaining distance must already have been achievable with
            # fewer edges; drop a round and retry.
            i -= 1
            if i < 0:  # pragma: no cover - defensive, should be unreachable
                return None
    path.reverse()
    return path, best_dist


def hop_counts(graph: GraphSubstrate, source: Vertex, max_edges: Optional[int] = None) -> Dict[Vertex, int]:
    """Breadth-first hop counts from ``source``.

    Returns the number of edges on a minimum-*edge* path (not minimum
    distance), for reached vertices only.  Useful for dataset statistics
    and for sanity-checking the radius extraction: every vertex with
    ``hop_counts[v] <= s`` must appear in the feasible graph, though its
    adopted distance may come from a different path.  Substrates providing
    their own ``hop_counts`` fast path are dispatched to.

    ``max_edges`` may be ``None`` (unlimited) or a non-negative integer —
    ``0`` reaches only the source itself; negative values raise
    ``ValueError`` on every substrate.
    """
    fast = getattr(graph, "hop_counts", None)
    if fast is not None:
        return fast(source, max_edges)
    return _generic_hop_counts(graph, source, max_edges)


def _generic_hop_counts(
    graph: GraphSubstrate, source: Vertex, max_edges: Optional[int] = None
) -> Dict[Vertex, int]:
    """Substrate-agnostic BFS hop counts (overlay fallback, see above)."""
    if source not in graph:
        raise VertexNotFoundError(source)
    if max_edges is not None and max_edges < 0:
        raise ValueError(f"max_edges must be >= 0, got {max_edges}")
    hops = {source: 0}
    frontier = [source]
    depth = 0
    while frontier and (max_edges is None or depth < max_edges):
        depth += 1
        nxt = []
        for u in frontier:
            for v in graph.neighbors(u):
                if v not in hops:
                    hops[v] = depth
                    nxt.append(v)
        frontier = nxt
    return hops
