"""Out-of-core CSR graph substrate backed by a single ``.stgq`` file.

:class:`CSRGraph` re-encodes the adjacency-dict :class:`SocialGraph` into
the classic compressed-sparse-row layout — ``indptr`` (``n + 1`` row
offsets), ``indices`` (neighbour rows, sorted within each row) and
``weights`` (social distances), one entry per edge direction — tuned to the
only access pattern the query algorithms have: "give me the neighbourhood
of ``v`` with its distances".  Rows are ordered by ascending vertex id, so
a row slice *is* the sorted neighbour list and membership tests are binary
searches.

The payoff is operational, not just asymptotic: the three arrays persist
into one binary ``.stgq`` file (magic + JSON header + 64-byte-aligned raw
array bytes) that workers open with ``np.memmap(..., mode="r")``.  N
process or remote workers then share a single page-cache copy of the
adjacency, and shipping a graph over pickle (process-pool initargs, cache
invalidation broadcasts) degenerates to shipping *path + version hash* —
see :meth:`CSRGraph.__reduce__`.

Requires numpy; import stays safe without it (mirroring
:mod:`repro.graph.packed`) and :func:`csr_available` gates every caller.
"""

from __future__ import annotations

import hashlib
import json
import os
import struct
from pathlib import Path
from typing import Dict, FrozenSet, Iterator, List, Mapping, Optional, Union

from ..exceptions import EdgeNotFoundError, GraphError, VertexNotFoundError
from ..types import Vertex, WeightedEdge
from .social_graph import SocialGraph
from .substrate import GraphSubstrate

try:  # numpy is an optional dependency (the [speed] extra)
    import numpy as np
except ImportError:  # pragma: no cover - exercised by the no-numpy CI job
    np = None

__all__ = [
    "CSRGraph",
    "csr_available",
    "pack_graph",
    "load_stgq",
    "inspect_stgq",
    "STGQ_MAGIC",
    "STGQ_FORMAT",
    "STGQ_FORMAT_QUANTIZED",
]

PathLike = Union[str, Path]

INF = float("inf")

#: Leading magic bytes of a ``.stgq`` substrate file.
STGQ_MAGIC = b"STGQCSR1"

#: On-disk format revision (bumped on incompatible layout changes).
STGQ_FORMAT = 1

#: Format revision of weight-quantised files (``stgq pack --quantize``):
#: the ``weights`` array is stored as int32 against a ``weight_scale``
#: header field instead of float64, halving the dominant array on disk.
#: Plain files keep writing format 1, so older readers only reject files
#: that actually use the new encoding.
STGQ_FORMAT_QUANTIZED = 2

_SUPPORTED_FORMATS = (STGQ_FORMAT, STGQ_FORMAT_QUANTIZED)

#: Quantisation grid: weights map to ``round(w / scale)`` with
#: ``scale = max_weight / _QUANT_MAX``, so the largest weight uses the full
#: int32 range and the worst-case relative error is ~2**-31.
_QUANT_MAX = 2**31 - 1

#: Array payloads start on this alignment so memory-mapped loads are
#: page/vector friendly.
_ALIGN = 64

_HEADER_LEN = struct.Struct("<I")

#: Upper bound on the JSON header; a corrupt length prefix must not make
#: a loader allocate gigabytes.
_MAX_HEADER_BYTES = 1 << 20


def csr_available() -> bool:
    """True when the CSR substrate can be used (numpy importable)."""
    return np is not None


def _require_numpy() -> None:
    if np is None:
        raise GraphError(
            "the CSR graph substrate requires numpy; install the [speed] extra"
        )


def _is_int_id(v: object) -> bool:
    return isinstance(v, int) and not isinstance(v, bool)


class CSRGraph:
    """Immutable CSR adjacency over integer vertex ids.

    Implements the same read surface as :class:`SocialGraph` (the
    :class:`~repro.graph.substrate.GraphSubstrate` protocol) plus fast-path
    ``bounded_distances``/``hop_counts`` methods the generic helpers in
    :mod:`repro.graph.distance` dispatch to.

    Construction goes through the classmethods — :meth:`from_social_graph`,
    :meth:`from_edge_arrays` or :func:`load_stgq`; the constructor only
    validates pre-built arrays.

    Parameters
    ----------
    indptr, indices, weights:
        CSR arrays: ``indptr`` has ``n + 1`` entries; ``indices[indptr[r]:
        indptr[r + 1]]`` are the neighbour *rows* of row ``r`` in ascending
        order, ``weights`` the matching distances.  Every undirected edge
        appears once per direction.
    labels:
        Optional sorted int64 array mapping row -> vertex id.  ``None``
        means identity ids ``0..n-1`` (the common case for generated
        datasets), which loads without any Python-side id table.
    path, version:
        Set by :func:`load_stgq`/:meth:`save`: the backing ``.stgq`` file
        and its content hash.  A path-backed graph pickles as *path +
        version* instead of array payloads.
    """

    __slots__ = ("_indptr", "_indices", "_weights", "_labels", "_n", "_path", "_version")

    def __init__(
        self,
        indptr,
        indices,
        weights,
        labels=None,
        path: Optional[str] = None,
        version: Optional[str] = None,
    ) -> None:
        _require_numpy()
        if len(indptr) < 1:
            raise GraphError("indptr must have at least one entry")
        n = len(indptr) - 1
        if len(indices) != len(weights):
            raise GraphError(
                f"indices ({len(indices)}) and weights ({len(weights)}) disagree"
            )
        if int(indptr[0]) != 0 or int(indptr[-1]) != len(indices):
            raise GraphError("indptr does not span the indices array")
        if labels is not None and len(labels) != n:
            raise GraphError(f"labels has {len(labels)} entries for {n} rows")
        self._indptr = indptr
        self._indices = indices
        self._weights = weights
        self._labels = labels
        self._n = n
        self._path = path
        self._version = version

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    @classmethod
    def from_edge_arrays(cls, n: int, u, v, w, labels=None) -> "CSRGraph":
        """Build from undirected edge arrays of *row* endpoints.

        ``u``/``v``/``w`` list every undirected edge exactly once (row ids
        in ``[0, n)``); both directions are materialised here.  Self-loops,
        duplicate edges and non-positive/non-finite weights are rejected
        with :class:`GraphError`, matching :meth:`SocialGraph.add_edge`.
        """
        _require_numpy()
        u = np.asarray(u, dtype=np.int64)
        v = np.asarray(v, dtype=np.int64)
        w = np.asarray(w, dtype=np.float64)
        if not (len(u) == len(v) == len(w)):
            raise GraphError("edge arrays must have equal length")
        if len(u) and (u.min() < 0 or v.min() < 0 or u.max() >= n or v.max() >= n):
            raise GraphError(f"edge endpoint out of range for {n} vertices")
        if np.any(u == v):
            raise GraphError("self-loops are not allowed")
        if len(w) and not (np.all(w > 0) and np.all(np.isfinite(w))):
            raise GraphError("edge distance must be positive and finite")
        lo = np.minimum(u, v)
        hi = np.maximum(u, v)
        codes = lo * np.int64(n) + hi
        if len(np.unique(codes)) != len(codes):
            raise GraphError("duplicate edges in edge arrays")
        src = np.concatenate([u, v])
        dst = np.concatenate([v, u])
        www = np.concatenate([w, w])
        order = np.lexsort((dst, src))
        src, dst, www = src[order], dst[order], www[order]
        indptr = np.zeros(n + 1, dtype=np.int64)
        if len(src):
            np.cumsum(np.bincount(src, minlength=n), out=indptr[1:])
        index_dtype = np.int32 if n <= np.iinfo(np.int32).max else np.int64
        label_array = None
        if labels is not None:
            label_array = np.asarray(labels, dtype=np.int64)
            if len(label_array) > 1 and np.any(np.diff(label_array) <= 0):
                raise GraphError("labels must be strictly increasing")
            if np.array_equal(label_array, np.arange(n, dtype=np.int64)):
                label_array = None  # identity ids need no table
        return cls(indptr, dst.astype(index_dtype), www, label_array)

    @classmethod
    def from_social_graph(cls, graph: SocialGraph) -> "CSRGraph":
        """Re-encode an adjacency-dict graph (integer vertex ids required).

        Rows are ordered by ascending vertex id — the canonical substrate
        order the feasible-graph extraction also uses, which is what makes
        dict and CSR results byte-identical.
        """
        _require_numpy()
        if isinstance(graph, CSRGraph):
            return graph
        ids = graph.vertices()
        for vid in ids:
            if not _is_int_id(vid):
                raise GraphError(
                    f"CSR substrate requires integer vertex ids, got {vid!r}"
                )
        ids.sort()
        n = len(ids)
        row_of = {vid: row for row, vid in enumerate(ids)}
        edge_list = graph.edges()
        u = np.fromiter((row_of[a] for a, _, _ in edge_list), dtype=np.int64, count=len(edge_list))
        v = np.fromiter((row_of[b] for _, b, _ in edge_list), dtype=np.int64, count=len(edge_list))
        w = np.fromiter((d for _, _, d in edge_list), dtype=np.float64, count=len(edge_list))
        return cls.from_edge_arrays(n, u, v, w, labels=ids)

    # ------------------------------------------------------------------
    # id <-> row mapping
    # ------------------------------------------------------------------
    def _row(self, v: Vertex) -> int:
        if not _is_int_id(v):
            raise VertexNotFoundError(v)
        if self._labels is None:
            if 0 <= v < self._n:
                return v
            raise VertexNotFoundError(v)
        i = int(np.searchsorted(self._labels, v))
        if i < self._n and int(self._labels[i]) == v:
            return i
        raise VertexNotFoundError(v)

    def _label(self, row: int) -> int:
        return row if self._labels is None else int(self._labels[row])

    @property
    def identity_ids(self) -> bool:
        """True when vertex ids are exactly ``0..n-1`` (no id table needed)."""
        return self._labels is None

    # ------------------------------------------------------------------
    # GraphSubstrate surface
    # ------------------------------------------------------------------
    def __contains__(self, v: Vertex) -> bool:
        try:
            self._row(v)
        except VertexNotFoundError:
            return False
        return True

    def __len__(self) -> int:
        return self._n

    def __iter__(self) -> Iterator[Vertex]:
        if self._labels is None:
            return iter(range(self._n))
        return iter(int(x) for x in self._labels)

    @property
    def vertex_count(self) -> int:
        """Number of vertices."""
        return self._n

    @property
    def edge_count(self) -> int:
        """Number of undirected edges."""
        return len(self._indices) // 2

    @property
    def nbytes(self) -> int:
        """Total bytes of the CSR arrays (the cost one full copy would pay)."""
        total = self._indptr.nbytes + self._indices.nbytes + self._weights.nbytes
        if self._labels is not None:
            total += self._labels.nbytes
        return total

    @property
    def path(self) -> Optional[str]:
        """Backing ``.stgq`` file, when this graph was loaded from/saved to one."""
        return self._path

    @property
    def version(self) -> str:
        """Content hash of the substrate (16 hex chars); computed lazily."""
        if self._version is None:
            self._version = _compute_version(
                self._indptr, self._indices, self._weights, self._labels
            )
        return self._version

    def vertices(self) -> List[Vertex]:
        """All vertex ids in ascending order (the substrate's row order)."""
        if self._labels is None:
            return list(range(self._n))
        return self._labels.tolist()

    def edges(self) -> List[WeightedEdge]:
        """All edges as ``(u, v, distance)`` triples (each edge once)."""
        result: List[WeightedEdge] = []
        indptr, indices, weights = self._indptr, self._indices, self._weights
        for row in range(self._n):
            start, end = int(indptr[row]), int(indptr[row + 1])
            for col, dist in zip(indices[start:end].tolist(), weights[start:end].tolist()):
                if col > row:
                    result.append((self._label(row), self._label(col), dist))
        return result

    def has_edge(self, u: Vertex, v: Vertex) -> bool:
        """Return ``True`` when the undirected edge ``{u, v}`` exists."""
        try:
            self._find_edge(u, v)
        except (EdgeNotFoundError, VertexNotFoundError):
            return False
        return True

    def _find_edge(self, u: Vertex, v: Vertex) -> int:
        try:
            ru, rv = self._row(u), self._row(v)
        except VertexNotFoundError:
            raise EdgeNotFoundError(u, v) from None
        start, end = int(self._indptr[ru]), int(self._indptr[ru + 1])
        # Rows are sorted, so edge membership is a binary search.
        pos = start + int(np.searchsorted(self._indices[start:end], rv))
        if pos < end and int(self._indices[pos]) == rv:
            return pos
        raise EdgeNotFoundError(u, v)

    def neighbors(self, v: Vertex) -> FrozenSet[Vertex]:
        """Return the neighbour set of ``v`` as a ``frozenset``."""
        row = self._row(v)
        start, end = int(self._indptr[row]), int(self._indptr[row + 1])
        cols = self._indices[start:end]
        if self._labels is None:
            return frozenset(cols.tolist())
        return frozenset(self._labels[cols].tolist())

    def adjacency(self, v: Vertex) -> Mapping[Vertex, float]:
        """Return the neighbour -> distance mapping for ``v``."""
        row = self._row(v)
        start, end = int(self._indptr[row]), int(self._indptr[row + 1])
        cols = self._indices[start:end]
        if self._labels is not None:
            cols = self._labels[cols]
        return dict(zip(cols.tolist(), self._weights[start:end].tolist()))

    def degree(self, v: Vertex) -> int:
        """Return the number of neighbours of ``v``."""
        row = self._row(v)
        return int(self._indptr[row + 1] - self._indptr[row])

    def distance(self, u: Vertex, v: Vertex) -> float:
        """Return the social distance of the edge ``{u, v}``."""
        return float(self._weights[self._find_edge(u, v)])

    def total_distance(self) -> float:
        """Return the sum of distances over all edges."""
        return float(self._weights.sum()) / 2.0

    def subgraph(self, vertices) -> SocialGraph:
        """Induced subgraph over ``vertices``, materialised as a
        :class:`SocialGraph` built straight from the row slices.

        The feasible graphs the solvers search are tiny ego networks, so
        the induced subgraph is always worth materialising as a dict graph
        — the compiled/packed kernel forms derive from it unchanged.
        Vertices not present in the substrate are ignored, matching
        :meth:`SocialGraph.subgraph`.

        One vectorised gather pulls every kept row's slice at once; because
        the CSR stores both directions of each undirected edge, filling the
        adjacency dict per *directed* kept edge lands the symmetric dict a
        pairwise ``add_edge`` loop would build, minus its per-edge
        ``has_edge`` scans and version bumps.
        """
        keep = [v for v in vertices if v in self]
        sub = SocialGraph(vertices=keep)
        if not keep:
            return sub
        keys = np.asarray(keep, dtype=np.int64)
        if self._labels is None:
            rows = keys
        else:
            rows = np.searchsorted(self._labels, keys)
        in_keep = np.zeros(self._n, dtype=bool)
        in_keep[rows] = True
        pos, counts = self._gather_rows(rows)
        if pos.size == 0:
            return sub
        targets = self._indices[pos]
        mask = in_keep[targets]
        srcs = np.repeat(keys, counts)[mask]
        tgt_rows = targets[mask].astype(np.int64, copy=False)
        tgts = tgt_rows if self._labels is None else self._labels[tgt_rows]
        dists = self._weights[pos][mask]
        adj = sub._adj
        for u, v, d in zip(srcs.tolist(), tgts.tolist(), dists.tolist()):
            adj[u][v] = d
        return sub

    def to_social_graph(self) -> SocialGraph:
        """Materialise the whole substrate as an adjacency-dict graph."""
        return self.subgraph(self.vertices())

    # ------------------------------------------------------------------
    # substrate fast paths (dispatched to by repro.graph.distance)
    # ------------------------------------------------------------------
    def _gather_rows(self, rows):
        """Concatenate the neighbour slices of ``rows`` in one gather.

        Returns ``(pos, counts)`` where ``indices[pos]`` (and
        ``weights[pos]``) is the concatenation of every row's slice in row
        order and ``counts[i]`` is the slice length of ``rows[i]``.  The
        ``np.repeat``-of-offsets + ``arange`` construction replaces the
        per-frontier-vertex ``.tolist()`` / ``int(indptr[...])`` loops the
        first CSR cut paid on every hot path.
        """
        indptr = self._indptr
        starts = indptr[rows]
        counts = indptr[rows + 1] - starts
        total = int(counts.sum())
        if total == 0:
            return np.empty(0, dtype=np.int64), counts
        cum = np.cumsum(counts)
        pos = np.arange(total, dtype=np.int64) + np.repeat(starts - (cum - counts), counts)
        return pos, counts

    def _bounded_rows(self, src_row: int, max_edges: int):
        """Array-frontier Bellman–Ford over *rows*.

        Returns ``(order, dist)``: ``order`` is an int64 array of every row
        reached within ``max_edges`` edges in deterministic discovery order
        (source first, then per level in ascending row id), ``dist`` a
        dense float64 array over all ``n`` rows (``inf`` = unreached).  The
        whole frontier is relaxed at once — gather every frontier row's
        slice, scatter candidate distances with ``np.minimum.at`` — so a
        level costs a handful of numpy calls instead of a Python loop over
        frontier vertices and their edges.

        Equivalence with the scalar recurrence: a round's final
        ``dist[v]`` is the min over the same candidate set either way, and
        the next frontier is exactly the rows whose distance strictly
        improved, so the fixpoint (and the reached set per level) is
        identical; only the *within-level* enumeration order differs, and
        every consumer orders the reached set canonically anyway.
        """
        indices, weights = self._indices, self._weights
        dist = np.full(self._n, INF)
        dist[src_row] = 0.0
        frontier = np.array([src_row], dtype=np.int64)
        chunks = [frontier]
        for _ in range(max_edges):
            pos, counts = self._gather_rows(frontier)
            if pos.size == 0:
                break
            targets = indices[pos].astype(np.int64, copy=False)
            cand = np.repeat(dist[frontier], counts) + weights[pos]
            uniq = np.unique(targets)
            before = dist[uniq].copy()
            np.minimum.at(dist, targets, cand)
            improved = dist[uniq] < before
            if not improved.any():
                break
            frontier = uniq[improved]
            fresh = frontier[np.isinf(before[improved])]
            if fresh.size:
                chunks.append(fresh)
        order = chunks[0] if len(chunks) == 1 else np.concatenate(chunks)
        return order, dist

    def bounded_distances(self, source: Vertex, max_edges: int) -> Dict[Vertex, float]:
        """``s``-edge minimum distances from ``source`` over the row slices.

        Same contract as :func:`repro.graph.distance.bounded_distances`:
        only vertices reachable within ``max_edges`` edges appear, in
        deterministic discovery order.  Vectorised frontier expansion (see
        :meth:`_bounded_rows`); the dense distance array costs one
        ``np.full(n)`` per call, cheap even at 10⁶ rows next to the
        per-edge work it removes.
        """
        src_row = self._row(source)
        if max_edges < 1:
            raise ValueError(f"max_edges must be >= 1, got {max_edges}")
        order, dist = self._bounded_rows(src_row, max_edges)
        dvals = dist[order]
        keys = order if self._labels is None else self._labels[order]
        return dict(zip(keys.tolist(), dvals.tolist()))

    def hop_counts(self, source: Vertex, max_edges: Optional[int] = None) -> Dict[Vertex, int]:
        """BFS hop counts from ``source`` (reached vertices only).

        Vectorised level-synchronous BFS: one gather per level, a dense
        ``seen`` bool array instead of per-vertex dict probes.
        """
        src_row = self._row(source)
        if max_edges is not None and max_edges < 0:
            raise ValueError(f"max_edges must be >= 0, got {max_edges}")
        indices = self._indices
        seen = np.zeros(self._n, dtype=bool)
        seen[src_row] = True
        frontier = np.array([src_row], dtype=np.int64)
        levels = [frontier]
        depth = 0
        while frontier.size and (max_edges is None or depth < max_edges):
            pos, _ = self._gather_rows(frontier)
            if pos.size == 0:
                break
            targets = indices[pos]
            fresh = np.unique(targets[~seen[targets]]).astype(np.int64, copy=False)
            if fresh.size == 0:
                break
            seen[fresh] = True
            depth += 1
            levels.append(fresh)
            frontier = fresh
        labels = self._labels
        hops: Dict[int, int] = {}
        for d, level in enumerate(levels):
            keys = level if labels is None else labels[level]
            for v in keys.tolist():
                hops[v] = d
        return hops

    # ------------------------------------------------------------------
    # persistence & pickling
    # ------------------------------------------------------------------
    def save(self, path: PathLike, quantize: bool = False) -> str:
        """Write the substrate to ``path`` (``.stgq`` format); returns the
        version hash.  The instance becomes path-backed: subsequent pickles
        ship ``(path, version)`` instead of the arrays.

        ``quantize=True`` stores the weights as int32 against a header
        scale factor (format revision ``STGQ_FORMAT_QUANTIZED``), halving
        the dominant on-disk array.  The returned version hashes the
        *dequantised* content — what a loader reconstructs — so it will not
        match this instance's full-precision arrays; the instance therefore
        stays unbound (not path-backed) and callers wanting the file-backed
        graph reload it (see :func:`pack_graph`)."""
        version = _write_stgq(self, path, quantize=quantize)
        if not quantize:
            self._path = str(path)
            self._version = version
        return version

    def __reduce__(self):
        if self._path is not None:
            # Ship path + version, not data: the receiving process opens the
            # file memory-mapped and shares the sender's page cache.
            return (_load_verified, (self._path, self.version))
        labels = None if self._labels is None else np.ascontiguousarray(self._labels)
        return (
            CSRGraph,
            (
                np.ascontiguousarray(self._indptr),
                np.ascontiguousarray(self._indices),
                np.ascontiguousarray(self._weights),
                labels,
            ),
        )

    # ------------------------------------------------------------------
    # dunder helpers
    # ------------------------------------------------------------------
    def __eq__(self, other: object) -> bool:
        if not isinstance(other, (CSRGraph, SocialGraph)):
            return NotImplemented
        mine = self.vertices()
        if set(mine) != set(other.vertices()):
            return False
        return all(dict(self.adjacency(v)) == dict(other.adjacency(v)) for v in mine)

    __hash__ = None  # mutable-graph convention shared with SocialGraph

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        backing = f", path={self._path!r}" if self._path else ""
        return f"CSRGraph(vertices={self._n}, edges={self.edge_count}{backing})"


# ----------------------------------------------------------------------
# .stgq file format
# ----------------------------------------------------------------------
def _compute_version(indptr, indices, weights, labels) -> str:
    digest = hashlib.sha256()
    digest.update(STGQ_MAGIC)
    arrays = [indptr, indices, weights] + ([labels] if labels is not None else [])
    for arr in arrays:
        digest.update(arr.dtype.str.encode("ascii"))
        digest.update(np.ascontiguousarray(arr).tobytes())
    return digest.hexdigest()[:16]


def _array_table(graph: CSRGraph) -> "Dict[str, object]":
    table = {
        "indptr": graph._indptr,
        "indices": graph._indices,
        "weights": graph._weights,
    }
    if graph._labels is not None:
        table["labels"] = graph._labels
    return table


def _quantize_weights(weights):
    """int32 grid + scale for ``weights``; ``(quantised, scale)``.

    The grid pins the largest weight to the full int32 range, so relative
    error is bounded by ~2**-31 — far below anything the solvers' float64
    distance sums can surface.  An empty or all-zero array quantises with
    scale 1.0 (nothing to preserve).
    """
    dense = np.ascontiguousarray(weights, dtype=np.float64)
    peak = float(dense.max()) if len(dense) else 0.0
    scale = peak / _QUANT_MAX if peak > 0 else 1.0
    return np.round(dense / scale).astype(np.int32), scale


def _write_stgq(graph: CSRGraph, path: PathLike, quantize: bool = False) -> str:
    arrays = _array_table(graph)
    extra = {}
    if quantize:
        quantised, scale = _quantize_weights(arrays["weights"])
        arrays["weights"] = quantised
        extra["weight_scale"] = scale
        # The version must hash what a loader reconstructs (the dequantised
        # weights), not the full-precision originals — that keeps
        # ``verify=True``, the pickle-by-reference version pin and a
        # re-save of the loaded graph all self-consistent.
        version = _compute_version(
            graph._indptr,
            graph._indices,
            quantised.astype(np.float64) * scale,
            graph._labels,
        )
    else:
        version = graph.version

    def _layout(header_block: int):
        offset = header_block
        meta = {}
        for name, arr in arrays.items():
            offset = -(-offset // _ALIGN) * _ALIGN
            meta[name] = {"dtype": arr.dtype.str, "shape": [len(arr)], "offset": offset}
            offset += arr.nbytes
        header = {
            "format": STGQ_FORMAT_QUANTIZED if quantize else STGQ_FORMAT,
            "n": graph.vertex_count,
            "m": graph.edge_count,
            "version": version,
            "arrays": meta,
            **extra,
        }
        return json.dumps(header, sort_keys=True).encode("utf-8")

    # The header records absolute array offsets, which depend on the header
    # block's own size: grow the block until the JSON (plus prefix) fits.
    block = 1024
    body = _layout(block)
    while len(body) + len(STGQ_MAGIC) + _HEADER_LEN.size > block:
        block *= 2
        body = _layout(block)

    offsets = json.loads(body)["arrays"]
    with open(path, "wb") as fh:
        fh.write(STGQ_MAGIC)
        fh.write(_HEADER_LEN.pack(len(body)))
        fh.write(body)
        for name, arr in arrays.items():
            fh.seek(offsets[name]["offset"])  # gap bytes read back as zeros
            fh.write(np.ascontiguousarray(arr).tobytes())
    return version


def _read_header(path: PathLike) -> Dict:
    try:
        with open(path, "rb") as fh:
            magic = fh.read(len(STGQ_MAGIC))
            if magic != STGQ_MAGIC:
                raise GraphError(f"{path}: not a .stgq substrate file (bad magic)")
            raw_len = fh.read(_HEADER_LEN.size)
            if len(raw_len) != _HEADER_LEN.size:
                raise GraphError(f"{path}: truncated header")
            (length,) = _HEADER_LEN.unpack(raw_len)
            if length > _MAX_HEADER_BYTES:
                raise GraphError(f"{path}: header length {length} exceeds {_MAX_HEADER_BYTES}")
            body = fh.read(length)
            if len(body) != length:
                raise GraphError(f"{path}: truncated header")
    except OSError as exc:
        raise GraphError(f"cannot read substrate file {path}: {exc}") from exc
    try:
        header = json.loads(body.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise GraphError(f"{path}: malformed substrate header: {exc}") from exc
    if not isinstance(header, dict) or header.get("format") not in _SUPPORTED_FORMATS:
        supported = "/".join(str(f) for f in _SUPPORTED_FORMATS)
        raise GraphError(
            f"{path}: unsupported substrate format {header.get('format')!r} "
            f"(this build reads formats {supported})"
        )
    return header


def load_stgq(path: PathLike, mmap: bool = True, verify: bool = False) -> CSRGraph:
    """Load a ``.stgq`` substrate file.

    Parameters
    ----------
    mmap:
        Open the arrays with ``np.memmap(mode="r")`` (the default) so
        concurrent workers share one page-cache copy; ``False`` reads them
        into private memory instead.
    verify:
        Recompute the content hash and compare it to the header's version
        (guards against torn writes; costs one pass over the file).
    """
    _require_numpy()
    header = _read_header(path)
    file_bytes = os.path.getsize(path)
    arrays = {}
    try:
        meta_table = header["arrays"]
        for name in ("indptr", "indices", "weights", "labels"):
            meta = meta_table.get(name)
            if meta is None:
                if name == "labels":
                    continue
                raise GraphError(f"{path}: substrate header missing array {name!r}")
            dtype = np.dtype(meta["dtype"])
            (count,) = meta["shape"]
            offset = int(meta["offset"])
            if count == 0:
                # memmap rejects zero-length maps, and a zero-count array's
                # aligned offset may sit at (or past) EOF — nothing to read.
                arrays[name] = np.empty(0, dtype=dtype)
                continue
            if offset + count * dtype.itemsize > file_bytes:
                raise GraphError(f"{path}: truncated substrate file (array {name!r})")
            if mmap:
                arrays[name] = np.memmap(path, dtype=dtype, mode="r", offset=offset, shape=(count,))
            else:
                with open(path, "rb") as fh:
                    fh.seek(offset)
                    arrays[name] = np.fromfile(fh, dtype=dtype, count=count)
    except (KeyError, TypeError, ValueError) as exc:
        raise GraphError(f"{path}: malformed substrate header: {exc}") from exc
    if header.get("format") == STGQ_FORMAT_QUANTIZED:
        # Dequantise eagerly: the float64 weights materialise privately per
        # process (indptr/indices stay memory-mapped and shared), trading a
        # little resident memory for the halved file/transfer size.
        try:
            scale = float(header.get("weight_scale", 1.0))
        except (TypeError, ValueError) as exc:
            raise GraphError(f"{path}: malformed weight_scale: {exc}") from exc
        arrays["weights"] = arrays["weights"].astype(np.float64) * scale
    graph = CSRGraph(
        arrays["indptr"],
        arrays["indices"],
        arrays["weights"],
        labels=arrays.get("labels"),
        path=str(path),
        version=str(header.get("version")),
    )
    if verify:
        actual = _compute_version(
            graph._indptr, graph._indices, graph._weights, graph._labels
        )
        if actual != graph.version:
            raise GraphError(
                f"{path}: substrate content hash {actual} does not match "
                f"header version {graph.version}"
            )
    return graph


def _load_verified(path: str, version: Optional[str]) -> CSRGraph:
    """Unpickle target for path-backed graphs: open the file and pin the version.

    A worker receiving ``(path, version)`` must end up with the *same*
    substrate the sender had — if the file was swapped in between, the
    header version differs and the load fails loudly instead of silently
    answering queries over a different graph.
    """
    graph = load_stgq(path)
    if version is not None and graph.version != version:
        raise GraphError(
            f"substrate file {path} changed underneath the service: expected "
            f"version {version}, file has {graph.version}"
        )
    return graph


def pack_graph(graph: GraphSubstrate, path: PathLike, quantize: bool = False) -> CSRGraph:
    """Persist ``graph`` at ``path`` in the CSR substrate format.

    Adjacency-dict graphs are converted first; a graph that is already CSR
    is written as-is.  The returned instance is path-backed (pickles as
    ``(path, version)``).

    ``quantize=True`` writes int32 weights against a header scale factor
    (``stgq pack --quantize``): the file's dominant array halves, at a
    bounded ~2**-31 relative weight error.  The returned graph is then the
    *reloaded* file-backed substrate, so its weights are exactly what every
    worker opening the file will see.
    """
    csr = graph if isinstance(graph, CSRGraph) else CSRGraph.from_social_graph(graph)
    csr.save(path, quantize=quantize)
    if quantize:
        return load_stgq(path)
    return csr


def inspect_stgq(path: PathLike) -> Dict[str, object]:
    """Read a substrate file's header without touching the array payloads."""
    header = _read_header(path)
    arrays = header.get("arrays", {})
    info: Dict[str, object] = {
        "path": str(path),
        "format": header.get("format"),
        "n": header.get("n"),
        "m": header.get("m"),
        "version": header.get("version"),
        "dtypes": {name: meta.get("dtype") for name, meta in arrays.items()},
        "identity_ids": "labels" not in arrays,
        "quantized": header.get("format") == STGQ_FORMAT_QUANTIZED,
        "file_bytes": os.path.getsize(path),
    }
    if "weight_scale" in header:
        info["weight_scale"] = header["weight_scale"]
    return info
