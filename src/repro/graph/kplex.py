"""k-plex utilities.

The acquaintance constraint of SGQ/STGQ says every attendee may be
unacquainted with at most ``k`` other attendees; a group satisfying it is a
``(k+1)``-plex in the classical terminology of Seidman & Foster (a subgraph
of ``c`` vertices in which every vertex is adjacent to at least ``c - k``
members, counting itself).  The paper's NP-hardness proof reduces from the
k-plex decision problem, and its related-work section contrasts SGQ with
maximum / maximal k-plex enumeration.

This module provides:

* :func:`is_kplex` / :func:`violates` — constraint verification used by the
  solvers and by the test-suite,
* :func:`greedy_max_kplex` — a greedy heuristic for large k-plexes (a
  related-work style baseline that ignores distances),
* :func:`maximal_kplexes` — exhaustive enumeration for tiny graphs, used in
  property tests to cross-check the verifier.
"""

from __future__ import annotations

from itertools import combinations
from typing import FrozenSet, Iterable, List, Optional, Sequence, Set

from ..types import Vertex
from .social_graph import SocialGraph

__all__ = [
    "non_neighbor_counts",
    "is_kplex",
    "violates",
    "greedy_max_kplex",
    "maximal_kplexes",
]


def non_neighbor_counts(graph: SocialGraph, members: Iterable[Vertex]) -> dict:
    """For each member, count the *other* members it shares no edge with.

    This is the quantity bounded by ``k`` in the acquaintance constraint.
    """
    member_list = list(members)
    member_set = set(member_list)
    counts = {}
    for v in member_list:
        nbrs = graph.neighbors(v)
        counts[v] = sum(1 for u in member_set if u != v and u not in nbrs)
    return counts


def is_kplex(graph: SocialGraph, members: Iterable[Vertex], k: int) -> bool:
    """Return ``True`` when ``members`` satisfies the acquaintance constraint
    with parameter ``k`` (each member non-adjacent to at most ``k`` others).

    In k-plex terms this checks that ``members`` induces a ``(k+1)``-plex.
    """
    counts = non_neighbor_counts(graph, members)
    return all(c <= k for c in counts.values())


def violates(graph: SocialGraph, members: Iterable[Vertex], k: int) -> List[Vertex]:
    """Return the members whose non-neighbour count exceeds ``k`` (empty when feasible)."""
    counts = non_neighbor_counts(graph, members)
    return [v for v, c in counts.items() if c > k]


def greedy_max_kplex(
    graph: SocialGraph,
    k: int,
    seed_vertex: Optional[Vertex] = None,
    max_size: Optional[int] = None,
) -> Set[Vertex]:
    """Greedily grow a large vertex set satisfying the acquaintance constraint.

    Starting from ``seed_vertex`` (or the highest-degree vertex), repeatedly
    add the vertex with the most neighbours inside the current set, as long
    as the acquaintance constraint remains satisfied.  This ignores social
    distance entirely — it is the "cohesion-only" strategy the paper argues
    is insufficient for SGQ — and is exposed for comparison experiments.
    """
    if graph.vertex_count == 0:
        return set()
    if seed_vertex is None:
        seed_vertex = max(graph.vertices(), key=graph.degree)
    current: Set[Vertex] = {seed_vertex}
    candidates = set(graph.vertices()) - current
    while candidates:
        if max_size is not None and len(current) >= max_size:
            break
        # Pick the candidate with the most neighbours already in the set.
        best = None
        best_links = -1
        for v in candidates:
            links = sum(1 for u in current if graph.has_edge(u, v))
            if links > best_links:
                best, best_links = v, links
        assert best is not None
        trial = current | {best}
        candidates.discard(best)
        if is_kplex(graph, trial, k):
            current = trial
    return current


def maximal_kplexes(
    graph: SocialGraph, k: int, min_size: int = 1, vertices: Optional[Sequence[Vertex]] = None
) -> List[FrozenSet[Vertex]]:
    """Enumerate all maximal vertex sets satisfying the acquaintance constraint.

    Exhaustive (exponential) — intended only for small graphs inside tests.
    A set is reported when it satisfies the constraint, has at least
    ``min_size`` members, and no strict superset also satisfies it.
    """
    verts = list(vertices) if vertices is not None else graph.vertices()
    n = len(verts)
    if n > 16:
        raise ValueError("maximal_kplexes is exhaustive; refusing graphs with > 16 vertices")
    feasible: List[FrozenSet[Vertex]] = []
    for size in range(min_size, n + 1):
        for combo in combinations(verts, size):
            if is_kplex(graph, combo, k):
                feasible.append(frozenset(combo))
    maximal = []
    for s in feasible:
        if not any(s < t for t in feasible):
            maximal.append(s)
    return maximal
