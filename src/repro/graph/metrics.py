"""Structural metrics over social graphs.

These are used by the dataset generators (to check that synthetic networks
have the macro properties the paper's datasets provide), by the experiment
harness (to report workload characteristics next to each figure), and by the
test-suite (to validate generator behaviour).
"""

from __future__ import annotations

import math
import statistics
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Set

from ..types import Vertex
from .social_graph import SocialGraph

__all__ = [
    "GraphSummary",
    "degree_histogram",
    "average_degree",
    "clustering_coefficient",
    "average_clustering",
    "connected_components",
    "largest_component",
    "density",
    "summarize",
]


@dataclass(frozen=True)
class GraphSummary:
    """Descriptive statistics of a social graph."""

    vertex_count: int
    edge_count: int
    density: float
    average_degree: float
    max_degree: int
    average_clustering: float
    component_count: int
    largest_component_size: int
    mean_edge_distance: float
    min_edge_distance: float
    max_edge_distance: float

    def as_dict(self) -> Dict[str, float]:
        """Return the summary as a plain dict (handy for CSV reporting)."""
        return {
            "vertex_count": self.vertex_count,
            "edge_count": self.edge_count,
            "density": self.density,
            "average_degree": self.average_degree,
            "max_degree": self.max_degree,
            "average_clustering": self.average_clustering,
            "component_count": self.component_count,
            "largest_component_size": self.largest_component_size,
            "mean_edge_distance": self.mean_edge_distance,
            "min_edge_distance": self.min_edge_distance,
            "max_edge_distance": self.max_edge_distance,
        }


def degree_histogram(graph: SocialGraph) -> Dict[int, int]:
    """Return ``{degree: count}`` over all vertices."""
    hist: Dict[int, int] = {}
    for v in graph:
        d = graph.degree(v)
        hist[d] = hist.get(d, 0) + 1
    return hist


def average_degree(graph: SocialGraph) -> float:
    """Mean vertex degree (0.0 for the empty graph)."""
    n = graph.vertex_count
    if n == 0:
        return 0.0
    return 2.0 * graph.edge_count / n


def clustering_coefficient(graph: SocialGraph, v: Vertex) -> float:
    """Local clustering coefficient of ``v``.

    Fraction of neighbour pairs of ``v`` that are themselves adjacent; 0.0
    when ``v`` has fewer than two neighbours.
    """
    nbrs = list(graph.neighbors(v))
    k = len(nbrs)
    if k < 2:
        return 0.0
    links = 0
    for i in range(k):
        for j in range(i + 1, k):
            if graph.has_edge(nbrs[i], nbrs[j]):
                links += 1
    return 2.0 * links / (k * (k - 1))


def average_clustering(graph: SocialGraph, sample: Optional[Iterable[Vertex]] = None) -> float:
    """Average local clustering coefficient.

    ``sample`` restricts the computation to a subset of vertices, which keeps
    the metric affordable on the 12 800-node coauthorship workload.
    """
    vertices = list(sample) if sample is not None else graph.vertices()
    if not vertices:
        return 0.0
    return sum(clustering_coefficient(graph, v) for v in vertices) / len(vertices)


def connected_components(graph: SocialGraph) -> List[Set[Vertex]]:
    """Return the connected components as a list of vertex sets."""
    seen: Set[Vertex] = set()
    components: List[Set[Vertex]] = []
    for start in graph:
        if start in seen:
            continue
        comp = {start}
        stack = [start]
        while stack:
            u = stack.pop()
            for v in graph.neighbors(u):
                if v not in comp:
                    comp.add(v)
                    stack.append(v)
        seen |= comp
        components.append(comp)
    return components


def largest_component(graph: SocialGraph) -> Set[Vertex]:
    """Return the vertex set of the largest connected component."""
    comps = connected_components(graph)
    if not comps:
        return set()
    return max(comps, key=len)


def density(graph: SocialGraph) -> float:
    """Edge density: ``2|E| / (|V| (|V|-1))``; 0.0 for graphs with < 2 vertices."""
    n = graph.vertex_count
    if n < 2:
        return 0.0
    return 2.0 * graph.edge_count / (n * (n - 1))


def summarize(graph: SocialGraph, clustering_sample: Optional[int] = 500, seed: int = 0) -> GraphSummary:
    """Compute a :class:`GraphSummary` for ``graph``.

    Parameters
    ----------
    clustering_sample:
        Number of vertices to sample for the clustering estimate.  ``None``
        computes the exact value over all vertices.
    seed:
        Seed used for the clustering sample.
    """
    import random

    vertices = graph.vertices()
    degrees = [graph.degree(v) for v in vertices] or [0]
    distances = [d for _, _, d in graph.edges()]
    comps = connected_components(graph)

    if clustering_sample is not None and len(vertices) > clustering_sample:
        rng = random.Random(seed)
        sample = rng.sample(vertices, clustering_sample)
    else:
        sample = vertices

    return GraphSummary(
        vertex_count=graph.vertex_count,
        edge_count=graph.edge_count,
        density=density(graph),
        average_degree=average_degree(graph),
        max_degree=max(degrees),
        average_clustering=average_clustering(graph, sample),
        component_count=len(comps),
        largest_component_size=max((len(c) for c in comps), default=0),
        mean_edge_distance=statistics.fmean(distances) if distances else math.nan,
        min_edge_distance=min(distances) if distances else math.nan,
        max_edge_distance=max(distances) if distances else math.nan,
    )
