"""Social-graph substrate: weighted graphs, bounded distances, extraction,
generators, metrics, and k-plex utilities."""

from .compiled import CompiledFeasibleGraph, compile_feasible_graph
from .csr import CSRGraph, csr_available, inspect_stgq, load_stgq, pack_graph
from .distance import bounded_distance_table, bounded_distances, bounded_shortest_path, hop_counts
from .packed import PackedAdjacency, numpy_kernel_available, pack_adjacency
from .extraction import FeasibleGraph, extract_feasible_graph, extract_query_forms
from .substrate import GraphSubstrate, is_substrate
from .generators import (
    coauthorship_style_network,
    community_social_network,
    ensure_connected_to,
    erdos_renyi_network,
    interaction_to_distance,
    small_world_network,
)
from .kplex import greedy_max_kplex, is_kplex, maximal_kplexes, non_neighbor_counts, violates
from .mutations import (
    MUTATION_KINDS,
    Mutation,
    MutationBatch,
    apply_mutation,
    generate_mutation_trace,
    graph_from_snapshot,
    graph_to_snapshot,
    load_mutation_trace,
    save_mutation_trace,
)
from .overlay import GraphOverlay
from .metrics import (
    GraphSummary,
    average_clustering,
    average_degree,
    clustering_coefficient,
    connected_components,
    degree_histogram,
    density,
    largest_component,
    summarize,
)
from .social_graph import SocialGraph

__all__ = [
    "SocialGraph",
    "CSRGraph",
    "GraphOverlay",
    "Mutation",
    "MutationBatch",
    "MUTATION_KINDS",
    "apply_mutation",
    "generate_mutation_trace",
    "save_mutation_trace",
    "load_mutation_trace",
    "graph_to_snapshot",
    "graph_from_snapshot",
    "GraphSubstrate",
    "is_substrate",
    "csr_available",
    "pack_graph",
    "load_stgq",
    "inspect_stgq",
    "FeasibleGraph",
    "extract_feasible_graph",
    "extract_query_forms",
    "CompiledFeasibleGraph",
    "compile_feasible_graph",
    "PackedAdjacency",
    "pack_adjacency",
    "numpy_kernel_available",
    "bounded_distances",
    "bounded_distance_table",
    "bounded_shortest_path",
    "hop_counts",
    "community_social_network",
    "coauthorship_style_network",
    "small_world_network",
    "erdos_renyi_network",
    "ensure_connected_to",
    "interaction_to_distance",
    "is_kplex",
    "violates",
    "non_neighbor_counts",
    "greedy_max_kplex",
    "maximal_kplexes",
    "GraphSummary",
    "summarize",
    "degree_histogram",
    "average_degree",
    "clustering_coefficient",
    "average_clustering",
    "connected_components",
    "largest_component",
    "density",
]
