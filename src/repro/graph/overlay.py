"""Mutable edge overlay over an immutable substrate (live CSR graphs).

:class:`~repro.graph.csr.CSRGraph` is deliberately immutable — its
``indptr``/``indices``/``weights`` arrays live in one mmap'd ``.stgq`` file
shared by a whole worker fleet.  A live deployment still has to follow edge
churn, so :class:`GraphOverlay` layers a small adjacency-dict *diff* on top
of any read-only :class:`~repro.graph.substrate.GraphSubstrate`:

* added (or re-weighted) edges live in ``_added``,
* removed base edges are tombstoned in ``_removed``,
* vertices introduced by added edges live in ``_extra``,
* every mutating call bumps a monotonic ``graph_version`` counter.

Reads merge the diff with the base substrate on the fly, so the overlay
satisfies the full :class:`GraphSubstrate` protocol and can back a
:class:`~repro.service.QueryService` directly.  The intended lifecycle is
the classic LSM shape: mutations accumulate in the overlay while the base
stays mmap'd and shared; when the diff grows large, operators repack
(``stgq pack``) and redeploy via the substrate-reload path (see
``docs/live_graph.md``).

The overlay pickles by value *for the diff only* — the base substrate uses
its own pickling contract (CSR graphs ship as a ``(path, version)``
reference), so process-pool fan-out stays cheap.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterator, List, Mapping, Optional, Set

from ..exceptions import EdgeNotFoundError, GraphError, VertexNotFoundError
from ..types import Vertex, WeightedEdge
from .csr import CSRGraph, csr_available
from .distance import _generic_bounded_distances, _generic_hop_counts
from .social_graph import SocialGraph
from .substrate import GraphSubstrate

try:  # numpy is an optional dependency (the [speed] extra)
    import numpy as np
except ImportError:  # pragma: no cover - exercised by the no-numpy CI job
    np = None

__all__ = ["GraphOverlay"]

INF = float("inf")


class GraphOverlay:
    """A mutable add/remove edge diff over an immutable base substrate.

    Parameters
    ----------
    base:
        Any :class:`GraphSubstrate`.  The base is never mutated; all edits
        live in the overlay.

    Examples
    --------
    >>> base = SocialGraph([(1, 2, 1.0)])
    >>> live = GraphOverlay(base)
    >>> live.add_edge(2, 3, 0.5)
    >>> live.graph_version
    1
    >>> sorted(live.neighbors(2))
    [1, 3]
    >>> base.has_edge(2, 3)
    False
    """

    __slots__ = ("_base", "_added", "_removed", "_extra", "_graph_version")

    def __init__(self, base: GraphSubstrate) -> None:
        self._base = base
        # vertex -> {neighbour: distance}; symmetric, shadows base weights.
        self._added: Dict[Vertex, Dict[Vertex, float]] = {}
        # vertex -> {neighbour}; symmetric tombstones for *base* edges only.
        self._removed: Dict[Vertex, Set[Vertex]] = {}
        # Ordered set of vertices absent from the base (dict for order).
        self._extra: Dict[Vertex, None] = {}
        self._graph_version = 0

    # ------------------------------------------------------------------
    # mutation
    # ------------------------------------------------------------------
    @property
    def graph_version(self) -> int:
        """Monotonic counter bumped by every mutating call on the overlay."""
        return self._graph_version

    @property
    def base(self) -> GraphSubstrate:
        """The immutable substrate underneath the diff."""
        return self._base

    def add_vertex(self, v: Vertex) -> None:
        """Add ``v`` (no-op if already present in base or overlay)."""
        if v not in self:
            self._extra[v] = None
            self._graph_version += 1

    def add_edge(self, u: Vertex, v: Vertex, distance: float) -> None:
        """Add (or re-weight) the undirected edge ``{u, v}``.

        Same contract as :meth:`SocialGraph.add_edge`: self-loops and
        non-positive/non-finite distances raise :class:`GraphError`.
        """
        if u == v:
            raise GraphError(f"self-loop on {u!r} is not allowed")
        dist = float(distance)
        if not dist > 0 or dist != dist or dist == float("inf"):
            raise GraphError(f"edge distance must be positive and finite, got {distance!r}")
        for x in (u, v):
            if x not in self._base and x not in self._extra:
                self._extra[x] = None
        self._added.setdefault(u, {})[v] = dist
        self._added.setdefault(v, {})[u] = dist
        # Re-adding a previously tombstoned base edge revives it.
        self._removed.get(u, set()).discard(v)
        self._removed.get(v, set()).discard(u)
        self._graph_version += 1

    def remove_edge(self, u: Vertex, v: Vertex) -> None:
        """Remove the edge ``{u, v}``; raise :class:`EdgeNotFoundError` if absent."""
        in_overlay = u in self._added and v in self._added[u]
        in_base = self._base_has_edge(u, v)
        if not in_overlay and not (in_base and not self._tombstoned(u, v)):
            raise EdgeNotFoundError(u, v)
        if in_overlay:
            del self._added[u][v]
            del self._added[v][u]
        if in_base:
            self._removed.setdefault(u, set()).add(v)
            self._removed.setdefault(v, set()).add(u)
        self._graph_version += 1

    # ------------------------------------------------------------------
    # internal helpers
    # ------------------------------------------------------------------
    def _base_has_edge(self, u: Vertex, v: Vertex) -> bool:
        try:
            return self._base.has_edge(u, v)
        except Exception:
            return False

    def _tombstoned(self, u: Vertex, v: Vertex) -> bool:
        return u in self._removed and v in self._removed[u]

    def _merged_adjacency(self, v: Vertex) -> Dict[Vertex, float]:
        if v not in self:
            raise VertexNotFoundError(v)
        merged: Dict[Vertex, float] = {}
        if v in self._base:
            merged.update(self._base.adjacency(v))
            for dead in self._removed.get(v, ()):
                merged.pop(dead, None)
        merged.update(self._added.get(v, {}))
        return merged

    # ------------------------------------------------------------------
    # GraphSubstrate surface
    # ------------------------------------------------------------------
    def __contains__(self, v: Vertex) -> bool:
        return v in self._base or v in self._extra

    def __len__(self) -> int:
        return self.vertex_count

    def __iter__(self) -> Iterator[Vertex]:
        yield from self._base
        yield from self._extra

    @property
    def vertex_count(self) -> int:
        return self._base.vertex_count + len(self._extra)

    @property
    def edge_count(self) -> int:
        removed = sum(len(s) for s in self._removed.values()) // 2
        added_new = 0
        seen = set()
        for u, nbrs in self._added.items():
            for v in nbrs:
                fkey = frozenset((u, v))
                if fkey in seen:
                    continue
                seen.add(fkey)
                if not self._base_has_edge(u, v):
                    added_new += 1
        return self._base.edge_count - removed + added_new

    def vertices(self) -> List[Vertex]:
        return list(self)

    def edges(self) -> List[WeightedEdge]:
        result: List[WeightedEdge] = []
        for u, v, d in self._base.edges():
            if self._tombstoned(u, v):
                continue
            shadow = self._added.get(u, {}).get(v)
            result.append((u, v, d if shadow is None else shadow))
        seen = set()
        for u, nbrs in self._added.items():
            for v, d in nbrs.items():
                fkey = frozenset((u, v))
                if fkey in seen:
                    continue
                seen.add(fkey)
                if not self._base_has_edge(u, v):
                    result.append((u, v, d))
        return result

    def has_edge(self, u: Vertex, v: Vertex) -> bool:
        if u in self._added and v in self._added[u]:
            return True
        return self._base_has_edge(u, v) and not self._tombstoned(u, v)

    def neighbors(self, v: Vertex) -> FrozenSet[Vertex]:
        return frozenset(self._merged_adjacency(v))

    def adjacency(self, v: Vertex) -> Mapping[Vertex, float]:
        return self._merged_adjacency(v)

    def degree(self, v: Vertex) -> int:
        return len(self._merged_adjacency(v))

    def distance(self, u: Vertex, v: Vertex) -> float:
        shadow = self._added.get(u, {}).get(v)
        if shadow is not None:
            return shadow
        if self._base_has_edge(u, v) and not self._tombstoned(u, v):
            return self._base.distance(u, v)
        raise EdgeNotFoundError(u, v)

    def total_distance(self) -> float:
        return sum(d for _, _, d in self.edges())

    def subgraph(self, vertices) -> SocialGraph:
        """Induced subgraph as a :class:`SocialGraph` (matching CSR behaviour)."""
        keep = [v for v in vertices if v in self]
        keep_set = set(keep)
        sub = SocialGraph(vertices=keep)
        for u in keep:
            for v, d in self._merged_adjacency(u).items():
                if v in keep_set and not sub.has_edge(u, v):
                    sub.add_edge(u, v, d)
        return sub

    # ------------------------------------------------------------------
    # substrate fast paths (dispatched to by repro.graph.distance)
    # ------------------------------------------------------------------
    def _patch_state(self, base: CSRGraph):
        """Dense-id view of overlay-over-CSR for the vectorised walks.

        Base rows keep their row ids ``0..n-1``; overlay-only vertices get
        ``n, n+1, ...`` in ``_extra`` order.  ``dirty_rows`` flags base rows
        whose merged adjacency differs from the raw row slice — because the
        diff dicts are kept symmetric, an *unflagged* row's slice is exactly
        its live adjacency, so whole clean frontiers can ride the base CSR
        arrays untouched.
        """
        n = base.vertex_count
        extra_labels = list(self._extra)
        extra_index = {v: n + i for i, v in enumerate(extra_labels)}
        dirty_rows = np.zeros(n, dtype=bool)
        for v in set(self._added) | set(self._removed):
            if v not in extra_index:
                try:
                    dirty_rows[base._row(v)] = True
                except VertexNotFoundError:  # pragma: no cover - defensive
                    pass
        return extra_labels, extra_index, dirty_rows

    def _vertex_id(self, base: CSRGraph, extra_index, label) -> int:
        eid = extra_index.get(label)
        return eid if eid is not None else base._row(label)

    def _vertex_label(self, base: CSRGraph, extra_labels, vid: int):
        n = base.vertex_count
        return base._label(vid) if vid < n else extra_labels[vid - n]

    def bounded_distances(self, source: Vertex, max_edges: int) -> Dict[Vertex, float]:
        """``s``-edge minimum distances, vectorising the CSR base.

        Same contract as :func:`repro.graph.distance.bounded_distances`.
        Each round splits the frontier into *clean* base rows (no touched
        edges — relaxed with one array gather, exactly like
        :meth:`CSRGraph._bounded_rows`) and *dirty* vertices (edited rows
        and overlay-only vertices — patched through
        :meth:`_merged_adjacency`).  Non-CSR bases fall back to the generic
        frontier walk.
        """
        base = self._base
        if not (csr_available() and isinstance(base, CSRGraph)):
            return _generic_bounded_distances(self, source, max_edges)
        if source not in self:
            raise VertexNotFoundError(source)
        if max_edges < 1:
            raise ValueError(f"max_edges must be >= 1, got {max_edges}")
        if not (self._added or self._removed or self._extra):
            return base.bounded_distances(source, max_edges)
        extra_labels, extra_index, dirty_rows = self._patch_state(base)
        n = base.vertex_count
        dist = np.full(n + len(extra_labels), INF)
        src_id = self._vertex_id(base, extra_index, source)
        dist[src_id] = 0.0
        order: List[int] = [src_id]
        frontier: List[int] = [src_id]
        for _ in range(max_edges):
            if not frontier:
                break
            fr = np.asarray(frontier, dtype=np.int64)
            is_clean = np.zeros(fr.size, dtype=bool)
            base_mask = fr < n
            is_clean[base_mask] = ~dirty_rows[fr[base_mask]]
            updates: Dict[int, float] = {}
            clean = fr[is_clean]
            if clean.size:
                pos, counts = base._gather_rows(clean)
                if pos.size:
                    targets = base._indices[pos].astype(np.int64, copy=False)
                    cand = np.repeat(dist[clean], counts) + base._weights[pos]
                    uniq, inv = np.unique(targets, return_inverse=True)
                    best = np.full(uniq.size, INF)
                    np.minimum.at(best, inv, cand)
                    improved = best < dist[uniq]
                    for tid, nd in zip(uniq[improved].tolist(), best[improved].tolist()):
                        updates[tid] = nd
            for uid in fr[~is_clean].tolist():
                du = float(dist[uid])
                label = self._vertex_label(base, extra_labels, uid)
                for v, c in self._merged_adjacency(label).items():
                    nd = du + c
                    tid = self._vertex_id(base, extra_index, v)
                    if nd < dist[tid] and nd < updates.get(tid, INF):
                        updates[tid] = nd
            frontier = []
            for tid, nd in updates.items():
                if nd < dist[tid]:
                    if dist[tid] == INF:
                        order.append(tid)
                    dist[tid] = nd
                    frontier.append(tid)
        return {
            self._vertex_label(base, extra_labels, vid): float(dist[vid])
            for vid in order
        }

    def hop_counts(self, source: Vertex, max_edges: Optional[int] = None) -> Dict[Vertex, int]:
        """BFS hop counts, vectorising the CSR base (see bounded_distances)."""
        base = self._base
        if not (csr_available() and isinstance(base, CSRGraph)):
            return _generic_hop_counts(self, source, max_edges)
        if source not in self:
            raise VertexNotFoundError(source)
        if max_edges is not None and max_edges < 0:
            raise ValueError(f"max_edges must be >= 0, got {max_edges}")
        if not (self._added or self._removed or self._extra):
            return base.hop_counts(source, max_edges)
        extra_labels, extra_index, dirty_rows = self._patch_state(base)
        n = base.vertex_count
        seen = np.zeros(n + len(extra_labels), dtype=bool)
        src_id = self._vertex_id(base, extra_index, source)
        seen[src_id] = True
        levels: List[List[int]] = [[src_id]]
        frontier: List[int] = [src_id]
        depth = 0
        while frontier and (max_edges is None or depth < max_edges):
            fr = np.asarray(frontier, dtype=np.int64)
            is_clean = np.zeros(fr.size, dtype=bool)
            base_mask = fr < n
            is_clean[base_mask] = ~dirty_rows[fr[base_mask]]
            fresh: List[int] = []
            clean = fr[is_clean]
            if clean.size:
                pos, _ = base._gather_rows(clean)
                if pos.size:
                    targets = base._indices[pos]
                    new_rows = np.unique(targets[~seen[targets]])
                    if new_rows.size:
                        seen[new_rows] = True
                        fresh.extend(new_rows.tolist())
            for uid in fr[~is_clean].tolist():
                label = self._vertex_label(base, extra_labels, uid)
                for v in self._merged_adjacency(label):
                    tid = self._vertex_id(base, extra_index, v)
                    if not seen[tid]:
                        seen[tid] = True
                        fresh.append(tid)
            if not fresh:
                break
            depth += 1
            levels.append(fresh)
            frontier = fresh
        return {
            self._vertex_label(base, extra_labels, vid): d
            for d, level in enumerate(levels)
            for vid in level
        }

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    @property
    def overlay_edits(self) -> int:
        """Number of distinct edge entries held by the diff (sizing signal)."""
        added = sum(len(n) for n in self._added.values()) // 2
        removed = sum(len(s) for s in self._removed.values()) // 2
        return added + removed

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"GraphOverlay(base={self._base!r}, edits={self.overlay_edits}, "
            f"version={self._graph_version})"
        )
