"""Packed (numpy ``uint64``) form of a compiled feasible graph.

The compiled kernel (:mod:`repro.graph.compiled`) stores adjacency as one
arbitrary-precision Python int per id, which makes single AND/popcount
expressions cheap but forces a *Python-level loop* whenever a measure has to
be evaluated for many candidates at once (Lemma 3's inner degrees, the
per-candidate interior-unfamiliarity / exterior-expansibility scan, Lemma
5's per-slot busy counts).  This module packs the same adjacency into a
``(n, ceil(n / 64))`` ``uint64`` matrix so those loops become whole-pool
``np.bitwise_and`` + ``np.bitwise_count`` reductions — the substrate of the
``kernel="numpy"`` search paths in SGSelect/STGSelect.

The int-bitmask representation stays the search state's source of truth
(``VS`` / ``VA`` / deferred masks are still Python ints, shared with the
compiled kernel); :func:`mask_to_row` / :func:`row_to_mask` convert between
a mask and its packed row in O(words) C-level work, so the two views never
drift.

numpy is an *optional* dependency (the ``[speed]`` extra): this module
imports without it, :func:`numpy_kernel_available` reports whether the
vectorized kernel can run (numpy >= 2.0 for ``np.bitwise_count``), and
:class:`~repro.core.query.SearchParameters` degrades ``kernel="numpy"`` to
``"compiled"`` with a warning when it cannot.

Like :class:`~repro.graph.compiled.CompiledFeasibleGraph`, a
:class:`PackedAdjacency` is immutable after construction, so one instance is
shared by every concurrent search over the same ego network (the service
cache keeps it next to the compiled form).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, List, Optional, Sequence

try:  # pragma: no cover - exercised via numpy_kernel_available()
    import numpy as np

    _HAVE_BITWISE_COUNT = hasattr(np, "bitwise_count")
except ImportError:  # pragma: no cover - numpy genuinely absent
    np = None
    _HAVE_BITWISE_COUNT = False

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .compiled import CompiledFeasibleGraph

__all__ = [
    "PackedAdjacency",
    "mask_to_row",
    "numpy_kernel_available",
    "pack_adjacency",
    "pack_masks",
    "row_popcount",
    "row_to_mask",
]

#: Bits per packed word.
WORD_BITS = 64


def numpy_kernel_available() -> bool:
    """``True`` when the vectorized kernel can run on this interpreter.

    Requires numpy >= 2.0 (``np.bitwise_count``); older numpys are treated
    as absent rather than half-supported.
    """
    return _HAVE_BITWISE_COUNT


def _require_numpy() -> None:
    if not _HAVE_BITWISE_COUNT:
        raise RuntimeError(
            "the packed (numpy) graph form needs numpy >= 2.0; install the "
            "'speed' extra (pip install repro[speed]) or use kernel='compiled'"
        )


def words_for(n: int) -> int:
    """Number of ``uint64`` words needed for ``n`` bit positions (min 1)."""
    return max(1, -(-n // WORD_BITS))


def mask_to_row(mask: int, words: int) -> "np.ndarray":
    """Pack a Python-int bitmask into a ``(words,)`` ``uint64`` row.

    Bit ``i`` of ``mask`` lands in word ``i // 64``, bit ``i % 64`` —
    little-endian word order, so :func:`row_to_mask` is the exact inverse.
    ``mask`` must fit in ``words * 64`` bits.
    """
    return np.frombuffer(mask.to_bytes(words * 8, "little"), dtype="<u8").astype(
        np.uint64, copy=False
    )


def row_to_mask(row: "np.ndarray") -> int:
    """Inverse of :func:`mask_to_row`."""
    return int.from_bytes(np.ascontiguousarray(row, dtype="<u8").tobytes(), "little")


def row_popcount(row: "np.ndarray") -> int:
    """Total number of set bits in a packed row (parity with ``int.bit_count``)."""
    return int(np.bitwise_count(row).sum())


def pack_masks(masks: Sequence[int], words: int) -> "np.ndarray":
    """Pack a sequence of int bitmasks into a ``(len(masks), words)`` matrix."""
    _require_numpy()
    if not masks:
        return np.zeros((0, words), dtype=np.uint64)
    buffer = b"".join(mask.to_bytes(words * 8, "little") for mask in masks)
    return (
        np.frombuffer(buffer, dtype="<u8").astype(np.uint64, copy=False).reshape(len(masks), words)
    )


class PackedAdjacency:
    """``(n, words)`` ``uint64`` adjacency matrix of a compiled feasible graph.

    Attributes
    ----------
    n:
        Number of ids in the universe (``len(compiled)``).
    words:
        ``ceil(n / 64)`` — row width in ``uint64`` words.
    rows:
        The packed matrix; ``rows[i]`` is id ``i``'s adjacency bitmask in
        the same bit layout as ``CompiledFeasibleGraph.adj[i]``.
    """

    __slots__ = ("n", "words", "rows", "_columns")

    #: Above this universe size the per-id column memo is skipped (a full
    #: memo is an n² int64 matrix; at 2048 ids that is 32 MiB — too much for
    #: a structure the service caches by the hundred).
    COLUMN_MEMO_MAX_IDS = 2048

    def __init__(self, adj: Sequence[int]) -> None:
        _require_numpy()
        self.n = len(adj)
        self.words = words_for(self.n)
        rows = pack_masks(adj, self.words)
        rows.setflags(write=False)
        self.rows = rows
        self._columns: List[Optional["np.ndarray"]] = (
            [None] * self.n if self.n <= self.COLUMN_MEMO_MAX_IDS else []
        )

    @classmethod
    def from_rows(cls, rows: "np.ndarray") -> "PackedAdjacency":
        """Adopt a pre-packed ``(n, words)`` ``uint64`` matrix.

        Used by the CSR extraction fast lane, which scatters the feasible
        rows' edges straight into the packed layout; the matrix must use
        the :func:`mask_to_row` bit order.  The array is frozen in place.
        """
        _require_numpy()
        self = cls.__new__(cls)
        self.n = int(rows.shape[0])
        self.words = int(rows.shape[1]) if rows.ndim == 2 else words_for(self.n)
        rows.setflags(write=False)
        self.rows = rows
        self._columns = [None] * self.n if self.n <= self.COLUMN_MEMO_MAX_IDS else []
        return self

    def row(self, mask: int) -> "np.ndarray":
        """Packed row of an arbitrary id bitmask (``VS``, ``VA``, ...)."""
        return mask_to_row(mask, self.words)

    def intersect_counts(self, row: "np.ndarray") -> "np.ndarray":
        """``|mask ∩ N_i|`` for *every* id ``i``, in one vectorized pass.

        This is the workhorse reduction: with ``row`` = the members row it
        yields every candidate's acquaintance count inside ``VS``; with
        ``row`` = the remaining row it yields Lemma 3's inner degrees and
        the expansibility neighbour counts — each a whole-pool replacement
        for one per-candidate Python loop of the compiled kernel.
        """
        return np.bitwise_count(self.rows & row).sum(axis=1, dtype=np.int64)

    def column(self, v: int) -> "np.ndarray":
        """0/1 adjacency-to-``v`` indicator for every id, as ``int64``.

        ``column(v)[u] == 1`` iff ``u`` and ``v`` are adjacent (symmetric,
        so this reads row ``v`` transposed via the bit layout instead of
        scanning a column).  Columns are the kernels' incremental-update
        currency (every candidate removal subtracts one from the pool
        counts), so they are memoized per id on all but huge universes; the
        memoized arrays are read-only and safely shared across concurrent
        searches (worst case under a race is a duplicate computation).
        """
        memo = self._columns
        if memo:
            cached = memo[v]
            if cached is not None:
                return cached
        word = v // WORD_BITS
        shift = np.uint64(v % WORD_BITS)
        column = ((self.rows[:, word] >> shift) & np.uint64(1)).astype(np.int64)
        if memo:
            column.setflags(write=False)
            memo[v] = column
        return column

    def select(self, counts: "np.ndarray", mask: int) -> "np.ndarray":
        """Entries of a per-id vector at the ids set in ``mask``."""
        return counts[self.indicator(mask)]

    def indicator(self, mask: int) -> "np.ndarray":
        """Boolean per-id membership array for an id bitmask."""
        bits = np.frombuffer(mask.to_bytes(self.words * 8, "little"), dtype=np.uint8)
        return np.unpackbits(bits, count=self.n, bitorder="little").astype(bool)

    def __len__(self) -> int:
        return self.n

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"PackedAdjacency(n={self.n}, words={self.words})"


def pack_adjacency(compiled: "CompiledFeasibleGraph") -> PackedAdjacency:
    """Pack a compiled feasible graph's adjacency for the numpy kernel.

    The packed form is derived data: it carries no vertex identity of its
    own and is only valid together with the ``compiled`` graph it was built
    from (same id layout).  Callers that cache one must cache them as a
    pair — :class:`~repro.service.QueryService` keeps both in one cache
    entry so every batch over an ego network shares one packing.
    """
    return PackedAdjacency(compiled.adj)


def busy_slot_masks(
    schedules: List[object], feasible_mask: int, window
) -> List[int]:
    """Per-slot busy masks over a pivot window, as int bitmasks in slot order.

    ``busy[j]`` has bit ``i`` set when candidate id ``i`` (restricted to
    ``feasible_mask``) is unavailable in slot ``window.window.start + j`` —
    the Lemma 5 input, shared by the compiled kernel's dict form and the
    numpy kernel's packed matrix (:func:`pack_masks`).
    """
    from .compiled import iter_bits

    masks: List[int] = []
    for slot in window.window:
        mask = 0
        for i in iter_bits(feasible_mask):
            if not schedules[i].is_available(slot):
                mask |= 1 << i
        masks.append(mask)
    return masks
