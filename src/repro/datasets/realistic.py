"""Synthetic stand-in for the paper's 194-person real dataset.

The paper's "real" dataset was collected from 194 invited participants
(schools, government, business, industry); their social distances were
derived from interaction frequencies and their schedules from shared Google
Calendars.  That data is not available, so this module generates a seeded
synthetic population with the same macro structure — see DESIGN.md §4 for
the substitution argument.
"""

from __future__ import annotations

from typing import Optional

from ..graph.generators import community_social_network, ensure_connected_to
from ..graph.metrics import summarize
from ..temporal.generators import generate_calendar_store
from ..temporal.slots import SLOTS_PER_DAY_DEFAULT
from .base import Dataset

__all__ = ["generate_real_dataset", "REAL_DATASET_SIZE"]

#: Population size of the paper's real dataset.
REAL_DATASET_SIZE = 194


def generate_real_dataset(
    n_people: int = REAL_DATASET_SIZE,
    schedule_days: int = 1,
    slots_per_day: int = SLOTS_PER_DAY_DEFAULT,
    seed: int = 42,
    initiator_min_degree: Optional[int] = 16,
) -> Dataset:
    """Generate the 194-person community dataset.

    Parameters
    ----------
    n_people:
        Population size (default 194, matching the paper).
    schedule_days:
        Length of the shared calendars in days; the paper's Figure 1(f)
        varies this from 1 to 7.
    slots_per_day:
        Slot granularity (48 half-hour slots by default, as in the paper).
    seed:
        Seed controlling both the graph and the schedules.
    initiator_min_degree:
        When given, person 0 (the default experiment initiator) is densified
        to at least this many friends so queries up to ``p ≈ 12`` remain
        satisfiable, mirroring the paper's choice of an initiator with a
        populated ego network.
    """
    graph = community_social_network(
        n_people=n_people,
        n_communities=4,
        intra_community_prob=0.22,
        inter_community_prob=0.015,
        seed=seed,
    )
    if initiator_min_degree is not None and n_people > initiator_min_degree:
        ensure_connected_to(graph, hub=0, min_degree=initiator_min_degree, seed=seed + 1)
    calendars = generate_calendar_store(
        graph.vertices(),
        days=schedule_days,
        slots_per_day=slots_per_day,
        seed=seed + 2,
    )
    stats = summarize(graph)
    return Dataset(
        name="real-194",
        graph=graph,
        calendars=calendars,
        description=(
            "Synthetic stand-in for the paper's 194-person dataset: community-structured "
            "social graph with interaction-derived distances and day-structured schedules."
        ),
        metadata={
            "initiator": 0,
            "seed": seed,
            "schedule_days": schedule_days,
            "slots_per_day": slots_per_day,
            "average_degree": stats.average_degree,
            "average_clustering": stats.average_clustering,
        },
    )
